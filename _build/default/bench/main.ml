(* Benchmark harness.

   Two parts:

   1. bechamel micro-benchmarks of the core primitives (one Test.make per
      primitive), so the cost of each building block is tracked;
   2. the experiment tables E1-E11 (DESIGN.md Section 5 / EXPERIMENTS.md),
      which regenerate the measurable content of every theorem and figure
      of the paper on the simulation substrate.

   Usage:
     bench/main.exe            micro-benches + quick experiment tables
     bench/main.exe --full     micro-benches + full experiment tables
     bench/main.exe --quick    micro-benches + quick tables (explicit)
     bench/main.exe --tables   experiment tables only
     bench/main.exe --micro    micro-benches only *)

open Bechamel
open Toolkit

let set = Sim.Pid.set_of_list

(* --- micro-bench subjects ------------------------------------------- *)

let bench_rng =
  let rng = Sim.Rng.create 1 in
  Test.make ~name:"rng.int" (Staged.stage (fun () -> Sim.Rng.int rng 1000))

let bench_heap =
  let rng = Sim.Rng.create 2 in
  Test.make ~name:"heap.push_pop_64"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create Int.compare in
         for _ = 1 to 64 do
           Sim.Heap.push h (Sim.Rng.int rng 10_000)
         done;
         while not (Sim.Heap.is_empty h) do
           ignore (Sim.Heap.pop h)
         done))

let bench_channel =
  let rng = Sim.Rng.create 3 in
  Test.make ~name:"channel.send_take"
    (Staged.stage (fun () ->
         let ch = Sim.Channel.create ~capacity:8 in
         for i = 1 to 16 do
           Sim.Channel.send ch rng i
         done;
         while Sim.Channel.take ch rng ~reorder:true <> None do
           ()
         done))

let bench_fd =
  Test.make ~name:"detector.heartbeat_trusted"
    (Staged.stage (fun () ->
         let fd = Detector.Theta_fd.create ~n_bound:16 ~self:0 () in
         for r = 1 to 8 do
           ignore r;
           for p = 1 to 8 do
             Detector.Theta_fd.heartbeat fd p
           done
         done;
         ignore (Detector.Theta_fd.trusted fd)))

let bench_notification_max =
  let ns =
    List.init 16 (fun i ->
        Reconfig.Notification.make
          (if i mod 2 = 0 then Reconfig.Notification.P1 else Reconfig.Notification.P2)
          (set [ i; i + 1; i + 2 ]))
  in
  Test.make ~name:"notification.max_of_16"
    (Staged.stage (fun () -> Reconfig.Notification.max_of ns))

let bench_label_order =
  let l1 = Labels.Label.make ~creator:1 ~sting:3 ~antistings:[ 1; 2; 5; 7 ] in
  let l2 = Labels.Label.make ~creator:1 ~sting:8 ~antistings:[ 3; 4 ] in
  Test.make ~name:"label.precedes" (Staged.stage (fun () -> Labels.Label.precedes l1 l2))

let bench_label_next =
  let known =
    List.init 12 (fun i ->
        Labels.Label.make ~creator:1 ~sting:i ~antistings:[ i + 1; i + 2 ])
  in
  Test.make ~name:"label.next_label_12"
    (Staged.stage (fun () -> Labels.Label.next_label ~creator:1 ~known))

let bench_counter_order =
  let l = Labels.Label.make ~creator:1 ~sting:0 ~antistings:[ 9 ] in
  let c1 = Counters.Counter.make ~lbl:l ~seqn:41 ~wid:3 in
  let c2 = Counters.Counter.make ~lbl:l ~seqn:42 ~wid:2 in
  Test.make ~name:"counter.precedes"
    (Staged.stage (fun () -> Counters.Counter.precedes c1 c2))

let bench_recsa_tick =
  (* one do-forever iteration of a warm 8-node recSA instance *)
  let trusted = set (List.init 8 (fun i -> i + 1)) in
  let sa = Reconfig.Recsa.create ~self:1 ~participant:true ~initial_config:trusted () in
  List.iter
    (fun p ->
      if p <> 1 then
        Reconfig.Recsa.receive sa ~from:p
          {
            Reconfig.Recsa.m_fd = trusted;
            m_part = trusted;
            m_config = Reconfig.Config_value.Set trusted;
            m_prp = Reconfig.Notification.default;
            m_all = false;
            m_echo = None;
          })
    (List.init 8 (fun i -> i + 1));
  Test.make ~name:"recsa.tick_warm_8"
    (Staged.stage (fun () -> Reconfig.Recsa.tick sa ~trusted))

let bench_engine_round =
  Test.make ~name:"engine.round_5node_gossip"
    (Staged.stage
       (let pids = [ 1; 2; 3; 4; 5 ] in
        let behavior =
          {
            Sim.Engine.init = (fun p -> p);
            on_timer =
              (fun ctx s ->
                List.iter
                  (fun q -> if q <> Sim.Engine.self ctx then Sim.Engine.send ctx q s)
                  pids;
                s);
            on_message = (fun _ _ v s -> max v s);
          }
        in
        let eng = Sim.Engine.create ~seed:5 ~behavior ~pids () in
        fun () -> Sim.Engine.run_rounds eng 1))

let micro_tests =
  Test.make_grouped ~name:"primitives" ~fmt:"%s %s"
    [
      bench_rng;
      bench_heap;
      bench_channel;
      bench_fd;
      bench_notification_max;
      bench_label_order;
      bench_label_next;
      bench_counter_order;
      bench_recsa_tick;
      bench_engine_round;
    ]

let run_micro () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances micro_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@.== micro-benchmarks (monotonic clock, ns/run) ==@.";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Format.printf "%-40s %12.1f ns/run@." name est) rows

(* --- experiment tables ---------------------------------------------- *)

let run_tables params =
  List.iter
    (fun t -> Format.printf "%a@." Harness.Table.pp t)
    (Harness.Experiments.all params)

let run_ablations params =
  List.iter
    (fun t -> Format.printf "%a@." Harness.Table.pp t)
    (Harness.Ablations.all params)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let tables_only = List.mem "--tables" args in
  let micro_only = List.mem "--micro" args in
  let skip_ablations = List.mem "--no-ablations" args in
  let params =
    if full then Harness.Experiments.default_params else Harness.Experiments.quick_params
  in
  if not tables_only then run_micro ();
  if not micro_only then begin
    run_tables params;
    if not skip_ablations then run_ablations params
  end
