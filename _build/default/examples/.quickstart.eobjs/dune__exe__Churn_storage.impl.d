examples/churn_storage.ml: Format List Pid Reconfig Shared_memory Sim Vs Vs_service
