examples/churn_storage.mli:
