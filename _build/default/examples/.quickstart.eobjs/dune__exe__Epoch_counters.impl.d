examples/epoch_counters.ml: Counter Counter_service Counters Format Label Labels List Pid Reconfig Sim
