examples/epoch_counters.mli:
