examples/quickstart.ml: Format Pid Reconfig Recsa Rng Sim Stack
