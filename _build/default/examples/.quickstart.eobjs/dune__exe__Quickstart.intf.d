examples/quickstart.mli:
