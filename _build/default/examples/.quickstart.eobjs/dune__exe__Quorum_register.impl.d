examples/quorum_register.ml: Format List Pid Reconfig Register Register_service Sim
