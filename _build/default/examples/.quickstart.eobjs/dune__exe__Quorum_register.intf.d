examples/quorum_register.mli:
