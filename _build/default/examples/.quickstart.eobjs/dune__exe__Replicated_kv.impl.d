examples/replicated_kv.ml: Format List Map Pid Reconfig Sim String Vs Vs_service
