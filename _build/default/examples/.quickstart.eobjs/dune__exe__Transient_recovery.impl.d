examples/transient_recovery.ml: Baseline Format List Pid Reconfig Rng Sim Trace
