examples/transient_recovery.mli:
