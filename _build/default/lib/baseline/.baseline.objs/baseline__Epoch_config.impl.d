lib/baseline/epoch_config.ml: Engine List Pid Sim
