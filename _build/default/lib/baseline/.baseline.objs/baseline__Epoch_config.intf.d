lib/baseline/epoch_config.mli: Engine Pid Sim
