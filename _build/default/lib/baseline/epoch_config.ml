open Sim

type node = { mutable epoch : int; mutable config : Pid.Set.t }
type msg = { m_epoch : int; m_config : Pid.Set.t }
type t = { eng : (node, msg) Engine.t }

let behavior members_set peers =
  {
    Engine.init = (fun _ -> { epoch = 0; config = members_set });
    on_timer =
      (fun ctx n ->
        List.iter
          (fun q ->
            if not (Pid.equal q (Engine.self ctx)) then
              Engine.send ctx q { m_epoch = n.epoch; m_config = n.config })
          peers;
        n);
    on_message =
      (fun _ctx _from m n ->
        if m.m_epoch > n.epoch then begin
          n.epoch <- m.m_epoch;
          n.config <- m.m_config
        end;
        n);
  }

let create ?(seed = 42) ?(capacity = 8) ?(loss = 0.02) ~members () =
  let members_set = Pid.set_of_list members in
  let eng =
    Engine.create ~seed ~capacity ~loss
      ~behavior:(behavior members_set members)
      ~pids:members ()
  in
  { eng }

let engine t = t.eng

let reconfigure t p set =
  let n = Engine.state t.eng p in
  n.epoch <- n.epoch + 1;
  n.config <- set

let corrupt t p ~epoch ~config =
  let n = Engine.state t.eng p in
  n.epoch <- epoch;
  n.config <- config

let config_of t p = (Engine.state t.eng p).config
let epoch_of t p = (Engine.state t.eng p).epoch

let healthy t =
  let live = Pid.set_of_list (Engine.live_pids t.eng) in
  match Engine.live_pids t.eng with
  | [] -> false
  | first :: _ ->
    let c0 = config_of t first in
    (not (Pid.Set.is_empty c0))
    && Pid.Set.subset c0 live
    && List.for_all
         (fun p -> Pid.Set.equal (config_of t p) c0)
         (Engine.live_pids t.eng)

let run_rounds t n = Engine.run_rounds t.eng n
let crash t p = Engine.crash t.eng p
