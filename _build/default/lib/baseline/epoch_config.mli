(** A deliberately {e non}-self-stabilizing reconfiguration baseline.

    This is the comparator the paper argues against (Section 1, Related
    work): reconfiguration schemes in the style of [17, 2] that assume a
    coherent start and use unbounded epoch counters. Each node holds
    ⟨epoch, config⟩; a reconfiguration bumps the epoch; nodes adopt the
    pair with the highest epoch they hear about. Starting from a coherent
    state this works fine and is simpler and faster than recSA — but it has
    no notion of stale information: a single transient fault that plants a
    huge epoch with a garbage configuration (e.g. containing only departed
    processors) wins every comparison and the system never recovers
    (experiment E9). *)

open Sim

type node = {
  mutable epoch : int;  (** unbounded counter (the paper's criticism) *)
  mutable config : Pid.Set.t;
}

type msg = { m_epoch : int; m_config : Pid.Set.t }

type t

val create :
  ?seed:int -> ?capacity:int -> ?loss:float -> members:Pid.t list -> unit -> t

val engine : t -> (node, msg) Engine.t

(** [reconfigure t p set] — node [p] installs ⟨epoch+1, set⟩ and gossips
    it. *)
val reconfigure : t -> Pid.t -> Pid.Set.t -> unit

(** [corrupt t p ~epoch ~config] — transient fault. *)
val corrupt : t -> Pid.t -> epoch:int -> config:Pid.Set.t -> unit

val config_of : t -> Pid.t -> Pid.Set.t
val epoch_of : t -> Pid.t -> int

(** [healthy t] — every live node agrees on a configuration whose members
    are all live (the serviceability condition recSA restores and this
    baseline cannot). *)
val healthy : t -> bool

val run_rounds : t -> int -> unit
val crash : t -> Pid.t -> unit
