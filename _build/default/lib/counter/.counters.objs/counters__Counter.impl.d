lib/counter/counter.ml: Format Int Label Labels List Pid Sim
