lib/counter/counter.mli: Format Label Labels Pid Sim
