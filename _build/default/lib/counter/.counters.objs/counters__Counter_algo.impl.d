lib/counter/counter_algo.ml: Counter Format Label Labels List Pid Sim
