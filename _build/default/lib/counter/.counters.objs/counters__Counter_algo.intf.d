lib/counter/counter_algo.mli: Counter Format Pid Sim
