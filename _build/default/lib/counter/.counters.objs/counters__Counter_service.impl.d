lib/counter/counter_service.ml: Config_value Counter Counter_algo Format List Option Pid Quorum Reconfig Recsa Sim Stack
