lib/counter/counter_service.mli: Counter Pid Reconfig Sim
