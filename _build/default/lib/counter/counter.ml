open Sim
open Labels

type t = { lbl : Label.t; seqn : int; wid : Pid.t }

let make ~lbl ~seqn ~wid = { lbl; seqn; wid }

let equal c1 c2 =
  Label.equal c1.lbl c2.lbl && c1.seqn = c2.seqn && Pid.equal c1.wid c2.wid

let precedes c1 c2 =
  if Label.equal c1.lbl c2.lbl then
    c1.seqn < c2.seqn || (c1.seqn = c2.seqn && Pid.compare c1.wid c2.wid < 0)
  else Label.precedes c1.lbl c2.lbl

let comparable c1 c2 = equal c1 c2 || precedes c1 c2 || precedes c2 c1
let exhausted ~bound c = c.seqn >= bound

let compare_total c1 c2 =
  let c = Label.compare_total c1.lbl c2.lbl in
  if c <> 0 then c
  else
    let c = Int.compare c1.seqn c2.seqn in
    if c <> 0 then c else Pid.compare c1.wid c2.wid

let max_of counters =
  match counters with
  | [] -> None
  | _ ->
    let maximal =
      List.filter (fun c -> not (List.exists (fun c' -> precedes c c') counters)) counters
    in
    let pool = match maximal with [] -> counters | _ -> maximal in
    Some
      (List.fold_left
         (fun best c -> if compare_total c best > 0 then c else best)
         (List.hd pool) (List.tl pool))

let pp fmt c = Format.fprintf fmt "<%a, %d, w%a>" Label.pp c.lbl c.seqn Pid.pp c.wid

type pair = { mct : t; cct : t option }

let pair_of c = { mct = c; cct = None }
let legit p = p.cct = None
let cancel p = { p with cct = Some p.mct }

let pair_equal p1 p2 =
  equal p1.mct p2.mct
  &&
  match (p1.cct, p2.cct) with
  | None, None -> true
  | Some a, Some b -> equal a b
  | None, Some _ | Some _, None -> false

let pp_pair fmt p =
  match p.cct with
  | None -> Format.fprintf fmt "<%a, _>" pp p.mct
  | Some _ -> Format.fprintf fmt "<%a, X>" pp p.mct
