(** Practically-infinite counters over epoch labels (Section 4.2).

    A counter is a triple ⟨lbl, seqn, wid⟩: an epoch label, a bounded
    sequence number and the identifier of the processor that wrote the
    sequence number. Order: by label (the partial ≺lb lifted), then by
    seqn, then by wid — a total order among counters sharing a label, which
    is what lets concurrent incrementers be serialized.

    The sequence-number bound is a parameter ([exhaust_bound], the paper
    uses 2⁶⁴); an exhausted counter is canceled and the labeling machinery
    produces a fresh epoch. *)

open Sim
open Labels

type t = {
  lbl : Label.t;
  seqn : int;
  wid : Pid.t;
}

val make : lbl:Label.t -> seqn:int -> wid:Pid.t -> t
val equal : t -> t -> bool

(** [precedes c1 c2] — the strict partial order ≺ct; [false] for
    incomparable labels. *)
val precedes : t -> t -> bool

val comparable : t -> t -> bool

(** Deterministic total tiebreak (label, seqn, wid); used to pick among
    ≺ct-maximal elements and to order view identifiers. *)
val compare_total : t -> t -> int

(** [exhausted ~bound c] — [c.seqn >= bound]. *)
val exhausted : bound:int -> t -> bool

(** [max_of l] — a maximal element under ≺ct (deterministic tiebreak);
    [None] on empty input. *)
val max_of : t list -> t option

val pp : Format.formatter -> t -> unit

(** {2 Counter pairs ⟨mct, cct⟩} *)

type pair = {
  mct : t;
  cct : t option;  (** canceling counter; [None] = legit *)
}

val pair_of : t -> pair
val legit : pair -> bool
val cancel : pair -> pair
val pair_equal : pair -> pair -> bool
val pp_pair : Format.formatter -> pair -> unit
