open Sim
open Labels

type t = {
  ca_self : Pid.t;
  mutable ca_members : Pid.Set.t;
  mutable max : Counter.pair Pid.Map.t;
  mutable store : Counter.pair list Pid.Map.t; (* per label-creator queues *)
  m_bound : int;
  exhaust : int;
  mutable label_creations : int;
}

let create ~self ~members ~in_transit_bound ~exhaust_bound =
  {
    ca_self = self;
    ca_members = members;
    max = Pid.Map.empty;
    store = Pid.Map.empty;
    m_bound = max 1 in_transit_bound;
    exhaust = exhaust_bound;
    label_creations = 0;
  }

let self t = t.ca_self
let members t = t.ca_members
let exhaust_bound t = t.exhaust
let local_max t = Pid.Map.find_opt t.ca_self t.max
let max_of t j = Pid.Map.find_opt j t.max
let label_creations t = t.label_creations
let stored t j = match Pid.Map.find_opt j t.store with Some q -> q | None -> []

let queue_bound t j =
  let v = max 1 (Pid.Set.cardinal t.ca_members) in
  if Pid.equal j t.ca_self then (v * ((v * v) + t.m_bound)) + v else v + t.m_bound

let truncate n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let same_label (a : Counter.pair) (b : Counter.pair) =
  Label.equal a.Counter.mct.Counter.lbl b.Counter.mct.Counter.lbl

(* Merging two pairs with the same label: a canceled copy wins; otherwise
   the greater ⟨seqn, wid⟩ wins. *)
let merge_pair (a : Counter.pair) (b : Counter.pair) =
  match (Counter.legit a, Counter.legit b) with
  | false, true -> a
  | true, false -> b
  | _ ->
    if Counter.precedes a.Counter.mct b.Counter.mct then b
    else if Counter.precedes b.Counter.mct a.Counter.mct then a
    else a

let store_add t (p : Counter.pair) =
  let creator = p.Counter.mct.Counter.lbl.Label.creator in
  let q = stored t creator in
  let q' =
    match List.partition (same_label p) q with
    | [], rest -> truncate (queue_bound t creator) (p :: rest)
    | dups, rest ->
      let merged = List.fold_left merge_pair p dups in
      truncate (queue_bound t creator) (merged :: rest)
  in
  t.store <- Pid.Map.add creator q' t.store

let clean_pair t (p : Counter.pair) =
  if Pid.Set.mem p.Counter.mct.Counter.lbl.Label.creator t.ca_members then Some p
  else None

let clean_max t = t.max <- Pid.Map.filter_map (fun _ p -> clean_pair t p) t.max

(* Cancel pairs whose counter is exhausted, both in max[] and the store. *)
let cancel_exhausted t =
  let fix (p : Counter.pair) =
    if Counter.legit p && Counter.exhausted ~bound:t.exhaust p.Counter.mct then
      Counter.cancel p
    else p
  in
  t.max <- Pid.Map.map fix t.max;
  t.store <- Pid.Map.map (List.map fix) t.store

(* Cancel stored legit pairs whose label is dominated by (or incomparable
   with) another stored pair of the same creator. *)
let cancel_dominated t =
  t.store <-
    Pid.Map.map
      (fun q ->
        List.map
          (fun (p : Counter.pair) ->
            if not (Counter.legit p) then p
            else if
              List.exists
                (fun (p' : Counter.pair) ->
                  (not (same_label p' p))
                  && Pid.equal p'.Counter.mct.Counter.lbl.Label.creator
                       p.Counter.mct.Counter.lbl.Label.creator
                  && not
                       (Label.precedes p'.Counter.mct.Counter.lbl
                          p.Counter.mct.Counter.lbl))
                q
            then { p with Counter.cct = Some p.Counter.mct }
            else p)
          q)
      t.store

let sync_cancellations t =
  Pid.Map.iter
    (fun _ (mp : Counter.pair) -> if not (Counter.legit mp) then store_add t mp)
    t.max;
  t.max <-
    Pid.Map.map
      (fun (mp : Counter.pair) ->
        if Counter.legit mp then
          match
            List.find_opt
              (fun p -> same_label p mp && not (Counter.legit p))
              (stored t mp.Counter.mct.Counter.lbl.Label.creator)
          with
          | Some canceled -> canceled
          | None -> mp
        else mp)
      t.max

let all_known_labels t =
  let from_pair acc (p : Counter.pair) =
    let acc = p.Counter.mct.Counter.lbl :: acc in
    match p.Counter.cct with Some c -> c.Counter.lbl :: acc | None -> acc
  in
  let acc = Pid.Map.fold (fun _ q acc -> List.fold_left from_pair acc q) t.store [] in
  Pid.Map.fold (fun _ p acc -> from_pair acc p) t.max acc

let fresh_epoch t =
  let lbl = Label.next_label ~creator:t.ca_self ~known:(all_known_labels t) in
  t.label_creations <- t.label_creations + 1;
  let c = Counter.make ~lbl ~seqn:0 ~wid:t.ca_self in
  let p = Counter.pair_of c in
  store_add t p;
  t.max <- Pid.Map.add t.ca_self p t.max;
  c

let settle t =
  let candidates =
    Pid.Map.fold
      (fun _ (p : Counter.pair) acc ->
        if Counter.legit p && not (Counter.exhausted ~bound:t.exhaust p.Counter.mct)
        then p.Counter.mct :: acc
        else acc)
      t.max []
  in
  let candidates =
    Pid.Map.fold
      (fun _ q acc ->
        List.fold_left
          (fun acc (p : Counter.pair) ->
            if Counter.legit p && not (Counter.exhausted ~bound:t.exhaust p.Counter.mct)
            then p.Counter.mct :: acc
            else acc)
          acc q)
      t.store candidates
  in
  match Counter.max_of candidates with
  | Some c ->
    t.max <- Pid.Map.add t.ca_self (Counter.pair_of c) t.max;
    c
  | None -> fresh_epoch t

let find_max_counter t =
  cancel_exhausted t;
  cancel_dominated t;
  sync_cancellations t;
  settle t

let merge t ~from p =
  (match Pid.Map.find_opt from t.max with
  | Some existing when same_label existing p ->
    t.max <- Pid.Map.add from (merge_pair existing p) t.max
  | Some _ | None -> t.max <- Pid.Map.add from p t.max);
  store_add t p

let receipt_action t ~sent_max ~last_sent ~from =
  (match sent_max with
  | Some p -> merge t ~from p
  | None -> if not (Pid.equal from t.ca_self) then t.max <- Pid.Map.remove from t.max);
  (match (last_sent, local_max t) with
  | Some ls, Some mine when (not (Counter.legit ls)) && same_label ls mine ->
    t.max <- Pid.Map.add t.ca_self ls t.max;
    store_add t ls
  | _ -> ());
  ignore (find_max_counter t)

let rebuild t ~members =
  t.ca_members <- members;
  t.store <- Pid.Map.empty;
  clean_max t;
  let own = local_max t in
  t.max <-
    (match own with Some p -> Pid.Map.singleton t.ca_self p | None -> Pid.Map.empty);
  ignore (find_max_counter t)

let corrupt t ~max_entries =
  List.iter (fun (j, p) -> t.max <- Pid.Map.add j p t.max) max_entries

let pp fmt t =
  Format.fprintf fmt "counters(p%a) max=%a" Pid.pp t.ca_self
    (fun fmt m ->
      Pid.Map.iter (fun j p -> Format.fprintf fmt "[%a]=%a " Pid.pp j Counter.pp_pair p) m)
    t.max
