(** Counter management for configuration members — Algorithm 4.3's state
    maintenance (the counter analogue of {!Labels.Label_algo}).

    Keeps [maxC\[\]] and [storedCnts\[\]] with the same bounds as the
    labeling algorithm; counter pairs sharing a label are merged keeping
    the greatest ⟨seqn, wid⟩ (a canceled copy wins, so cancellations are
    never lost); exhausted counters are canceled and a fresh epoch label is
    created when no legit counter survives. *)

open Sim

type t

val create :
  self:Pid.t ->
  members:Pid.Set.t ->
  in_transit_bound:int ->
  exhaust_bound:int ->
  t

val self : t -> Pid.t
val members : t -> Pid.Set.t
val exhaust_bound : t -> int

(** The locally maximal counter pair ([maxC\[i\]]). *)
val local_max : t -> Counter.pair option

(** The last pair received from member [j]. *)
val max_of : t -> Pid.t -> Counter.pair option

(** Labels created by this node (counts toward Theorem 4.4's bound). *)
val label_creations : t -> int

(** [find_max_counter t] — Algorithm 4.4's [findMaxCounter]: cancel
    exhausted counters, settle the structures, and return a legit,
    non-exhausted maximal counter (creating a new epoch if necessary). *)
val find_max_counter : t -> Counter.t

(** [merge t ~from pair] — incorporate a counter pair received from [from]
    (gossip or majWrite), keeping per-label maxima. *)
val merge : t -> from:Pid.t -> Counter.pair -> unit

(** [receipt_action t ~sent_max ~last_sent ~from] — the gossip receipt
    action of Algorithm 4.3. *)
val receipt_action :
  t ->
  sent_max:Counter.pair option ->
  last_sent:Counter.pair option ->
  from:Pid.t ->
  unit

(** [rebuild t ~members] — after a reconfiguration: new member set, empty
    queues, non-member counters voided. *)
val rebuild : t -> members:Pid.Set.t -> unit

(** [clean_pair t p] — [None] when the pair's label creator is not a
    member. *)
val clean_pair : t -> Counter.pair -> Counter.pair option

val corrupt : t -> max_entries:(Pid.t * Counter.pair) list -> unit
val pp : Format.formatter -> t -> unit
