lib/datalink/fifo_link.ml: List Token_link
