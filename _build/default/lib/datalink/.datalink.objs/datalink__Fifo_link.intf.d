lib/datalink/fifo_link.mli: Token_link
