lib/datalink/link_runner.ml: Engine Fifo_link Pid Sim
