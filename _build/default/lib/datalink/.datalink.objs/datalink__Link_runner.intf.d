lib/datalink/link_runner.mli: Engine Fifo_link Pid Sim
