lib/datalink/snap_link.ml: Pid Sim
