lib/datalink/snap_link.mli: Pid Sim
