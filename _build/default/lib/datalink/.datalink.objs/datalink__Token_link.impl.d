lib/datalink/token_link.ml: Format List
