lib/datalink/token_link.mli: Format
