type 'a wire = 'a option Token_link.msg

type 'a t = {
  sender : 'a option Token_link.Sender.t;
  receiver : 'a option Token_link.Receiver.t;
  mutable queue : 'a list; (* pending messages, head is next to ship *)
  mutable current : 'a option; (* message carried by the current token *)
  mutable received_rev : 'a list;
}

let create ~capacity =
  {
    sender = Token_link.Sender.create ~capacity None;
    receiver = Token_link.Receiver.create ~capacity ();
    queue = [];
    current = None;
    received_rev = [];
  }

let enqueue t x = t.queue <- t.queue @ [ x ]
let sender_tick t = Token_link.Sender.on_tick t.sender

let sender_on_msg t m =
  (* Keep the payload that will be swapped in on token return equal to the
     head of the queue, so a completed exchange always ships the next
     message. *)
  (match t.queue with
  | x :: _ -> Token_link.Sender.offer t.sender (Some x)
  | [] -> Token_link.Sender.offer t.sender None);
  match Token_link.Sender.on_msg t.sender m with
  | `Waiting -> ()
  | `Token_returned -> (
    (* the token that just completed carried [t.current]; the new token
       carries the queue head (if any) *)
    match t.queue with
    | x :: rest ->
      t.queue <- rest;
      t.current <- Some x
    | [] -> t.current <- None)

let backlog t = List.length t.queue + match t.current with Some _ -> 1 | None -> 0

let receiver_on_msg t m =
  let result, ack = Token_link.Receiver.on_msg t.receiver m in
  let delivered =
    match result with
    | `Deliver (Some x) ->
      t.received_rev <- x :: t.received_rev;
      Some x
    | `Deliver None | `Duplicate | `Ignore -> None
  in
  (delivered, ack)

let received t = List.rev t.received_rev
let tokens t = Token_link.Sender.tokens t.sender
