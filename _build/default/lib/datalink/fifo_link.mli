(** Reliable FIFO end-to-end message delivery over an unreliable bounded
    channel (the paper assumes such protocols exist, citing [10, 12]; this is
    our implementation, layered on {!Token_link}).

    Each token exchange carries at most one application message; messages
    are delivered to the receiving application exactly once, in order. *)

type 'a t
(** One directed FIFO link endpoint pair folded into a single value for
    in-process simulation convenience: [sender_*] functions act on the
    sending side, [receiver_*] on the receiving side. The wire messages are
    {!Token_link.msg} values over ['a option] payloads ([None] = token with
    no application message). *)

type 'a wire = 'a option Token_link.msg

val create : capacity:int -> 'a t

(** {2 Sending side} *)

(** [enqueue t x] appends [x] to the outgoing queue. *)
val enqueue : 'a t -> 'a -> unit

(** [sender_tick t] is the packet to (re)transmit now. *)
val sender_tick : 'a t -> 'a wire

(** [sender_on_msg t m] processes an ack. *)
val sender_on_msg : 'a t -> 'a wire -> unit

(** Outstanding messages not yet carried by a completed token. *)
val backlog : 'a t -> int

(** {2 Receiving side} *)

(** [receiver_on_msg t m] is [(delivered_message, ack_to_send)]. *)
val receiver_on_msg : 'a t -> 'a wire -> 'a option * 'a wire option

(** All application messages delivered so far, in order. *)
val received : 'a t -> 'a list

(** Completed token exchanges (heartbeats observed by the sender). *)
val tokens : 'a t -> int
