open Sim

type 'a node_state = {
  link : 'a Fifo_link.t;
  peer : Pid.t;
  is_sender : bool;
}

type 'a t = {
  eng : ('a node_state, 'a Fifo_link.wire) Engine.t;
  sender : Pid.t;
  receiver : Pid.t;
}

let behavior ~capacity ~sender ~receiver =
  let init p =
    {
      link = Fifo_link.create ~capacity;
      peer = (if Pid.equal p sender then receiver else sender);
      is_sender = Pid.equal p sender;
    }
  in
  let on_timer ctx n =
    (* the sender retransmits its current packet every timer step *)
    if n.is_sender then Engine.send ctx n.peer (Fifo_link.sender_tick n.link);
    n
  in
  let on_message ctx _from m n =
    if n.is_sender then Fifo_link.sender_on_msg n.link m
    else begin
      let _, ack = Fifo_link.receiver_on_msg n.link m in
      match ack with Some a -> Engine.send ctx n.peer a | None -> ()
    end;
    n
  in
  { Engine.init; on_timer; on_message }

let create ?(seed = 42) ?(capacity = 4) ?(loss = 0.05) ~sender ~receiver () =
  if Pid.equal sender receiver then invalid_arg "Link_runner.create: same endpoint";
  let eng =
    Engine.create ~seed ~capacity ~loss
      ~behavior:(behavior ~capacity ~sender ~receiver)
      ~pids:[ sender; receiver ] ()
  in
  { eng; sender; receiver }

let engine t = t.eng
let send t x = Fifo_link.enqueue (Engine.state t.eng t.sender).link x
let received t = Fifo_link.received (Engine.state t.eng t.receiver).link
let tokens t = Fifo_link.tokens (Engine.state t.eng t.sender).link
let backlog t = Fifo_link.backlog (Engine.state t.eng t.sender).link
let run_rounds t n = Engine.run_rounds t.eng n
let run_until t ~max_steps pred = Engine.run_until t.eng ~max_steps (fun _ -> pred t)
