(** The FIFO data link running over the simulation engine: one designated
    sender and one receiver exchanging {!Fifo_link} wire packets across the
    engine's lossy, duplicating, reordering bounded channels — the setting
    the protocol is specified for (Section 2).

    Tests and benchmarks use this to exercise the link protocols under the
    same network model as the reconfiguration scheme, including partitions
    injected through {!Sim.Engine}. *)

open Sim

type 'a node_state
(** Per-node state (the node's half of the link). *)

type 'a t

val create :
  ?seed:int ->
  ?capacity:int ->
  ?loss:float ->
  sender:Pid.t ->
  receiver:Pid.t ->
  unit ->
  'a t

val engine : 'a t -> ('a node_state, 'a Fifo_link.wire) Engine.t

(** [send t x] enqueues an application message at the sender. *)
val send : 'a t -> 'a -> unit

(** Messages delivered to the receiving application, in order. *)
val received : 'a t -> 'a list

(** Completed token exchanges observed by the sender (heartbeats). *)
val tokens : 'a t -> int

(** Messages accepted but not yet carried by a completed token. *)
val backlog : 'a t -> int

val run_rounds : 'a t -> int -> unit
val run_until : 'a t -> max_steps:int -> ('a t -> bool) -> bool
