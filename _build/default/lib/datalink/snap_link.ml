open Sim

type msg =
  | Clean of { src : Pid.t; dst : Pid.t; nonce : int }
  | Clean_ack of { src : Pid.t; dst : Pid.t; nonce : int }

type phase = Cleaning | Clean_done

type t = {
  capacity : int;
  self : Pid.t;
  peer : Pid.t;
  nonce : int;
  mutable acks : int;
  mutable phase : phase;
}

let create ~capacity ~self ~peer ~nonce =
  if capacity <= 0 then invalid_arg "Snap_link.create: capacity";
  { capacity; self; peer; nonce; acks = 0; phase = Cleaning }

let phase t = t.phase

let on_tick t =
  match t.phase with
  | Clean_done -> None
  | Cleaning -> Some (Clean { src = t.self; dst = t.peer; nonce = t.nonce })

let on_msg t m =
  match m with
  | Clean { src; dst; nonce } ->
    (* Acknowledge only correctly-labeled cleaning packets from the peer. *)
    if Pid.equal src t.peer && Pid.equal dst t.self then
      (Some (Clean_ack { src = t.self; dst = t.peer; nonce }), `Pending)
    else (None, `Pending)
  | Clean_ack { src; dst; nonce } ->
    if
      Pid.equal src t.peer && Pid.equal dst t.self && nonce = t.nonce
      && t.phase = Cleaning
    then begin
      t.acks <- t.acks + 1;
      (* more than the round-trip capacity of matching acks: every packet
         now in transit postdates the handshake *)
      if t.acks > 2 * t.capacity then begin
        t.phase <- Clean_done;
        (None, `Completed)
      end
      else (None, `Pending)
    end
    else (None, `Pending)

let acks t = t.acks
