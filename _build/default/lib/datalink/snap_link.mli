(** Snap-stabilizing link cleaning (Section 2, following [15]).

    When a connection signal is received, each endpoint floods the link with
    [Clean] packets carrying its identifier labels (the anti-parallel
    data-link scheme) until more than the round-trip capacity of matching
    acknowledgments arrive; at that point every stale packet that predated
    the handshake has necessarily left the bounded channel, so the link is
    declared clean and higher layers may use it. *)

open Sim

type msg =
  | Clean of { src : Pid.t; dst : Pid.t; nonce : int }
  | Clean_ack of { src : Pid.t; dst : Pid.t; nonce : int }

type phase =
  | Cleaning  (** flooding; stale packets may still be in transit *)
  | Clean_done  (** link established and guaranteed free of stale packets *)

type t

(** [create ~capacity ~self ~peer ~nonce] starts the handshake for the
    directed link [self → peer]. [nonce] distinguishes this handshake
    instance from stale packets of earlier ones. *)
val create : capacity:int -> self:Pid.t -> peer:Pid.t -> nonce:int -> t

val phase : t -> phase

(** [on_tick t] is the next flood packet while cleaning, [None] after. *)
val on_tick : t -> msg option

(** [on_msg t m] handles an incoming packet. Packets whose labels do not
    match the link ([src]/[dst] inverted or foreign) are ignored, as the
    paper requires. Returns an acknowledgment to send, if any, and whether
    the handshake just completed. *)
val on_msg : t -> msg -> msg option * [ `Completed | `Pending ]

(** Acks received so far (for tests). *)
val acks : t -> int
