type 'a msg =
  | Data of { seq : int; payload : 'a }
  | Ack of { seq : int }

let pp_msg pp_payload fmt = function
  | Data { seq; payload } -> Format.fprintf fmt "Data(%d, %a)" seq pp_payload payload
  | Ack { seq } -> Format.fprintf fmt "Ack(%d)" seq

module Sender = struct
  type 'a t = {
    capacity : int;
    modulus : int;
    mutable seq : int;
    mutable payload : 'a;
    mutable next_payload : 'a option;
    mutable acks : int;
    mutable tokens : int;
  }

  let create ~capacity payload =
    if capacity <= 0 then invalid_arg "Token_link.Sender.create: capacity";
    {
      capacity;
      modulus = (4 * capacity) + 4;
      seq = 0;
      payload;
      next_payload = None;
      acks = 0;
      tokens = 0;
    }

  let modulus t = t.modulus
  let offer t p = t.next_payload <- Some p
  let on_tick t = Data { seq = t.seq; payload = t.payload }

  let on_msg t = function
    | Data _ -> `Waiting (* a sender endpoint ignores data packets *)
    | Ack { seq } ->
      if seq = t.seq then begin
        t.acks <- t.acks + 1;
        (* more than the round-trip capacity of acks cannot all be stale *)
        if t.acks > 2 * t.capacity then begin
          t.seq <- (t.seq + 1) mod t.modulus;
          t.acks <- 0;
          t.tokens <- t.tokens + 1;
          (match t.next_payload with
          | Some p ->
            t.payload <- p;
            t.next_payload <- None
          | None -> ());
          `Token_returned
        end
        else `Waiting
      end
      else `Waiting

  let tokens t = t.tokens
  let seq t = t.seq

  let corrupt t ~seq ~acks =
    t.seq <- ((seq mod t.modulus) + t.modulus) mod t.modulus;
    t.acks <- acks
end

module Receiver = struct
  type 'a t = {
    window_size : int;
    mutable window : int list; (* recently delivered seqs, newest first *)
    mutable delivered : int;
  }

  let create ~capacity () =
    if capacity <= 0 then invalid_arg "Token_link.Receiver.create: capacity";
    { window_size = (2 * capacity) + 2; window = []; delivered = 0 }

  let truncate n l =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: go (n - 1) rest
    in
    go n l

  let on_msg t = function
    | Ack _ -> (`Ignore, None)
    | Data { seq; payload } ->
      let ack = Some (Ack { seq }) in
      if List.mem seq t.window then (`Duplicate, ack)
      else begin
        t.window <- truncate t.window_size (seq :: t.window);
        t.delivered <- t.delivered + 1;
        (`Deliver payload, ack)
      end

  let delivered t = t.delivered
  let corrupt t ~window = t.window <- window
end
