(** Self-stabilizing token-exchange data link (Section 2, following the
    bounded-capacity non-FIFO protocols of [10, 12]).

    The sender retransmits the current packet until more than the
    round-trip capacity of matching acknowledgments arrive, then moves to
    the next packet. Each completed exchange is one token return, used as
    a heartbeat by the (N,Θ)-failure detector.

    Packets carry a bounded sequence number drawn from a domain larger
    than everything the bounded channels can hold ([4·cap + 4]); the
    receiver deduplicates against a window of recently delivered sequence
    numbers (size [2·cap + 2]), so stale packets surviving in a non-FIFO
    channel — including packets present in an arbitrary initial state —
    are acknowledged but never redelivered. *)

type 'a msg =
  | Data of { seq : int; payload : 'a }
  | Ack of { seq : int }

val pp_msg : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a msg -> unit

module Sender : sig
  type 'a t

  (** [create ~capacity payload] — [capacity] is the bound [cap] on packets
      in transit in one direction. *)
  val create : capacity:int -> 'a -> 'a t

  (** The sequence-number modulus ([4·capacity + 4]). *)
  val modulus : 'a t -> int

  (** Payload to attach to the next token (the paper's protocols always
      send their freshest state, so later offers overwrite earlier ones). *)
  val offer : 'a t -> 'a -> unit

  (** [on_tick t] is the retransmission of the current packet. *)
  val on_tick : 'a t -> 'a msg

  (** [on_msg t m] processes an incoming acknowledgment. [`Token_returned]
      signals one completed exchange (a heartbeat). *)
  val on_msg : 'a t -> 'a msg -> [ `Token_returned | `Waiting ]

  (** Number of completed exchanges. *)
  val tokens : 'a t -> int

  (** Current sequence number (for tests). *)
  val seq : 'a t -> int

  (** Arbitrary-state injection for self-stabilization tests. *)
  val corrupt : 'a t -> seq:int -> acks:int -> unit
end

module Receiver : sig
  type 'a t

  (** [create ~capacity ()] — the window size derives from [capacity]. *)
  val create : capacity:int -> unit -> 'a t

  (** [on_msg t m] acknowledges data packets. Returns the payload the first
      time a fresh token arrives ([`Deliver]), [`Duplicate] on
      retransmissions and stale packets. Acknowledgments are sent only in
      response to arriving packets, never spontaneously. *)
  val on_msg : 'a t -> 'a msg -> [ `Deliver of 'a | `Duplicate | `Ignore ] * 'a msg option

  (** Number of fresh tokens delivered. *)
  val delivered : 'a t -> int

  (** Arbitrary-state injection: overwrite the dedup window. *)
  val corrupt : 'a t -> window:int list -> unit
end
