lib/detector/theta_fd.ml: Format List Pid Sim
