lib/detector/theta_fd.mli: Format Pid Sim
