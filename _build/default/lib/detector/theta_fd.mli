(** The (N,Θ)-failure detector (Section 2).

    Every processor keeps an ordered heartbeat-count vector [nonCrashed]:
    when the token returns from processor [p], [p]'s count is zeroed and
    every other count is incremented. Live processors keep getting zeroed;
    a crashed processor's count grows without bound, opening an
    ever-expanding gap that ranks it below the live ones. The detector
    trusts the processors before the gap (at most [n_bound] of them — the
    paper's [N]) and estimates the number of active processors as the size
    of that prefix.

    The detector is unreliable: it may wrongly suspect slow processors.
    Convergence of the reconfiguration scheme only requires temporal
    reliability, which the simulator provides in fault-free stretches. *)

open Sim

type t

(** [create ~n_bound ~theta ~self] — [n_bound] is the system bound [N];
    [theta] is the gap factor: a count [c] is beyond the gap when
    [c > theta * (prev + 1)] with [prev] the preceding (smaller) count in
    the sorted vector. [self] is always trusted. *)
val create : n_bound:int -> ?theta:int -> self:Pid.t -> unit -> t

val self : t -> Pid.t

(** [heartbeat t p] — the token returned from [p]: zero [p]'s count,
    increment all other known counts. *)
val heartbeat : t -> Pid.t -> unit

(** [forget t p] removes [p] from the vector entirely (used when a crash
    becomes permanent knowledge in tests; the algorithm itself never needs
    it). *)
val forget : t -> Pid.t -> unit

(** [trusted t] is the current trusted set (the paper's [FD\[i\]]): the
    processors before the gap, capped at [n_bound], always containing
    [self]. *)
val trusted : t -> Pid.Set.t

(** [estimate t] is the live-count estimate [n_i ≤ N]. *)
val estimate : t -> int

(** [count t p] is [p]'s current heartbeat count ([None] if unknown). *)
val count : t -> Pid.t -> int option

(** [known t] is every processor ever heard from (trusted or suspected). *)
val known : t -> Pid.Set.t

(** Arbitrary-state injection for stabilization tests. *)
val corrupt : t -> (Pid.t * int) list -> unit

val pp : Format.formatter -> t -> unit
