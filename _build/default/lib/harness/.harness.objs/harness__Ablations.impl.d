lib/harness/ablations.ml: Config_value Detector Engine Experiments List Option Pid Printf Reconfig Recsa Rng Sim Stack Table
