lib/harness/ablations.mli: Experiments Table
