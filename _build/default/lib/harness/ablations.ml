open Sim
open Reconfig

let members_of n = List.init n (fun i -> i + 1)

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let n_of (p : Experiments.params) =
  match List.rev p.Experiments.sizes with last :: _ -> last | [] -> 8

(* ------------------------------------------------------------------ *)
(* A1: failure-detector gap factor.                                     *)
(* ------------------------------------------------------------------ *)

let a1_theta_sweep p =
  let n = n_of p in
  let rows =
    List.map
      (fun theta ->
        let per_seed =
          List.map
            (fun seed ->
              let sys =
                Stack.create ~seed ~theta ~n_bound:(2 * n) ~hooks:Stack.unit_hooks
                  ~members:(members_of n) ()
              in
              Stack.run_rounds sys 60;
              let spurious = Stack.total_resets sys in
              (* crash one member; how long until every survivor's detector
                 suspects it? *)
              Stack.crash sys 1;
              let start = Engine.rounds (Stack.engine sys) in
              let suspected t =
                List.for_all
                  (fun (_, node) ->
                    not (Pid.Set.mem 1 (Detector.Theta_fd.trusted node.Stack.fd)))
                  (Stack.live_nodes t)
              in
              let ok = Stack.run_until sys ~max_steps:2_000_000 suspected in
              let detection =
                if ok then float_of_int (Engine.rounds (Stack.engine sys) - start)
                else nan
              in
              (float_of_int spurious, detection))
            p.Experiments.seeds
        in
        [
          Table.cell_int theta;
          Table.cell_float (mean (List.map fst per_seed));
          Table.cell_float (mean (List.map snd per_seed));
        ])
      [ 2; 3; 4; 8; 16 ]
  in
  Table.make ~id:"A1" ~title:"failure-detector gap factor Θ"
    ~claim:
      "design choice: Θ trades false suspicion (spurious resets in a \
       fault-free run) against crash-detection latency"
    ~header:[ "theta"; "spurious resets (60 fault-free rounds)"; "crash detection rounds" ]
    rows

(* ------------------------------------------------------------------ *)
(* A2: packet loss vs delicate replacement latency.                     *)
(* ------------------------------------------------------------------ *)

let a2_loss_sweep p =
  let n = n_of p in
  let target = Pid.set_of_list (members_of (n - 1)) in
  let rows =
    List.map
      (fun loss ->
        let per_seed =
          List.filter_map
            (fun seed ->
              let sys =
                Stack.create ~seed ~loss ~n_bound:(2 * n) ~hooks:Stack.unit_hooks
                  ~members:(members_of n) ()
              in
              Stack.run_rounds sys 30;
              let rec propose k =
                if k = 0 then false
                else if Stack.estab sys 1 target then true
                else begin
                  Stack.run_rounds sys 2;
                  propose (k - 1)
                end
              in
              if not (propose 100) then None
              else begin
                let start = Engine.rounds (Stack.engine sys) in
                let done_ t =
                  Stack.quiescent t
                  &&
                  match Stack.uniform_config t with
                  | Some c -> Pid.Set.equal c target
                  | None -> false
                in
                if Stack.run_until sys ~max_steps:4_000_000 done_ then
                  Some (float_of_int (Engine.rounds (Stack.engine sys) - start))
                else None
              end)
            p.Experiments.seeds
        in
        [
          Printf.sprintf "%.0f%%" (loss *. 100.0);
          Table.cell_int (List.length per_seed);
          Table.cell_float (mean per_seed);
        ])
      [ 0.0; 0.02; 0.10; 0.25 ]
  in
  Table.make ~id:"A2" ~title:"packet loss vs delicate replacement latency"
    ~claim:
      "design choice: the unison echo/allSeen handshake retransmits state \
       every step, so replacement latency should degrade gracefully with \
       loss"
    ~header:[ "loss"; "completed"; "rounds(mean)" ]
    rows

(* ------------------------------------------------------------------ *)
(* A3: channel capacity vs recovery cost.                               *)
(* ------------------------------------------------------------------ *)

let a3_capacity_sweep p =
  let n = n_of p in
  let rows =
    List.map
      (fun capacity ->
        let per_seed =
          List.filter_map
            (fun seed ->
              let sys =
                Stack.create ~seed ~capacity ~n_bound:(2 * n) ~hooks:Stack.unit_hooks
                  ~members:(members_of n) ()
              in
              Stack.run_rounds sys 25;
              Stack.corrupt_everything sys ~rng:(Rng.create (seed * 31));
              Option.map float_of_int
                (Stack.run_until_quiescent sys ~max_rounds:p.Experiments.max_rounds))
            p.Experiments.seeds
        in
        [
          Table.cell_int capacity;
          Table.cell_int (List.length per_seed);
          Table.cell_float (mean per_seed);
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  Table.make ~id:"A3" ~title:"channel capacity vs recovery from arbitrary state"
    ~claim:
      "design choice: bigger channels can carry more stale packets after a \
       transient fault; recovery cost should grow only mildly with cap"
    ~header:[ "cap"; "recovered"; "rounds(mean)" ]
    rows

(* ------------------------------------------------------------------ *)
(* A4: brute force vs delicate replacement.                             *)
(* ------------------------------------------------------------------ *)

let a4_brute_vs_delicate p =
  let rows =
    List.concat_map
      (fun n ->
        let delicate =
          List.filter_map
            (fun seed ->
              let sys =
                Stack.create ~seed ~n_bound:(2 * n) ~hooks:Stack.unit_hooks
                  ~members:(members_of n) ()
              in
              Stack.run_rounds sys 30;
              let target = Pid.set_of_list (members_of (n - 1)) in
              let rec propose k =
                if k = 0 then false
                else if Stack.estab sys 1 target then true
                else (Stack.run_rounds sys 2; propose (k - 1))
              in
              if not (propose 100) then None
              else begin
                let start = Engine.rounds (Stack.engine sys) in
                if
                  Stack.run_until sys ~max_steps:4_000_000 (fun t ->
                      Stack.quiescent t
                      && Stack.uniform_config t = Some target)
                then Some (float_of_int (Engine.rounds (Stack.engine sys) - start))
                else None
              end)
            p.Experiments.seeds
        in
        let brute =
          List.filter_map
            (fun seed ->
              let sys =
                Stack.create ~seed ~n_bound:(2 * n) ~hooks:Stack.unit_hooks
                  ~members:(members_of n) ()
              in
              Stack.run_rounds sys 30;
              (* force a reset by planting a conflicting configuration *)
              (match Stack.live_nodes sys with
              | (_, node) :: _ ->
                Recsa.corrupt node.Stack.sa
                  ~config:(Config_value.Set (Pid.set_of_list [ 1; 2 ]))
                  ()
              | [] -> ());
              Option.map float_of_int
                (Stack.run_until_quiescent sys ~max_rounds:p.Experiments.max_rounds))
            p.Experiments.seeds
        in
        [
          [
            Table.cell_int n;
            "delicate (estab)";
            Table.cell_int (List.length delicate);
            Table.cell_float (mean delicate);
          ];
          [
            Table.cell_int n;
            "brute force (conflict reset)";
            Table.cell_int (List.length brute);
            Table.cell_float (mean brute);
          ];
        ])
      p.Experiments.sizes
  in
  Table.make ~id:"A4" ~title:"brute-force reset vs delicate replacement"
    ~claim:
      "design choice: the paper keeps both techniques; delicate replacement \
       avoids resetting application state but needs the three-phase unison \
       handshake, so it is slower in rounds than a conflict-driven reset"
    ~header:[ "N"; "technique"; "completed"; "rounds(mean)" ]
    rows

let all p =
  [ a1_theta_sweep p; a2_loss_sweep p; a3_capacity_sweep p; a4_brute_vs_delicate p ]
