(** The experiment suite (EXPERIMENTS.md / DESIGN.md Section 5).

    The paper is a theory paper: its evaluation is a set of theorems and
    asymptotic bounds plus two structural figures. Each experiment here
    regenerates the measurable content of one claim on the simulation
    substrate. Every experiment is deterministic given its seeds. *)

(** Default parameters; callers (bench, CLI) can shrink for quick runs. *)
type params = {
  sizes : int list;  (** configuration sizes N *)
  seeds : int list;  (** one run per (size, seed) *)
  max_rounds : int;  (** convergence budget per run *)
}

val default_params : params
val quick_params : params

val e1_convergence : params -> Table.t
val e2_delicate_replacement : params -> Table.t
val e3_recma_trigger_bound : params -> Table.t
val e4_recma_liveness : params -> Table.t
val e5_joining : params -> Table.t
val e6_label_creations : params -> Table.t
val e7_counter_increments : params -> Table.t
val e8_vs_smr : params -> Table.t
val e9_baseline_comparison : params -> Table.t
val e10_interface_contract : params -> Table.t
val e11_shared_memory : params -> Table.t
val e12_churn : params -> Table.t
val e13_fd_estimate : params -> Table.t
val e14_partitions : params -> Table.t
val e15_message_overhead : params -> Table.t
val e16_register_comparison : params -> Table.t

(** All experiments in order. *)
val all : params -> Table.t list

(** [by_id id] — lookup an experiment by its "E<n>" identifier. *)
val by_id : string -> (params -> Table.t) option

val ids : string list
