type t = {
  id : string;
  title : string;
  claim : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~claim ~header ?(notes = []) rows =
  { id; title; claim; header; rows; notes }

let pp fmt t =
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell ->
            let w = try List.nth acc i with _ -> 0 in
            max w (String.length cell))
          row)
      (List.map String.length t.header)
      t.rows
  in
  let pp_row fmt row =
    List.iteri
      (fun i cell ->
        let w = try List.nth widths i with _ -> String.length cell in
        Format.fprintf fmt "| %-*s " w cell)
      row;
    Format.fprintf fmt "|"
  in
  let sep =
    String.concat "+"
      ("" :: List.map (fun w -> String.make (w + 2) '-') widths @ [ "" ])
  in
  Format.fprintf fmt "@.== %s: %s ==@." t.id t.title;
  Format.fprintf fmt "claim: %s@." t.claim;
  Format.fprintf fmt "%s@." sep;
  Format.fprintf fmt "%a@." pp_row t.header;
  Format.fprintf fmt "%s@." sep;
  List.iter (fun row -> Format.fprintf fmt "%a@." pp_row row) t.rows;
  Format.fprintf fmt "%s@." sep;
  List.iter (fun n -> Format.fprintf fmt "note: %s@." n) t.notes

let to_csv t =
  let line cells = String.concat "," cells in
  String.concat "\n" (line t.header :: List.map line t.rows)

let cell_int = string_of_int
let cell_float f = Printf.sprintf "%.1f" f
let cell_bool = string_of_bool
