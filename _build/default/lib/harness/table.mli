(** Result tables printed by the experiment harness (one per experiment in
    EXPERIMENTS.md). *)

type t = {
  id : string;  (** experiment id, e.g. "E1" *)
  title : string;
  claim : string;  (** the paper claim being reproduced *)
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  claim:string ->
  header:string list ->
  ?notes:string list ->
  string list list ->
  t

val pp : Format.formatter -> t -> unit

(** [to_csv t] — header plus rows, comma-separated. *)
val to_csv : t -> string

(** Format helpers for cells. *)

val cell_int : int -> string
val cell_float : float -> string
val cell_bool : bool -> string
