lib/label/label.ml: Format Int List Pid Set Sim
