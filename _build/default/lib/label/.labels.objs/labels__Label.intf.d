lib/label/label.mli: Format Pid Set Sim
