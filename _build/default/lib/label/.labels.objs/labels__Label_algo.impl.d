lib/label/label_algo.ml: Format Label List Pid Sim
