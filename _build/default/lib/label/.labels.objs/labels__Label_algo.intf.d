lib/label/label_algo.mli: Format Label Pid Sim
