lib/label/label_service.ml: Config_value Format Label Label_algo List Option Pid Reconfig Recsa Sim Stack
