lib/label/label_service.mli: Label Label_algo Reconfig Stack
