open Sim
module Int_set = Set.Make (Int)

type t = { creator : Pid.t; sting : int; antistings : Int_set.t }

let make ~creator ~sting ~antistings =
  { creator; sting; antistings = Int_set.of_list antistings }

let equal l1 l2 =
  Pid.equal l1.creator l2.creator
  && l1.sting = l2.sting
  && Int_set.equal l1.antistings l2.antistings

(* Same-creator comparison is the sting/antisting relation; distinct
   creators are ordered by identifier. *)
let precedes l1 l2 =
  if not (Pid.equal l1.creator l2.creator) then Pid.compare l1.creator l2.creator < 0
  else
    (not (equal l1 l2))
    && Int_set.mem l1.sting l2.antistings
    && not (Int_set.mem l2.sting l1.antistings)

let comparable l1 l2 = equal l1 l2 || precedes l1 l2 || precedes l2 l1

let compare_total l1 l2 =
  let c = Pid.compare l1.creator l2.creator in
  if c <> 0 then c
  else
    let c = Int.compare l1.sting l2.sting in
    if c <> 0 then c
    else Int_set.compare l1.antistings l2.antistings

let max_legit labels =
  match labels with
  | [] -> None
  | _ ->
    (* keep the ≺lb-maximal elements, then tiebreak deterministically *)
    let maximal =
      List.filter
        (fun l -> not (List.exists (fun l' -> precedes l l') labels))
        labels
    in
    let pool = match maximal with [] -> labels | _ -> maximal in
    Some
      (List.fold_left
         (fun best l -> if compare_total l best > 0 then l else best)
         (List.hd pool) (List.tl pool))

let next_label ~creator ~known =
  let excluded =
    List.fold_left (fun acc l -> Int_set.union acc l.antistings) Int_set.empty known
  in
  let rec fresh i = if Int_set.mem i excluded then fresh (i + 1) else i in
  let sting = fresh 0 in
  let antistings =
    List.fold_left (fun acc l -> Int_set.add l.sting acc) Int_set.empty known
  in
  { creator; sting; antistings }

let pp fmt l =
  Format.fprintf fmt "L(p%a, s=%d, A={%a})" Pid.pp l.creator l.sting
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ",")
       Format.pp_print_int)
    (Int_set.elements l.antistings)

type pair = { ml : t; cl : t option }

let pair_of l = { ml = l; cl = None }
let legit p = p.cl = None
let cancel p ~by = { p with cl = Some by }

let pair_equal p1 p2 =
  equal p1.ml p2.ml
  &&
  match (p1.cl, p2.cl) with
  | None, None -> true
  | Some a, Some b -> equal a b
  | None, Some _ | Some _, None -> false

let pp_pair fmt p =
  match p.cl with
  | None -> Format.fprintf fmt "<%a, _>" pp p.ml
  | Some c -> Format.fprintf fmt "<%a, X %a>" pp p.ml pp c
