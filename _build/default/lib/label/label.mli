(** Bounded epoch labels — the label structure of Dolev et al. [11]
    (re-implemented from its published description; Section 4.1 of the
    paper).

    A label is ⟨lCreator, sting, antistings⟩. Comparison is first by
    creator identifier; between labels of the same creator,
    ℓ1 ≺ ℓ2 ⟺ ℓ1.sting ∈ ℓ2.antistings ∧ ℓ2.sting ∉ ℓ1.antistings —
    which makes same-creator labels possibly {e incomparable} (exactly the
    situation the cancellation machinery of Algorithm 4.2 resolves).

    Given any bounded set of labels, a processor can create a label greater
    than all of them: choose a sting outside every antisting set seen and
    antistings covering every sting seen. Sting values are drawn from a
    bounded domain; boundedness holds because the label storage itself is
    bounded (Algorithm 4.2's queues). *)

open Sim

module Int_set : Set.S with type elt = int

type t = {
  creator : Pid.t;
  sting : int;
  antistings : Int_set.t;
}

val make : creator:Pid.t -> sting:int -> antistings:int list -> t
val equal : t -> t -> bool

(** [precedes l1 l2] — the partial order ≺lb. *)
val precedes : t -> t -> bool

(** [comparable l1 l2] — related by ≺lb one way or the other, or equal. *)
val comparable : t -> t -> bool

(** A deterministic total tiebreak (creator, sting, antistings) used only to
    choose among ≺lb-maximal elements; NOT the semantic order. *)
val compare_total : t -> t -> int

(** [max_legit labels] — a ≺lb-maximal element of [labels] (ties broken by
    [compare_total]); [None] on empty input. *)
val max_legit : t list -> t option

(** [next_label ~creator ~known] creates a label by [creator] strictly
    greater (under ≺lb) than every label in [known] — sting outside all
    antistings seen, antistings covering all stings seen. *)
val next_label : creator:Pid.t -> known:t list -> t

val pp : Format.formatter -> t -> unit

(** {2 Label pairs}

    A pair ⟨ml, cl⟩ where [cl] cancels [ml] when present: a canceled label
    can never again be adopted as maximal. *)

type pair = {
  ml : t;
  cl : t option;
}

val pair_of : t -> pair

(** [legit p] — not canceled. *)
val legit : pair -> bool

val cancel : pair -> by:t -> pair
val pair_equal : pair -> pair -> bool
val pp_pair : Format.formatter -> pair -> unit
