open Sim

type t = {
  la_self : Pid.t;
  mutable la_members : Pid.Set.t;
  mutable max : Label.pair Pid.Map.t; (* absent entry = ⊥ *)
  mutable store : Label.pair list Pid.Map.t; (* per-creator queues, front freshest *)
  m_bound : int; (* labels possibly in transit *)
  mutable creations : int;
}

let own_queue_bound t =
  let v = max 1 (Pid.Set.cardinal t.la_members) in
  (v * ((v * v) + t.m_bound)) + v

let other_queue_bound t =
  let v = max 1 (Pid.Set.cardinal t.la_members) in
  v + t.m_bound

let create ~self ~members ~in_transit_bound =
  {
    la_self = self;
    la_members = members;
    max = Pid.Map.empty;
    store = Pid.Map.empty;
    m_bound = max 1 in_transit_bound;
    creations = 0;
  }

let self t = t.la_self
let members t = t.la_members
let local_max t = Pid.Map.find_opt t.la_self t.max
let max_of t j = Pid.Map.find_opt j t.max
let stored t j = match Pid.Map.find_opt j t.store with Some q -> q | None -> []
let creations t = t.creations

let truncate n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let queue_bound t j = if Pid.equal j t.la_self then own_queue_bound t else other_queue_bound t

(* Add a pair to the front of its creator's queue, respecting the bound. *)
let store_add t (p : Label.pair) =
  let creator = p.Label.ml.Label.creator in
  let q = stored t creator in
  t.store <- Pid.Map.add creator (truncate (queue_bound t creator) (p :: q)) t.store

let clean_pair t (p : Label.pair) =
  let bad l = not (Pid.Set.mem l.Label.creator t.la_members) in
  if bad p.Label.ml || (match p.Label.cl with Some c -> bad c | None -> false) then None
  else Some p

(* cleanMax(): remove max entries whose label was created by a non-member. *)
let clean_max t =
  t.max <-
    Pid.Map.filter_map (fun _ p -> clean_pair t p) t.max

(* staleInfo(): a queue contains a label filed under the wrong creator, or
   two pairs with the same ml (doubles are handled separately; the wrongly
   filed case warrants a full flush). *)
let stale_info t =
  Pid.Map.exists
    (fun j q ->
      List.exists (fun (p : Label.pair) -> not (Pid.equal p.Label.ml.Label.creator j)) q)
    t.store

let same_ml (a : Label.pair) (b : Label.pair) = Label.equal a.Label.ml b.Label.ml

(* Remove duplicate-ml entries within each queue, preferring a canceled copy
   (cancellations must never be lost). *)
let dedup_queues t =
  t.store <-
    Pid.Map.map
      (fun q ->
        List.fold_left
          (fun acc p ->
            match List.find_opt (same_ml p) acc with
            | None -> acc @ [ p ]
            | Some existing ->
              if Label.legit existing && not (Label.legit p) then
                List.map (fun e -> if same_ml e p then p else e) acc
              else acc)
          [] q)
      t.store

(* Cancel stored legit pairs dominated by (or incomparable with) another
   stored pair of the same creator — the paper's notgeq. *)
let cancel_dominated t =
  t.store <-
    Pid.Map.map
      (fun q ->
        List.map
          (fun (p : Label.pair) ->
            if not (Label.legit p) then p
            else
              match
                List.find_opt
                  (fun (p' : Label.pair) ->
                    (not (same_ml p' p)) && not (Label.precedes p'.Label.ml p.Label.ml))
                  q
              with
              | Some p' -> Label.cancel p ~by:p'.Label.ml
              | None -> p)
          q)
      t.store

(* Propagate cancellations between the max array and the queues, both
   directions. *)
let sync_cancellations t =
  (* canceled max entries cancel stored copies *)
  Pid.Map.iter
    (fun _ (mp : Label.pair) ->
      if not (Label.legit mp) then
        t.store <-
          Pid.Map.map
            (fun q -> List.map (fun p -> if same_ml p mp && Label.legit p then mp else p) q)
            t.store)
    t.max;
  (* canceled stored copies cancel legit max entries *)
  t.max <-
    Pid.Map.map
      (fun (mp : Label.pair) ->
        if Label.legit mp then
          match
            List.find_opt
              (fun p -> same_ml p mp && not (Label.legit p))
              (stored t mp.Label.ml.Label.creator)
          with
          | Some canceled -> canceled
          | None -> mp
        else mp)
      t.max

let all_stored_labels t =
  Pid.Map.fold
    (fun _ q acc ->
      List.fold_left
        (fun acc (p : Label.pair) ->
          let acc = p.Label.ml :: acc in
          match p.Label.cl with Some c -> c :: acc | None -> acc)
        acc q)
    t.store []

let use_own_label t =
  match List.find_opt Label.legit (stored t t.la_self) with
  | Some lp -> t.max <- Pid.Map.add t.la_self lp t.max
  | None ->
    (* create a label strictly greater than everything we know about,
       including canceled labels and canceling labels *)
    let known = all_stored_labels t in
    let l = Label.next_label ~creator:t.la_self ~known in
    t.creations <- t.creations + 1;
    let lp = Label.pair_of l in
    store_add t lp;
    t.max <- Pid.Map.add t.la_self lp t.max

let settle_max t =
  let legit_labels =
    Pid.Map.fold
      (fun _ (p : Label.pair) acc -> if Label.legit p then p.Label.ml :: acc else acc)
      t.max []
  in
  match Label.max_legit legit_labels with
  | Some l -> t.max <- Pid.Map.add t.la_self (Label.pair_of l) t.max
  | None -> use_own_label t

let receipt_action t ~sent_max ~last_sent ~from =
  (* line 18: record the sender's maximum *)
  (match sent_max with
  | Some p -> t.max <- Pid.Map.add from p t.max
  | None -> if not (Pid.equal from t.la_self) then t.max <- Pid.Map.remove from t.max);
  (* line 19: adopt a cancellation of our own maximum *)
  (match (last_sent, local_max t) with
  | Some ls, Some mine when (not (Label.legit ls)) && same_ml ls mine ->
    t.max <- Pid.Map.add t.la_self ls t.max
  | _ -> ());
  (* line 20 *)
  if stale_info t then t.store <- Pid.Map.empty;
  (* line 21: every max entry must be recorded in its creator's queue *)
  Pid.Map.iter
    (fun _ (p : Label.pair) ->
      let q = stored t p.Label.ml.Label.creator in
      if not (List.exists (same_ml p) q) then store_add t p)
    t.max;
  (* lines 22-25 *)
  cancel_dominated t;
  sync_cancellations t;
  dedup_queues t;
  sync_cancellations t;
  (* lines 26-27 *)
  settle_max t

let rebuild t ~members =
  t.la_members <- members;
  t.store <- Pid.Map.empty;
  clean_max t;
  let own = local_max t in
  t.max <- (match own with Some p -> Pid.Map.singleton t.la_self p | None -> Pid.Map.empty);
  receipt_action t ~sent_max:None ~last_sent:own ~from:t.la_self

let corrupt t ~max_entries ~stored_entries =
  List.iter (fun (j, p) -> t.max <- Pid.Map.add j p t.max) max_entries;
  List.iter (fun (j, q) -> t.store <- Pid.Map.add j q t.store) stored_entries

let pp fmt t =
  let pp_max fmt m =
    Pid.Map.iter (fun j p -> Format.fprintf fmt "max[%a]=%a " Pid.pp j Label.pp_pair p) m
  in
  Format.fprintf fmt "labels(p%a) %a" Pid.pp t.la_self pp_max t.max
