(** The fixed-set labeling algorithm of [11] — Algorithm 4.2's
    [labelReceiptAction], with the bounded [max\[\]] array and
    [storedLabels\[\]] queues.

    Run by configuration members only. Each member keeps, per member [j],
    the last label pair received from [j] ([max\[j\]]) and a bounded queue
    of label pairs created by [j] ([storedLabels\[j\]]). The receipt action
    cancels dominated or incomparable same-creator labels, propagates
    cancellations, and settles on a legit maximal label — creating a fresh,
    strictly greater own label when no legit label survives. *)

open Sim

type t

(** [create ~self ~members ~in_transit_bound] — [in_transit_bound] is the
    paper's [m], the maximum number of label pairs in transit; queue bounds
    are [v + m] for other members' labels and [v(v² + m) + v] for own
    labels, with [v = |members|]. *)
val create : self:Pid.t -> members:Pid.Set.t -> in_transit_bound:int -> t

val self : t -> Pid.t
val members : t -> Pid.Set.t

(** [local_max t] — the pair this processor currently believes maximal
    ([max\[i\]]); [None] before any label exists. *)
val local_max : t -> Label.pair option

(** [max_of t j] — the last pair received from member [j]. *)
val max_of : t -> Pid.t -> Label.pair option

(** [stored t j] — the queue of label pairs created by [j] (front =
    freshest). *)
val stored : t -> Pid.t -> Label.pair list

(** Total number of labels this processor has created ([nextLabel] calls) —
    the quantity bounded by Theorem 4.4. *)
val creations : t -> int

(** [receipt_action t ~sent_max ~last_sent ~from] — Algorithm 4.2's
    function. [sent_max] is the sender's maximal pair, [last_sent] the echo
    of our own maximal pair as the sender last saw it. Ensures [local_max]
    is a legit pair afterwards. *)
val receipt_action :
  t -> sent_max:Label.pair option -> last_sent:Label.pair option -> from:Pid.t -> unit

(** [rebuild t ~members] — Algorithm 4.1's [rebuild]/[emptyAllQueues]/
    [cleanMax] after a reconfiguration: adopt the new member set, drop all
    queues, remove labels by non-members, then re-run the receipt action on
    the own maximal label. *)
val rebuild : t -> members:Pid.Set.t -> unit

(** [clean_pair t p] — the paper's [cleanLP]: [None] when the pair involves
    a non-member creator. *)
val clean_pair : t -> Label.pair -> Label.pair option

(** Arbitrary-state injection: overwrite the stored queues and max array. *)
val corrupt :
  t ->
  max_entries:(Pid.t * Label.pair) list ->
  stored_entries:(Pid.t * Label.pair list) list ->
  unit

val pp : Format.formatter -> t -> unit
