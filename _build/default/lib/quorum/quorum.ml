open Sim

module type SYSTEM = sig
  val is_quorum : config:Pid.Set.t -> Pid.Set.t -> bool
  val name : string
end

let majority_threshold n = (n / 2) + 1

module Majority = struct
  let name = "majority"

  let is_quorum ~config s =
    let present = Pid.Set.cardinal (Pid.Set.inter config s) in
    present >= majority_threshold (Pid.Set.cardinal config)
end

module Grid = struct
  let name = "grid"

  (* Arrange members in ascending order into a grid with ⌈√v⌉ columns. A
     quorum must contain one full row and at least one element from every
     row (row-column cover), guaranteeing pairwise intersection. *)
  let layout config =
    let members = Array.of_list (Pid.Set.elements config) in
    let v = Array.length members in
    let cols = max 1 (int_of_float (ceil (sqrt (float_of_int v)))) in
    let rows = (v + cols - 1) / cols in
    (members, rows, cols)

  let is_quorum ~config s =
    let v = Pid.Set.cardinal config in
    if v = 0 then false
    else if v <= 2 then Majority.is_quorum ~config s
    else begin
      let members, rows, cols = layout config in
      let v = Array.length members in
      let in_s r c =
        let idx = (r * cols) + c in
        idx < v && Pid.Set.mem members.(idx) s
      in
      let row_len r = min cols (v - (r * cols)) in
      let full_row r =
        let len = row_len r in
        len > 0
        &&
        let rec go c = c >= len || (in_s r c && go (c + 1)) in
        go 0
      in
      let touches_row r =
        let len = row_len r in
        let rec go c = c < len && (in_s r c || go (c + 1)) in
        go 0
      in
      let rec has_full r = r < rows && (full_row r || has_full (r + 1)) in
      let rec touches_all r = r >= rows || (touches_row r && touches_all (r + 1)) in
      has_full 0 && touches_all 0
    end
end

module Wall = struct
  let name = "crumbling-wall"

  (* Rows of increasing width 1, 2, 3, ... over the members in ascending
     identifier order; the last row takes the remainder. *)
  let rows config =
    let members = Pid.Set.elements config in
    let rec build width = function
      | [] -> []
      | rest ->
        let rec take k acc = function
          | [] -> (List.rev acc, [])
          | l when k = 0 -> (List.rev acc, l)
          | x :: l -> take (k - 1) (x :: acc) l
        in
        let row, rest' = take width [] rest in
        row :: build (width + 1) rest'
    in
    build 1 members

  let is_quorum ~config s =
    let v = Pid.Set.cardinal config in
    if v = 0 then false
    else if v <= 2 then Majority.is_quorum ~config s
    else begin
      let rows = rows config in
      let full row = List.for_all (fun p -> Pid.Set.mem p s) row in
      let touched row = List.exists (fun p -> Pid.Set.mem p s) row in
      (* a quorum: some full row plus a representative in every row below *)
      let rec scan = function
        | [] -> false
        | row :: below -> (full row && List.for_all touched below) || scan below
      in
      scan rows
    end
end

let has_majority ~config alive = Majority.is_quorum ~config alive
let intersects q1 q2 = not (Pid.Set.is_empty (Pid.Set.inter q1 q2))
