lib/reconfig/config_value.ml: Format Int Pid Sim
