lib/reconfig/config_value.mli: Format Pid Sim
