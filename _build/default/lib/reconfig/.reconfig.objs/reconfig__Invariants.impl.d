lib/reconfig/invariants.ml: Detector List Printf Recsa Stack
