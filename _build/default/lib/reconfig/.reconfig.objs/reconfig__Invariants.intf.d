lib/reconfig/invariants.mli: Pid Recsa Sim Stack
