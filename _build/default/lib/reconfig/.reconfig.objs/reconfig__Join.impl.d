lib/reconfig/join.ml: Config_value Format List Pid Quorum Recsa Sim
