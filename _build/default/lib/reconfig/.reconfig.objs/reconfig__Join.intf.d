lib/reconfig/join.mli: Format Pid Quorum Recsa Sim
