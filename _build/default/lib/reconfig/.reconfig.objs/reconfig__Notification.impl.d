lib/reconfig/notification.ml: Format Int List Pid Sim
