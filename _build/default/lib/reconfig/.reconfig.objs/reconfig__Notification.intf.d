lib/reconfig/notification.mli: Format Pid Sim
