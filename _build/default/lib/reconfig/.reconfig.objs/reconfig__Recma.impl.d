lib/reconfig/recma.ml: Config_value Format List Pid Quorum Recsa Sim
