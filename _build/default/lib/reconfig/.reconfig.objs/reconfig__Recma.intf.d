lib/reconfig/recma.mli: Format Pid Quorum Recsa Sim
