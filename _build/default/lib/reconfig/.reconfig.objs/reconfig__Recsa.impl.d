lib/reconfig/recsa.ml: Bool Config_value Format List Notification Option Pid Sim
