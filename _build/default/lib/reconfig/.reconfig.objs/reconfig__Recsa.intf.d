lib/reconfig/recsa.mli: Config_value Format Notification Pid Sim
