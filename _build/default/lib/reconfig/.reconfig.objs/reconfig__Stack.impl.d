lib/reconfig/stack.ml: Config_value Datalink Detector Engine Join List Metrics Notification Pid Quorum Recma Recsa Rng Sim
