lib/reconfig/stack.mli: Config_value Datalink Detector Engine Join Pid Quorum Recma Recsa Rng Sim
