open Sim

type t = Not_participant | Reset | Set of Pid.Set.t

let equal a b =
  match (a, b) with
  | Not_participant, Not_participant -> true
  | Reset, Reset -> true
  | Set s1, Set s2 -> Pid.Set.equal s1 s2
  | (Not_participant | Reset | Set _), _ -> false

let rank = function Not_participant -> 0 | Reset -> 1 | Set _ -> 2

let compare a b =
  match (a, b) with
  | Set s1, Set s2 -> Pid.compare_sets_lex s1 s2
  | _ -> Int.compare (rank a) (rank b)

let pp fmt = function
  | Not_participant -> Format.fprintf fmt "#"
  | Reset -> Format.fprintf fmt "_|_"
  | Set s -> Pid.pp_set fmt s

let is_set = function Set _ -> true | Not_participant | Reset -> false
let is_reset = function Reset -> true | Not_participant | Set _ -> false

let is_not_participant = function
  | Not_participant -> true
  | Reset | Set _ -> false

let to_set = function Set s -> Some s | Not_participant | Reset -> None
