let stale_report sys =
  List.concat_map
    (fun (p, node) ->
      let trusted = Detector.Theta_fd.trusted node.Stack.fd in
      List.map
        (fun ty -> (p, ty))
        (Recsa.stale_types node.Stack.sa ~trusted))
    (Stack.live_nodes sys)

let no_stale_information sys = stale_report sys = []

let steady_config_state sys =
  Stack.quiescent sys && no_stale_information sys

let closure sys ~rounds =
  if not (steady_config_state sys) then Error "not in a steady config state"
  else begin
    let resets0 = Stack.total_resets sys in
    let installs0 = Stack.total_installs sys in
    let rec go k =
      if k = 0 then Ok ()
      else begin
        Stack.run_rounds sys 1;
        if Stack.total_resets sys > resets0 then
          Error (Printf.sprintf "reset occurred after %d rounds" (rounds - k + 1))
        else if Stack.total_installs sys > installs0 then
          Error (Printf.sprintf "spurious install after %d rounds" (rounds - k + 1))
        else if not (Stack.quiescent sys) then
          Error (Printf.sprintf "left quiescence after %d rounds" (rounds - k + 1))
        else go (k - 1)
      end
    in
    go rounds
  end
