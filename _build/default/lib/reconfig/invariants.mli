(** System-wide invariant checking for the reconfiguration scheme.

    Executable versions of the proof obligations: the absence of stale
    information (Definition 3.1 via {!Recsa.stale_types}), configuration
    uniformity, and the closure property of Theorem 3.16 — once a steady
    config state is reached it persists (no resets, no spurious installs)
    in the absence of new proposals and failures. *)

open Sim

(** Stale information present anywhere in the system: one entry per
    (processor, type). *)
val stale_report : ('app, 'msg) Stack.t -> (Pid.t * Recsa.stale_type) list

(** [no_stale_information sys] — Definition 3.1 holds at every live
    node. *)
val no_stale_information : ('app, 'msg) Stack.t -> bool

(** [steady_config_state sys] — conflict-free uniform configuration, no
    stale information, every participant reports [no_reco]. *)
val steady_config_state : ('app, 'msg) Stack.t -> bool

(** [closure sys ~rounds] — Theorem 3.16(1): starting from a steady config
    state, run [rounds] rounds and verify the system stays steady the whole
    time with no resets and no installs. Returns [Ok ()] or
    [Error reason]. *)
val closure : ('app, 'msg) Stack.t -> rounds:int -> (unit, string) result
