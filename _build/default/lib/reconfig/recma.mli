(** Reconfiguration Management — Algorithm 3.2.

    recMA triggers a delicate reconfiguration (via recSA's [estab]) when
    either (i) the configuration's majority appears collapsed — the
    processor and its whole {e core} (the intersection of the failure
    detectors of all trusted participants) fail to see a majority of
    members, or (ii) an application-supplied prediction function
    [eval_conf] tells a majority of members that a reconfiguration is
    needed.

    Flags are reset at the start of every iteration and flushed after every
    triggering, bounding the spurious triggerings caused by stale
    information to O(N²·cap) (Lemma 3.18). *)

open Sim

type t

(** The wire message of lines 19–20: ⟨noMaj\[i\], needReconf\[i\]⟩. *)
type message = { m_no_maj : bool; m_need_reconf : bool }

val create : self:Pid.t -> t

(** [tick t ~trusted ~recsa ~eval_conf ()] is one iteration of the
    do-forever loop. [eval_conf config] is the prediction function
    (evaluated only when needed). [quorum] generalizes the majority tests
    (default {!Quorum.Majority}): "no quorum of members trusted" triggers
    the collapse path, a quorum of supporters triggers the prediction path
    — the generalization the paper describes in Related Work. Calls
    [Recsa.estab] on triggering. Returns the broadcast messages (to all
    trusted participants) and trace events. *)
val tick :
  t ->
  ?quorum:(module Quorum.SYSTEM) ->
  trusted:Pid.Set.t ->
  recsa:Recsa.t ->
  eval_conf:(Pid.Set.t -> bool) ->
  unit ->
  (Pid.t * message) list * (string * string) list

val receive : t -> from:Pid.t -> participant:bool -> message -> unit

(** [core t ~trusted ~recsa] = ∩ over trusted participants of their
    failure-detector sets (line 4). *)
val core : t -> trusted:Pid.Set.t -> recsa:Recsa.t -> Pid.Set.t

(** Number of [estab] calls actually accepted by recSA. *)
val trigger_count : t -> int

(** All triggerings attempted (accepted or not) — Lemma 3.18's count. *)
val attempt_count : t -> int

(** Arbitrary-state injection. *)
val corrupt :
  t -> no_maj:(Pid.t * bool) list -> need_reconf:(Pid.t * bool) list -> unit

val pp : Format.formatter -> t -> unit
