(** Reconfiguration Stability Assurance — Algorithm 3.1.

    recSA guarantees that (1) all active processors eventually hold identical
    copies of a single configuration, (2) when participants propose to
    replace the configuration, exactly one proposal is selected and
    installed, and (3) joining processors can eventually become
    participants.

    Two techniques are combined:

    - {b Brute-force stabilization}: on detecting stale information
      (Definition 3.1, types 1–4) the processor starts a reset by assigning
      ⊥ to its configuration; once all trusted processors report identical
      failure-detector sets, the trusted set itself becomes the new
      configuration.
    - {b Delicate replacement}: proposals ⟨1, set⟩ travel as notifications;
      participants converge on the lexicographically maximal one (phase 1),
      install its set (phase 2), and return to monitoring (phase 0),
      advancing in unison via the echo / all / allSeen handshake (the
      automaton of Figure 2).

    The module is a pure protocol core: [tick] is one iteration of the
    [do forever] loop given the current failure-detector output, [broadcast]
    produces the end-of-loop messages (line 29), and [receive] stores an
    incoming message (line 30). All effects live in the caller. *)

open Sim

(** The echo triple (participant set, notification, all-flag) — what a peer
    reports having most recently received from us. *)
type echo_view = {
  e_part : Pid.Set.t;
  e_prp : Notification.t;
  e_all : bool;
}

(** The wire message of line 29:
    ⟨FD\[i\], config\[i\], prp\[i\], all\[i\], (FD\[j\].part, prp\[j\], all\[j\])⟩. *)
type message = {
  m_fd : Pid.Set.t;
  m_part : Pid.Set.t;
  m_config : Config_value.t;
  m_prp : Notification.t;
  m_all : bool;
  m_echo : echo_view option;  (** [None] until the sender has heard from us *)
}

type t

(** [create ~self ~participant ?initial_config ()] — a participant starts
    with [config = Set initial_config] (default: not yet known, ⊥ would be
    wrong; participants in a running system are created with the agreed
    set); a non-participant starts with config = ♯ (the booting interrupt of
    line 31). *)
val create : self:Pid.t -> participant:bool -> ?initial_config:Pid.Set.t -> unit -> t

val self : t -> Pid.t

(** {2 Protocol steps} *)

(** [tick t ~trusted] runs one iteration of the do-forever loop (lines
    25–28) with [trusted] the current (N,Θ)-failure-detector output.
    Returns trace events emitted during the step. *)
val tick : t -> trusted:Pid.Set.t -> (string * string) list

(** [broadcast t ~trusted] is the line-29 broadcast: one message per trusted
    peer, empty when the processor is not a participant (config = ♯). *)
val broadcast : t -> trusted:Pid.Set.t -> (Pid.t * message) list

(** [receive t ~from m] stores the message fields (line 30). *)
val receive : t -> from:Pid.t -> message -> unit

(** {2 Interface functions (Figure 1)} *)

(** [get_config t ~trusted] — the application-facing configuration view. *)
val get_config : t -> trusted:Pid.Set.t -> Config_value.t

(** [no_reco t ~trusted] is [true] iff no reconfiguration is taking place:
    the processor is recognized by its trusted peers, there are no
    configuration conflicts, participant sets have stabilized, no reset is
    in progress and no notification is active. *)
val no_reco : t -> trusted:Pid.Set.t -> bool

(** [estab t ~trusted set] requests replacement of the configuration by
    [set]. Accepted (returns [true]) only when [no_reco] holds and [set] is
    neither the current configuration nor empty. *)
val estab : t -> trusted:Pid.Set.t -> Pid.Set.t -> bool

(** [participate t ~trusted] — the joining mechanism requests participant
    status; accepted only when [no_reco] holds. Returns [true] if the
    processor is a participant afterwards. *)
val participate : t -> trusted:Pid.Set.t -> bool

(** {2 Introspection (tests and experiments)} *)

val config : t -> Config_value.t
val prp : t -> Notification.t
val all_flag : t -> bool
val all_seen : t -> Pid.Set.t
val is_participant : t -> bool

(** [participants t ~trusted] is FD\[i\].part. *)
val participants : t -> trusted:Pid.Set.t -> Pid.Set.t

(** [peer_fd t p] is the failure-detector set last received from [p]
    (recMA's [core()] needs it). *)
val peer_fd : t -> Pid.t -> Pid.Set.t option

(** [peer_config t p] is the configuration value last received from [p]. *)
val peer_config : t -> Pid.t -> Config_value.t option

(** Number of brute-force resets started / delicate installs completed. *)
val reset_count : t -> int

val install_count : t -> int

(** The stale-information classification of Definition 3.1. *)
type stale_type =
  | Type1  (** malformed notification (phase 0 with a set, or no set) *)
  | Type2  (** reset in progress, empty or conflicting configurations *)
  | Type3  (** notification phases out of synch / conflicting phase-2 sets *)
  | Type4  (** stable view but the configuration has no live participant *)

val pp_stale_type : Format.formatter -> stale_type -> unit

(** [stale_types t ~trusted] — which stale-information types are present in
    this processor's local state right now (no mutation). Empty in a steady
    config state. *)
val stale_types : t -> trusted:Pid.Set.t -> stale_type list

(** Arbitrary-state injection for self-stabilization experiments. *)
val corrupt :
  t ->
  ?config:Config_value.t ->
  ?prp:Notification.t ->
  ?all:bool ->
  ?allseen:Pid.Set.t ->
  unit ->
  unit

(** Forget everything received (used with corrupt for full-state faults). *)
val clear_peers : t -> unit

val pp : Format.formatter -> t -> unit
