(** The full reconfiguration scheme as a single "black box" (Figure 1):
    (N,Θ)-failure detector + recSA + recMA + joining mechanism, wired into a
    {!Sim.Engine} behavior, with a pluggable application on top.

    ['app] is the application state (replicated to joiners by the joining
    mechanism); ['msg] is the application's own message type. The services
    of Section 4 (labeling, counters, virtual synchrony) are plugins. *)

open Sim

type ('app, 'msg) message =
  | Heartbeat  (** the data-link token; keeps failure detectors fed *)
  | Snap of Datalink.Snap_link.msg
      (** snap-stabilizing link cleaning on new connections (Section 2) *)
  | Sa of Recsa.message
  | Ma of Recma.message
  | Join of 'app Join.message
  | App of 'msg

type 'app node_state = {
  fd : Detector.Theta_fd.t;
  sa : Recsa.t;
  ma : Recma.t;
  join : 'app Join.t;
  mutable app : 'app;
  mutable seeds : Pid.Set.t;  (** initially-known processors *)
  mutable snap : Datalink.Snap_link.t Pid.Map.t;
      (** per-peer cleaning handshakes; a joiner participates in the
          protocols over a link only once its handshake completed *)
  joiner : bool;  (** joined after system start (runs the handshake) *)
}

(** Read-only view of the scheme handed to the application plugin — the
    [getConfig()] / [noReco()] interfaces of Figure 1. *)
type 'app scheme_view = {
  v_self : Pid.t;
  v_trusted : Pid.Set.t;
  v_recsa : Recsa.t;
  v_emit : string -> string -> unit;  (** trace emission *)
}

(** Application plugin: ticked after the scheme layers on every timer step;
    receives every [App] message. Both return messages to send. *)
type ('app, 'msg) plugin = {
  p_init : Pid.t -> 'app;
  p_tick : 'app scheme_view -> 'app -> 'app * (Pid.t * 'msg) list;
  p_recv : 'app scheme_view -> from:Pid.t -> 'msg -> 'app -> 'app * (Pid.t * 'msg) list;
  p_merge : self:Pid.t -> 'app -> 'app Pid.Map.t -> 'app;
      (** [initVars]: combine members' states into a fresh participant's
          state when joining completes *)
}

type ('app, 'msg) hooks = {
  eval_conf : self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool;
      (** prediction function: should the given configuration be replaced? *)
  pass_query : self:Pid.t -> joiner:Pid.t -> bool;
      (** may this joiner enter the computation? *)
  plugin : ('app, 'msg) plugin;
}

(** A do-nothing plugin for running the bare reconfiguration scheme. *)
val null_plugin : (unit, unit) plugin

(** Never asks for reconfiguration; always passes joiners; null plugin. *)
val unit_hooks : (unit, unit) hooks

(** [default_eval_conf ~fraction ()] — the paper's example predictor:
    replace when at least [fraction] (default 1/4) of the members are
    untrusted. *)
val default_eval_conf :
  ?fraction:float -> unit -> self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool

type ('app, 'msg) t
(** A simulated system running the scheme on every node. *)

val create :
  ?seed:int ->
  ?capacity:int ->
  ?loss:float ->
  ?theta:int ->
  ?quorum:(module Quorum.SYSTEM) ->
  n_bound:int ->
  hooks:('app, 'msg) hooks ->
  members:Pid.t list ->
  unit ->
  ('app, 'msg) t
(** [create ~n_bound ~hooks ~members ()] — the initial participants
    [members] start with the agreed configuration [members] (a steady
    config state); other processors enter later via [add_joiner].
    [quorum] (default {!Quorum.Majority}) generalizes recMA's collapse /
    prediction tests and the joining admission test to any intersecting
    quorum system — the generalization the paper claims in Related Work. *)

val engine : ('app, 'msg) t -> ('app node_state, ('app, 'msg) message) Engine.t

(** [add_joiner t p] introduces a new processor over snap-stabilized (clean)
    links; it knows the processors present at its join time. *)
val add_joiner : ('app, 'msg) t -> Pid.t -> unit

(** {2 Observation} *)

val node : ('app, 'msg) t -> Pid.t -> 'app node_state
val live_nodes : ('app, 'msg) t -> (Pid.t * 'app node_state) list
val trusted_of : ('app, 'msg) t -> Pid.t -> Pid.Set.t

(** [config_views t] — every live node's configuration value. *)
val config_views : ('app, 'msg) t -> (Pid.t * Config_value.t) list

(** [uniform_config t] is [Some s] iff every live {e participant} holds
    exactly [Set s] — the paper's conflict-free condition. [None] while any
    participant disagrees, is resetting, or no participant exists. *)
val uniform_config : ('app, 'msg) t -> Pid.Set.t option

(** [quiescent t] — uniform configuration and [no_reco] holds at every live
    participant (steady config state). *)
val quiescent : ('app, 'msg) t -> bool

(** Sums over all nodes: recSA brute-force resets, delicate installs,
    recMA accepted triggerings. *)
val total_resets : ('app, 'msg) t -> int

val total_installs : ('app, 'msg) t -> int
val total_triggers : ('app, 'msg) t -> int

(** {2 Driving} *)

val run_rounds : ('app, 'msg) t -> int -> unit
val run_until : ('app, 'msg) t -> max_steps:int -> (('app, 'msg) t -> bool) -> bool

(** [run_until_quiescent t ~max_rounds] runs until {!quiescent}; returns
    the number of rounds consumed, or [None] on timeout. *)
val run_until_quiescent : ('app, 'msg) t -> max_rounds:int -> int option

val crash : ('app, 'msg) t -> Pid.t -> unit

(** [estab t p set] — request a delicate replacement at node [p] (test
    hook; normally recMA decides). *)
val estab : ('app, 'msg) t -> Pid.t -> Pid.Set.t -> bool

(** {2 Transient faults} *)

(** [corrupt_node t p ~rng] writes pseudo-random garbage into [p]'s recSA
    and recMA state. *)
val corrupt_node : ('app, 'msg) t -> Pid.t -> rng:Rng.t -> unit

(** [corrupt_everything t ~rng] corrupts every live node and fills every
    channel between live nodes with stale protocol packets. *)
val corrupt_everything : ('app, 'msg) t -> rng:Rng.t -> unit
