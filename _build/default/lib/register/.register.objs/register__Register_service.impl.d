lib/register/register_service.ml: Config_value Counter Counter_service Counters List Map Pid Quorum Reconfig Recsa Sim Stack String
