lib/register/register_service.mli: Counter Counters Reconfig
