lib/sim/channel.ml: List Rng
