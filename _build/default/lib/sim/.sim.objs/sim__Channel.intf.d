lib/sim/channel.mli: Rng
