lib/sim/engine.ml: Channel Float Format Hashtbl Heap Int List Metrics Pid Printf Rng Trace
