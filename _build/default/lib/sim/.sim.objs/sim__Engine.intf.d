lib/sim/engine.mli: Channel Metrics Pid Rng Trace
