lib/sim/heap.mli:
