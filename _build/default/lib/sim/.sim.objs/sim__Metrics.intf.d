lib/sim/metrics.mli:
