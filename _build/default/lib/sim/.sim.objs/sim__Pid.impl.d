lib/sim/pid.ml: Format Int Map Set
