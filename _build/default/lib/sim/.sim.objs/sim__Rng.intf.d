lib/sim/rng.mli:
