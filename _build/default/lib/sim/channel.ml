type stats = {
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable duplicated : int;
}

type 'a t = {
  cap : int;
  mutable queue : 'a list; (* head = oldest *)
  mutable len : int;
  st : stats;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  { cap = capacity; queue = []; len = 0; st = { sent = 0; dropped = 0; delivered = 0; duplicated = 0 } }

let capacity t = t.cap
let length t = t.len
let is_empty t = t.len = 0
let stats t = t.st

let send t rng pkt =
  t.st.sent <- t.st.sent + 1;
  if t.len < t.cap then begin
    t.queue <- t.queue @ [ pkt ];
    t.len <- t.len + 1
  end
  else begin
    t.st.dropped <- t.st.dropped + 1;
    if Rng.bool rng then begin
      (* replace a random queued packet by the new one *)
      let victim = Rng.int rng t.len in
      t.queue <- List.mapi (fun i p -> if i = victim then pkt else p) t.queue
    end
    (* else: the new packet itself is omitted *)
  end

let remove_nth t n =
  let rec go i acc = function
    | [] -> assert false
    | x :: rest ->
      if i = n then (x, List.rev_append acc rest) else go (i + 1) (x :: acc) rest
  in
  let x, rest = go 0 [] t.queue in
  t.queue <- rest;
  t.len <- t.len - 1;
  x

let take t rng ~reorder =
  if t.len = 0 then None
  else begin
    let idx = if reorder then Rng.int rng t.len else 0 in
    let pkt = remove_nth t idx in
    t.st.delivered <- t.st.delivered + 1;
    Some pkt
  end

let duplicate_head t =
  match t.queue with
  | [] -> ()
  | pkt :: _ ->
    if t.len < t.cap then begin
      t.queue <- t.queue @ [ pkt ];
      t.len <- t.len + 1;
      t.st.duplicated <- t.st.duplicated + 1
    end

let drop_one t rng =
  if t.len > 0 then begin
    let idx = Rng.int rng t.len in
    ignore (remove_nth t idx);
    t.st.dropped <- t.st.dropped + 1
  end

let clear t =
  t.queue <- [];
  t.len <- 0

let corrupt t pkts =
  let rec truncate n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: truncate (n - 1) rest
  in
  t.queue <- truncate t.cap pkts;
  t.len <- List.length t.queue

let contents t = t.queue
