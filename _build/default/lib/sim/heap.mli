(** Minimal binary min-heap used as the simulator's event queue. *)

type 'a t

(** [create cmp] is an empty heap ordered by [cmp]. *)
val create : ('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

(** [pop t] removes and returns the minimum element.
    @raise Not_found if the heap is empty. *)
val pop : 'a t -> 'a

(** [peek t] is the minimum element without removing it.
    @raise Not_found if the heap is empty. *)
val peek : 'a t -> 'a

val clear : 'a t -> unit

(** [to_list t] is the heap contents in no particular order. *)
val to_list : 'a t -> 'a list
