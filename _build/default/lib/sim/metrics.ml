type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 32 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let series t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.series name r;
    r

let observe t name v =
  let r = series t name in
  r := v :: !r

let samples t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let sample_count t name = List.length (samples t name)

let fold_samples t name f =
  match samples t name with
  | [] -> None
  | x :: rest -> Some (List.fold_left f x rest, 1 + List.length rest)

let mean t name =
  match samples t name with
  | [] -> None
  | l ->
    let sum = List.fold_left ( +. ) 0.0 l in
    Some (sum /. float_of_int (List.length l))

let min_sample t name = Option.map fst (fold_samples t name Float.min)
let max_sample t name = Option.map fst (fold_samples t name Float.max)

let percentile t name p =
  match samples t name with
  | [] -> None
  | l ->
    let sorted = List.sort Float.compare l in
    let n = List.length sorted in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    Some (List.nth sorted idx)

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series

let counter_rows t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
