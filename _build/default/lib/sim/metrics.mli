(** Named counters and sample series gathered during a simulation run. *)

type t

val create : unit -> t

(** Integer counters. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit

(** [get t name] is the counter value, 0 if never touched. *)
val get : t -> string -> int

(** Sample series (latencies, round counts, ...). *)

val observe : t -> string -> float -> unit
val samples : t -> string -> float list
val sample_count : t -> string -> int
val mean : t -> string -> float option
val min_sample : t -> string -> float option
val max_sample : t -> string -> float option

(** [percentile t name p] with [p] in [\[0,1\]]; nearest-rank. *)
val percentile : t -> string -> float -> float option

val clear : t -> unit

(** All counters as sorted [(name, value)] rows. *)
val counter_rows : t -> (string * int) list
