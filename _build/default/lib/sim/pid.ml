type t = int

let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int
let to_string = string_of_int

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list l = Set.of_list l

let pp_set fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       Format.pp_print_int)
    (Set.elements s)

let compare_sets_lex a b =
  (* Sets as ascending tuples; shorter prefix-equal set is smaller. *)
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs', y :: ys' ->
      let c = Int.compare x y in
      if c <> 0 then c else go xs' ys'
  in
  go (Set.elements a) (Set.elements b)
