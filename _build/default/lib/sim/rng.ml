type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t < p

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let subset t l = List.filter (fun _ -> bool t) l
