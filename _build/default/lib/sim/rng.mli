(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the simulator flows from a single seeded generator so
    every execution is reproducible from its seed. *)

type t

val create : int -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator, advancing
    [t]. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** [pick t l] is a uniformly chosen element of [l]. Requires [l <> []]. *)
val pick : t -> 'a list -> 'a

(** [shuffle t l] is a uniform permutation of [l]. *)
val shuffle : t -> 'a list -> 'a list

(** [subset t l] keeps each element of [l] independently with probability
    1/2. *)
val subset : t -> 'a list -> 'a list
