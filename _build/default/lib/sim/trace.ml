type entry = {
  time : float;
  node : Pid.t option;
  tag : string;
  detail : string;
}

type t = {
  limit : int;
  mutable rev_entries : entry list; (* newest first *)
  mutable len : int;
}

let create ?(limit = 100_000) () = { limit; rev_entries = []; len = 0 }

let record t ~time ?node ~tag detail =
  t.rev_entries <- { time; node; tag; detail } :: t.rev_entries;
  t.len <- t.len + 1;
  if t.len > 2 * t.limit then begin
    (* amortized truncation to the newest [limit] entries *)
    let rec keep n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: keep (n - 1) rest
    in
    t.rev_entries <- keep t.limit t.rev_entries;
    t.len <- t.limit
  end

let entries t = List.rev t.rev_entries
let with_tag t tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let count t tag =
  List.fold_left
    (fun acc e -> if String.equal e.tag tag then acc + 1 else acc)
    0 t.rev_entries

let clear t =
  t.rev_entries <- [];
  t.len <- 0

let pp_entry fmt e =
  let pp_node fmt = function
    | None -> Format.fprintf fmt "-"
    | Some p -> Pid.pp fmt p
  in
  Format.fprintf fmt "[%8.2f] p%a %s: %s" e.time pp_node e.node e.tag e.detail
