(** Structured execution traces.

    Protocols emit tagged events during a run; tests and experiments assert
    over the resulting sequence (e.g. that the delicate-replacement automaton
    of Figure 2 moves 0 -> 1 -> 2 -> 0). *)

type entry = {
  time : float;
  node : Pid.t option;
  tag : string;
  detail : string;
}

type t

(** [create ~limit ()] keeps at most [limit] most-recent entries
    (default 100_000). *)
val create : ?limit:int -> unit -> t

val record : t -> time:float -> ?node:Pid.t -> tag:string -> string -> unit

(** Entries in chronological order. *)
val entries : t -> entry list

(** [with_tag t tag] is the chronological sub-sequence carrying [tag]. *)
val with_tag : t -> string -> entry list

(** [count t tag] is [List.length (with_tag t tag)]. *)
val count : t -> string -> int

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
