lib/vs/shared_memory.ml: List Map Pid Sim String Vs_service
