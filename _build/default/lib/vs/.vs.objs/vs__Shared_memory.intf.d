lib/vs/shared_memory.mli: Pid Reconfig Sim Vs_service
