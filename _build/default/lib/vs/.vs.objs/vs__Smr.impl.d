lib/vs/smr.ml: Pid Sim Vs_service
