lib/vs/smr.mli: Pid Reconfig Sim Vs_service
