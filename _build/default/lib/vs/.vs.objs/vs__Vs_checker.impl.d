lib/vs/vs_checker.ml: Format List Pid Sim Vs_service
