lib/vs/vs_checker.mli: Pid Sim Vs_service
