lib/vs/vs_service.ml: Bool Config_value Counter Counter_service Counters Format List Pid Quorum Reconfig Recsa Sim Stack
