lib/vs/vs_service.mli: Counter Counters Format Pid Reconfig Sim
