open Sim

type reg = string
type value = int

type cmd =
  | Write of { reg : reg; value : value; writer : Pid.t }
  | Read of { reg : reg; reader : Pid.t; rid : int }
  | Cas of { reg : reg; expected : value option; value : value; writer : Pid.t; rid : int }

module Reg_map = Map.Make (String)

type rstate = {
  regs : value Reg_map.t;
  reads : ((Pid.t * int) * value option) list; (* bounded journal, newest first *)
  cas_results : ((Pid.t * int) * bool) list; (* bounded journal, newest first *)
}

let journal_bound = 64

let truncate n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let apply st = function
  | Write { reg; value; writer = _ } -> { st with regs = Reg_map.add reg value st.regs }
  | Read { reg; reader; rid } ->
    let result = Reg_map.find_opt reg st.regs in
    { st with reads = truncate journal_bound (((reader, rid), result) :: st.reads) }
  | Cas { reg; expected; value; writer; rid } ->
    let current = Reg_map.find_opt reg st.regs in
    let success = current = expected in
    let regs = if success then Reg_map.add reg value st.regs else st.regs in
    {
      st with
      regs;
      cas_results = truncate journal_bound (((writer, rid), success) :: st.cas_results);
    }

let machine =
  {
    Vs_service.initial = { regs = Reg_map.empty; reads = []; cas_results = [] };
    apply;
  }

type state = (rstate, cmd) Vs_service.state
type msg = (rstate, cmd) Vs_service.msg

let hooks ?eval_config () = Vs_service.hooks ~machine ?eval_config ()
let write st ~writer reg value = Vs_service.submit st (Write { reg; value; writer })
let read st ~reader ~rid reg = Vs_service.submit st (Read { reg; reader; rid })

let read_result st ~reader ~rid =
  let replica = Vs_service.replica st in
  List.assoc_opt (reader, rid) replica.reads

let compare_and_set st ~writer ~rid reg ~expected value =
  Vs_service.submit st (Cas { reg; expected; value; writer; rid })

let cas_result st ~writer ~rid =
  let replica = Vs_service.replica st in
  List.assoc_opt (writer, rid) replica.cas_results

let peek st reg = Reg_map.find_opt reg (Vs_service.replica st).regs
