(** Self-stabilizing reconfigurable emulation of shared memory
    (Section 4.3, last part; following Birman et al. [5]).

    Multi-writer multi-reader registers emulated over the virtually
    synchronous SMR: writes and reads are commands in the total order, so
    the emulation is atomic between delicate reconfigurations; the
    coordinator suspends operations during a reconfiguration and the
    register contents survive it (Theorem 4.13 applied to the register
    state machine).

    Reads travel through the total order too: a [Read] command records its
    result inside the replica state, where the issuing processor picks it
    up — this keeps the machine deterministic and the emulation
    linearizable. *)

open Sim

type reg = string
type value = int

type cmd =
  | Write of { reg : reg; value : value; writer : Pid.t }
  | Read of { reg : reg; reader : Pid.t; rid : int }
  | Cas of { reg : reg; expected : value option; value : value; writer : Pid.t; rid : int }

type rstate
(** The replica state: register contents plus a bounded journal of recent
    read results. *)

val machine : (rstate, cmd) Vs_service.machine

type state = (rstate, cmd) Vs_service.state
type msg = (rstate, cmd) Vs_service.msg

val hooks :
  ?eval_config:(self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool) ->
  unit ->
  (state, msg) Reconfig.Stack.hooks

(** [write st ~writer reg v] submits a write. *)
val write : state -> writer:Pid.t -> reg -> value -> unit

(** [read st ~reader ~rid reg] submits a read; the result becomes available
    via [read_result] once the command is delivered. [rid] must be fresh
    per reader. *)
val read : state -> reader:Pid.t -> rid:int -> reg -> unit

(** [read_result st ~reader ~rid] — [Some (Some v)] once the read
    delivered and the register held [v]; [Some None] once delivered with
    the register unwritten; [None] while still in flight. *)
val read_result : state -> reader:Pid.t -> rid:int -> value option option

(** [compare_and_set st ~writer ~rid reg ~expected v] submits an atomic
    compare-and-set: the register is set to [v] iff its value equals
    [expected] ([None] = unwritten) at the command's point in the total
    order. [rid] must be fresh per writer. *)
val compare_and_set :
  state -> writer:Pid.t -> rid:int -> reg -> expected:value option -> value -> unit

(** [cas_result st ~writer ~rid] — [Some success] once delivered. *)
val cas_result : state -> writer:Pid.t -> rid:int -> bool option

(** [peek st reg] — the node's local replica snapshot (not linearizable;
    for tests and monitoring). *)
val peek : state -> reg -> value option
