open Sim

type 'op cmd = { client : Pid.t; cid : int; op : 'op }

type 'st rstate = {
  inner : 'st;
  applied : int Pid.Map.t; (* per-client high-water mark *)
}

let high_water rs client =
  match Pid.Map.find_opt client rs.applied with Some c -> c | None -> 0

let wrap (machine : ('st, 'op) Vs_service.machine) =
  {
    Vs_service.initial = { inner = machine.Vs_service.initial; applied = Pid.Map.empty };
    apply =
      (fun rs c ->
        if c.cid <= high_water rs c.client then rs (* duplicate or retry: skip *)
        else
          {
            inner = machine.Vs_service.apply rs.inner c.op;
            applied = Pid.Map.add c.client c.cid rs.applied;
          });
  }

let inner rs = rs.inner
let applied_up_to rs ~client = high_water rs client
let submit st ~client ~cid op = Vs_service.submit st { client; cid; op }

let hooks ~machine ?eval_config () =
  Vs_service.hooks ~machine:(wrap machine) ?eval_config ()
