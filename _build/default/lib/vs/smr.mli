(** State-machine replication facade with at-most-once client semantics.

    The raw virtually synchronous service applies every delivered command;
    a client that retries a command after a coordinator crash (it cannot
    know whether the command was delivered) risks double application. This
    facade wraps any state machine with per-client command identifiers:
    a command ⟨client, cid, op⟩ is applied at most once — retries and
    duplicate deliveries are filtered deterministically inside the replica
    state, so every replica filters identically.

    This is the interface a downstream user builds services on: see
    [examples/replicated_kv.ml] for the raw layer and the tests for the
    retry discipline. *)

open Sim

type 'op cmd = {
  client : Pid.t;
  cid : int;  (** strictly increasing per client *)
  op : 'op;
}

type 'st rstate
(** Wrapped replica state: the inner machine state plus the per-client
    high-water marks. *)

(** [wrap machine] lifts a machine on ['st]/['op] to the wrapped
    command/state types. *)
val wrap : ('st, 'op) Vs_service.machine -> ('st rstate, 'op cmd) Vs_service.machine

(** The inner machine state of a wrapped replica. *)
val inner : 'st rstate -> 'st

(** [applied_up_to rs ~client] — the highest [cid] applied for [client]
    (0 if none): how a client learns which of its commands committed. *)
val applied_up_to : 'st rstate -> client:Pid.t -> int

(** [submit st ~client ~cid op] — submit (or re-submit) command [cid]. *)
val submit : ('st rstate, 'op cmd) Vs_service.state -> client:Pid.t -> cid:int -> 'op -> unit

(** Convenience: hooks running a wrapped machine. *)
val hooks :
  machine:('st, 'op) Vs_service.machine ->
  ?eval_config:(self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool) ->
  unit ->
  (('st rstate, 'op cmd) Vs_service.state, ('st rstate, 'op cmd) Vs_service.msg)
  Reconfig.Stack.hooks
