open Sim

type 'cmd node_journal = {
  pid : Pid.t;
  batches : (Vs_service.view * (Pid.t * 'cmd) list) list;
}

let journal_of_state pid st = { pid; batches = Vs_service.delivered_batches st }

(* group consecutive same-view batches; a view can only appear once per
   journal because view identifiers are monotone counters *)
let per_view j =
  List.fold_left
    (fun acc (view, batch) ->
      match acc with
      | (v, batches) :: rest when Vs_service.view_equal v view ->
        (v, batches @ [ batch ]) :: rest
      | _ -> (view, [ batch ]) :: acc)
    [] j.batches
  |> List.rev

let rec equal_up_to_one_trailing a b =
  match (a, b) with
  | [], [] -> true
  | [ _ ], [] | [], [ _ ] -> true
  | x :: a', y :: b' -> x = y && equal_up_to_one_trailing a' b'
  | _ -> false

let check journals =
  let tables = List.map (fun j -> (j.pid, per_view j)) journals in
  (* 1. per-view agreement up to one trailing batch *)
  let view_conflict =
    List.find_map
      (fun (p1, t1) ->
        List.find_map
          (fun (p2, t2) ->
            if p1 >= p2 then None
            else
              List.find_map
                (fun (v1, b1) ->
                  List.find_map
                    (fun (v2, b2) ->
                      if Vs_service.view_equal v1 v2 && not (equal_up_to_one_trailing b1 b2)
                      then
                        Some
                          (Format.asprintf
                             "nodes %a and %a disagree on deliveries in %a" Pid.pp p1
                             Pid.pp p2 Vs_service.pp_view v1)
                      else None)
                    t2)
                t1)
          tables)
      tables
  in
  match view_conflict with
  | Some msg -> Error msg
  | None ->
    (* 2. no two nodes order a pair of (sender, command) deliveries
       differently *)
    let flat =
      List.map
        (fun j -> (j.pid, List.concat_map (fun (_, batch) -> batch) j.batches))
        journals
    in
    let index_of x l =
      let rec go i = function
        | [] -> None
        | y :: rest -> if y = x then Some i else go (i + 1) rest
      in
      go 0 l
    in
    let order_conflict =
      List.find_map
        (fun (p1, l1) ->
          List.find_map
            (fun (p2, l2) ->
              if p1 >= p2 then None
              else
                List.find_map
                  (fun x ->
                    List.find_map
                      (fun y ->
                        if x = y then None
                        else
                          match (index_of x l1, index_of y l1, index_of x l2, index_of y l2)
                          with
                          | Some i1, Some j1, Some i2, Some j2
                            when (i1 < j1) <> (i2 < j2) ->
                            Some
                              (Format.asprintf "nodes %a and %a order deliveries differently"
                                 Pid.pp p1 Pid.pp p2)
                          | _ -> None)
                      l1)
                  l1)
            flat)
        flat
    in
    (match order_conflict with Some msg -> Error msg | None -> Ok ())
