(** Virtual-synchrony audit.

    The defining property (Section 4.3): any two processors that are
    together in a view deliver the same messages in that view. Our
    coordinator advances a round only after every view member echoed the
    previous one, so within a view the per-batch journals of any two
    members must agree exactly — except that when a view ends (coordinator
    crash or reconfiguration), the final batch may have reached only a
    subset of the members before the change. The checker therefore demands
    per-view batch sequences that are equal up to one trailing batch.

    It also checks total-order consistency: the flattened delivery
    sequences of any two nodes never order two commands differently. *)

open Sim

type 'cmd node_journal = {
  pid : Pid.t;
  batches : (Vs_service.view * (Pid.t * 'cmd) list) list;
}

(** [journal_of_state pid st] — extract a node's journal. *)
val journal_of_state : Pid.t -> ('st, 'cmd) Vs_service.state -> 'cmd node_journal

(** [check journals] — [Ok ()] when the virtual-synchrony property holds
    across all journals; [Error description] otherwise. *)
val check : 'cmd node_journal list -> (unit, string) result
