test/test_counter.ml: Alcotest Counter Counter_algo Counter_service Counters Label Labels List Pid QCheck QCheck_alcotest Reconfig Sim
