test/test_datalink.ml: Alcotest Channel Datalink Engine List Pid QCheck QCheck_alcotest Rng Sim
