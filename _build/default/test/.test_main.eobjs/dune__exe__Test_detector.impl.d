test/test_detector.ml: Alcotest Detector List Pid QCheck QCheck_alcotest Sim
