test/test_label.ml: Alcotest Label Label_algo Label_service Labels List Option Pid QCheck QCheck_alcotest Reconfig Rng Sim
