test/test_main.ml: Alcotest Test_counter Test_datalink Test_detector Test_label Test_quorum Test_recsa Test_register Test_sim Test_units Test_vs
