test/test_quorum.ml: Alcotest Format List Pid QCheck QCheck_alcotest Quorum Sim
