test/test_recsa.ml: Alcotest Channel Config_value Datalink Engine Invariants List Notification Option Pid QCheck QCheck_alcotest Quorum Reconfig Recsa Rng Sim Stack Trace
