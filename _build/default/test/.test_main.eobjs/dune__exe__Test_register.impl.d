test/test_register.ml: Alcotest List Pid Reconfig Register Register_service Sim
