test/test_sim.ml: Alcotest Channel Engine Heap Int List Metrics Pid QCheck QCheck_alcotest Rng Sim Trace
