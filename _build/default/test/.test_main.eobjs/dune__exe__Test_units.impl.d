test/test_units.ml: Alcotest Config_value Format Harness Join List Notification Pid Recma Reconfig Recsa Sim String
