test/test_vs.ml: Alcotest Baseline Engine List Pid Reconfig Shared_memory Sim Smr Trace Vs Vs_checker Vs_service
