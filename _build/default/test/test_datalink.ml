(* Tests for the self-stabilizing data-link substrate: token exchange,
   snap-stabilizing cleaning, reliable FIFO delivery. *)

open Sim
module TL = Datalink.Token_link
module SL = Datalink.Snap_link
module FL = Datalink.Fifo_link

let qtest = QCheck_alcotest.to_alcotest

(* Drive one sender/receiver pair over two lossy bounded channels until the
   predicate holds or the step budget runs out. *)
let drive_token ~seed ~capacity ~loss ~steps sender receiver pred =
  let rng = Rng.create seed in
  let to_recv = Channel.create ~capacity and to_send = Channel.create ~capacity in
  let rec go n =
    if pred () then true
    else if n = 0 then false
    else begin
      (* sender retransmits *)
      Channel.send to_recv rng (TL.Sender.on_tick sender);
      (* receiver drains, acks *)
      (match Channel.take to_recv rng ~reorder:true with
      | Some m when not (Rng.chance rng loss) -> (
        let _, ack = TL.Receiver.on_msg receiver m in
        match ack with Some a -> Channel.send to_send rng a | None -> ())
      | Some _ | None -> ());
      (* sender drains acks *)
      (match Channel.take to_send rng ~reorder:true with
      | Some m when not (Rng.chance rng loss) -> ignore (TL.Sender.on_msg sender m)
      | Some _ | None -> ());
      go (n - 1)
    end
  in
  go steps

let test_token_exchange_progress () =
  let s = TL.Sender.create ~capacity:4 "hello" in
  let r = TL.Receiver.create ~capacity:4 () in
  let ok =
    drive_token ~seed:5 ~capacity:4 ~loss:0.1 ~steps:20_000 s r (fun () ->
        TL.Sender.tokens s >= 10)
  in
  Alcotest.(check bool) "10 tokens exchanged" true ok;
  Alcotest.(check bool) "receiver delivered" true (TL.Receiver.delivered r >= 10)

let test_token_payload_update () =
  let s = TL.Sender.create ~capacity:2 0 in
  let r = TL.Receiver.create ~capacity:2 () in
  TL.Sender.offer s 42;
  let ok =
    drive_token ~seed:6 ~capacity:2 ~loss:0.0 ~steps:5_000 s r (fun () ->
        TL.Sender.tokens s >= 2)
  in
  Alcotest.(check bool) "exchanges happened" true ok

let test_token_survives_corruption () =
  let s = TL.Sender.create ~capacity:4 "x" in
  let r = TL.Receiver.create ~capacity:4 () in
  TL.Sender.corrupt s ~seq:(-37) ~acks:9999;
  TL.Receiver.corrupt r ~window:[ 0; 1; 2; 3; 99 ];
  let ok =
    drive_token ~seed:7 ~capacity:4 ~loss:0.05 ~steps:20_000 s r (fun () ->
        TL.Sender.tokens s >= 5)
  in
  Alcotest.(check bool) "recovers from arbitrary state" true ok

let prop_token_alternating_bit =
  QCheck.Test.make ~name:"token seq advances exactly once per token"
    QCheck.(int_range 1 6)
    (fun capacity ->
      let s = TL.Sender.create ~capacity 0 in
      let seq0 = TL.Sender.seq s in
      (* feed exactly 2*capacity+1 matching acks: one token *)
      let rec feed n last =
        if n = 0 then last
        else feed (n - 1) (TL.Sender.on_msg s (TL.Ack { seq = TL.Sender.seq s }))
      in
      let last = feed ((2 * capacity) + 1) `Waiting in
      last = `Token_returned
      && TL.Sender.seq s = (seq0 + 1) mod TL.Sender.modulus s
      && TL.Sender.tokens s = 1)

let test_snap_link_completes () =
  let rng = Rng.create 8 in
  let cap = 3 in
  let a = SL.create ~capacity:cap ~self:1 ~peer:2 ~nonce:77 in
  let b = SL.create ~capacity:cap ~self:2 ~peer:1 ~nonce:88 in
  let ab = Channel.create ~capacity:cap and ba = Channel.create ~capacity:cap in
  (* stale garbage predating the handshake *)
  Channel.corrupt ab [ SL.Clean { src = 9; dst = 9; nonce = 0 } ];
  let rec go n =
    if n = 0 then ()
    else begin
      (match SL.on_tick a with Some m -> Channel.send ab rng m | None -> ());
      (match SL.on_tick b with Some m -> Channel.send ba rng m | None -> ());
      (match Channel.take ab rng ~reorder:true with
      | Some m -> (
        match SL.on_msg b m with Some reply, _ -> Channel.send ba rng reply | None, _ -> ())
      | None -> ());
      (match Channel.take ba rng ~reorder:true with
      | Some m -> (
        match SL.on_msg a m with Some reply, _ -> Channel.send ab rng reply | None, _ -> ())
      | None -> ());
      if SL.phase a = SL.Clean_done && SL.phase b = SL.Clean_done then ()
      else go (n - 1)
    end
  in
  go 10_000;
  Alcotest.(check bool) "a clean" true (SL.phase a = SL.Clean_done);
  Alcotest.(check bool) "b clean" true (SL.phase b = SL.Clean_done);
  Alcotest.(check bool) "acks exceeded round-trip capacity" true (SL.acks a > 2 * cap)

let test_snap_link_ignores_foreign_labels () =
  let a = SL.create ~capacity:2 ~self:1 ~peer:2 ~nonce:5 in
  (* a Clean packet whose labels do not match the link must be ignored *)
  let reply, _ = SL.on_msg a (SL.Clean { src = 3; dst = 1; nonce = 5 }) in
  Alcotest.(check bool) "no ack for foreign src" true (reply = None);
  let reply, _ = SL.on_msg a (SL.Clean { src = 2; dst = 9; nonce = 5 }) in
  Alcotest.(check bool) "no ack for foreign dst" true (reply = None);
  (* matching labels are acknowledged *)
  let reply, _ = SL.on_msg a (SL.Clean { src = 2; dst = 1; nonce = 5 }) in
  Alcotest.(check bool) "ack for matching" true (reply <> None)

let test_snap_link_wrong_nonce_acks_ignored () =
  let a = SL.create ~capacity:2 ~self:1 ~peer:2 ~nonce:5 in
  for _ = 1 to 100 do
    ignore (SL.on_msg a (SL.Clean_ack { src = 2; dst = 1; nonce = 999 }))
  done;
  Alcotest.(check bool) "still cleaning" true (SL.phase a = SL.Cleaning)

(* Drive a FIFO link over lossy channels. *)
let drive_fifo ~seed ~capacity ~loss ~steps link pred =
  let rng = Rng.create seed in
  let fwd = Channel.create ~capacity and back = Channel.create ~capacity in
  let rec go n =
    if pred () then true
    else if n = 0 then false
    else begin
      Channel.send fwd rng (FL.sender_tick link);
      (match Channel.take fwd rng ~reorder:true with
      | Some m when not (Rng.chance rng loss) -> (
        let _, ack = FL.receiver_on_msg link m in
        match ack with Some a -> Channel.send back rng a | None -> ())
      | Some _ | None -> ());
      (match Channel.take back rng ~reorder:true with
      | Some m when not (Rng.chance rng loss) -> FL.sender_on_msg link m
      | Some _ | None -> ());
      go (n - 1)
    end
  in
  go steps

let test_fifo_in_order_exactly_once () =
  let link = FL.create ~capacity:3 in
  let msgs = List.init 10 (fun i -> i) in
  List.iter (FL.enqueue link) msgs;
  let ok =
    drive_fifo ~seed:9 ~capacity:3 ~loss:0.1 ~steps:100_000 link (fun () ->
        List.length (FL.received link) >= 10)
  in
  Alcotest.(check bool) "all delivered" true ok;
  Alcotest.(check (list int)) "in order, exactly once" msgs (FL.received link)

let prop_fifo_delivers_prefix =
  QCheck.Test.make ~name:"fifo delivery is always a prefix of the sends" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 1 15))
    (fun (seed, k) ->
      let link = FL.create ~capacity:2 in
      let msgs = List.init k (fun i -> i) in
      List.iter (FL.enqueue link) msgs;
      ignore (drive_fifo ~seed ~capacity:2 ~loss:0.15 ~steps:3_000 link (fun () -> false));
      let got = FL.received link in
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      is_prefix got msgs)

(* --- link over the simulation engine --- *)

module LR = Datalink.Link_runner

let test_runner_delivers_over_engine () =
  let lr = LR.create ~seed:13 ~loss:0.1 ~sender:1 ~receiver:2 () in
  let msgs = List.init 8 (fun i -> i * 11) in
  List.iter (LR.send lr) msgs;
  Alcotest.(check bool) "all delivered over the engine" true
    (LR.run_until lr ~max_steps:200_000 (fun t -> List.length (LR.received t) >= 8));
  Alcotest.(check (list int)) "in order" msgs (LR.received lr);
  Alcotest.(check bool) "tokens kept flowing" true (LR.tokens lr >= 8)

let test_runner_survives_partition () =
  let lr = LR.create ~seed:14 ~loss:0.05 ~sender:1 ~receiver:2 () in
  LR.send lr 1;
  Alcotest.(check bool) "first delivered" true
    (LR.run_until lr ~max_steps:100_000 (fun t -> LR.received t = [ 1 ]));
  (* cut the link both ways; nothing can move *)
  Engine.partition (LR.engine lr) (Pid.set_of_list [ 1 ]);
  LR.send lr 2;
  LR.run_rounds lr 30;
  Alcotest.(check (list int)) "nothing crossed the cut" [ 1 ] (LR.received lr);
  (* heal: the retransmission machinery pushes it through *)
  Engine.heal (LR.engine lr);
  Alcotest.(check bool) "delivered after heal" true
    (LR.run_until lr ~max_steps:200_000 (fun t -> LR.received t = [ 1; 2 ]))

let test_runner_heartbeat_counts () =
  let lr = LR.create ~seed:15 ~sender:3 ~receiver:4 () in
  LR.run_rounds lr 60;
  (* even with no application traffic the token keeps being exchanged,
     providing the failure-detector heartbeat *)
  Alcotest.(check bool) "tokens without messages" true (LR.tokens lr >= 3);
  Alcotest.(check (list int)) "no spurious deliveries" [] (LR.received lr)

let suites =
  [
    ( "datalink.token",
      [
        Alcotest.test_case "exchange progresses over loss" `Quick test_token_exchange_progress;
        Alcotest.test_case "payload update" `Quick test_token_payload_update;
        Alcotest.test_case "survives corruption" `Quick test_token_survives_corruption;
        qtest prop_token_alternating_bit;
      ] );
    ( "datalink.snap",
      [
        Alcotest.test_case "handshake completes" `Quick test_snap_link_completes;
        Alcotest.test_case "foreign labels ignored" `Quick test_snap_link_ignores_foreign_labels;
        Alcotest.test_case "wrong nonce ignored" `Quick test_snap_link_wrong_nonce_acks_ignored;
      ] );
    ( "datalink.fifo",
      [
        Alcotest.test_case "in order exactly once" `Quick test_fifo_in_order_exactly_once;
        qtest prop_fifo_delivers_prefix;
      ] );
    ( "datalink.runner",
      [
        Alcotest.test_case "delivers over engine" `Quick test_runner_delivers_over_engine;
        Alcotest.test_case "survives partition" `Quick test_runner_survives_partition;
        Alcotest.test_case "heartbeats without traffic" `Quick test_runner_heartbeat_counts;
      ] );
  ]
