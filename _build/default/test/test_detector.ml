(* Tests for the (N,Θ)-failure detector. *)

open Sim
module FD = Detector.Theta_fd

let set = Pid.set_of_list

(* Simulate r rounds of heartbeats arriving at processor 0 from [live]
   processors (one heartbeat per live processor per round, in order). *)
let feed fd live rounds =
  for _ = 1 to rounds do
    List.iter (fun p -> FD.heartbeat fd p) live
  done

let test_trusts_live () =
  let fd = FD.create ~n_bound:10 ~self:0 () in
  feed fd [ 1; 2; 3 ] 5;
  Alcotest.(check bool) "all live trusted" true
    (Pid.Set.subset (set [ 0; 1; 2; 3 ]) (FD.trusted fd))

let test_suspects_silent () =
  let fd = FD.create ~n_bound:10 ~theta:4 ~self:0 () in
  (* p3 heartbeats for a while, then goes silent *)
  feed fd [ 1; 2; 3 ] 5;
  feed fd [ 1; 2 ] 200;
  let trusted = FD.trusted fd in
  Alcotest.(check bool) "1 trusted" true (Pid.Set.mem 1 trusted);
  Alcotest.(check bool) "2 trusted" true (Pid.Set.mem 2 trusted);
  Alcotest.(check bool) "3 suspected" false (Pid.Set.mem 3 trusted)

let test_estimate_tracks_live_count () =
  let fd = FD.create ~n_bound:32 ~self:0 () in
  feed fd [ 1; 2; 3; 4; 5 ] 10;
  Alcotest.(check int) "estimate" 6 (FD.estimate fd)

let test_n_bound_cap () =
  let fd = FD.create ~n_bound:3 ~self:0 () in
  feed fd [ 1; 2; 3; 4; 5; 6; 7 ] 10;
  Alcotest.(check bool) "estimate capped at N" true (FD.estimate fd <= 3)

let test_self_always_trusted () =
  let fd = FD.create ~n_bound:4 ~self:9 () in
  Alcotest.(check bool) "self trusted initially" true (Pid.Set.mem 9 (FD.trusted fd));
  feed fd [ 1; 2 ] 50;
  Alcotest.(check bool) "self still trusted" true (Pid.Set.mem 9 (FD.trusted fd))

let test_recovers_from_corruption () =
  let fd = FD.create ~n_bound:10 ~self:0 () in
  (* arbitrary garbage counts: live processors appear crashed and vice
     versa *)
  FD.corrupt fd [ (1, 100_000); (2, 50_000); (42, 0) ];
  feed fd [ 1; 2; 3 ] 300;
  let trusted = FD.trusted fd in
  Alcotest.(check bool) "live re-trusted after corruption" true
    (Pid.Set.subset (set [ 0; 1; 2; 3 ]) trusted);
  Alcotest.(check bool) "ghost suspected eventually" false (Pid.Set.mem 42 trusted)

let test_rejoining_heartbeat_restores_trust () =
  let fd = FD.create ~n_bound:10 ~self:0 () in
  feed fd [ 1; 2; 3 ] 5;
  feed fd [ 1; 2 ] 200;
  Alcotest.(check bool) "suspected while silent" false (Pid.Set.mem 3 (FD.trusted fd));
  feed fd [ 1; 2; 3 ] 10;
  Alcotest.(check bool) "trusted again after heartbeats" true (Pid.Set.mem 3 (FD.trusted fd))

let test_known_and_forget () =
  let fd = FD.create ~n_bound:10 ~self:0 () in
  feed fd [ 4; 5 ] 1;
  Alcotest.(check bool) "known contains heard" true
    (Pid.Set.subset (set [ 0; 4; 5 ]) (FD.known fd));
  FD.forget fd 4;
  Alcotest.(check bool) "forgotten" false (Pid.Set.mem 4 (FD.known fd))

let prop_trusted_subset_of_known =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"trusted is always a subset of known + self"
       QCheck.(small_list (pair (int_range 1 20) (int_range 0 1000)))
       (fun events ->
         let fd = FD.create ~n_bound:8 ~self:0 () in
         List.iter
           (fun (p, reps) ->
             for _ = 1 to reps mod 7 do
               FD.heartbeat fd p
             done)
           events;
         Pid.Set.subset (FD.trusted fd) (Pid.Set.add 0 (FD.known fd))))

let suites =
  [
    ( "detector",
      [
        Alcotest.test_case "trusts live" `Quick test_trusts_live;
        Alcotest.test_case "suspects silent" `Quick test_suspects_silent;
        Alcotest.test_case "estimate" `Quick test_estimate_tracks_live_count;
        Alcotest.test_case "n_bound cap" `Quick test_n_bound_cap;
        Alcotest.test_case "self always trusted" `Quick test_self_always_trusted;
        Alcotest.test_case "recovers from corruption" `Quick test_recovers_from_corruption;
        Alcotest.test_case "rejoin restores trust" `Quick test_rejoining_heartbeat_restores_trust;
        Alcotest.test_case "known and forget" `Quick test_known_and_forget;
        prop_trusted_subset_of_known;
      ] );
  ]
