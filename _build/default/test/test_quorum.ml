(* Tests for the quorum systems: majority and grid. *)

open Sim

let qtest = QCheck_alcotest.to_alcotest
let set = Pid.set_of_list

let test_majority_threshold () =
  Alcotest.(check int) "n=1" 1 (Quorum.majority_threshold 1);
  Alcotest.(check int) "n=2" 2 (Quorum.majority_threshold 2);
  Alcotest.(check int) "n=3" 2 (Quorum.majority_threshold 3);
  Alcotest.(check int) "n=4" 3 (Quorum.majority_threshold 4);
  Alcotest.(check int) "n=5" 3 (Quorum.majority_threshold 5)

let test_majority_is_quorum () =
  let config = set [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "3 of 5" true (Quorum.Majority.is_quorum ~config (set [ 1; 2; 3 ]));
  Alcotest.(check bool) "2 of 5" false (Quorum.Majority.is_quorum ~config (set [ 1; 2 ]));
  Alcotest.(check bool) "outsiders don't count" false
    (Quorum.Majority.is_quorum ~config (set [ 6; 7; 8; 9 ]));
  Alcotest.(check bool) "mixed" true
    (Quorum.Majority.is_quorum ~config (set [ 3; 4; 5; 9 ]))

let test_majority_empty_config () =
  Alcotest.(check bool) "empty config has no quorum... " false
    (Quorum.Majority.is_quorum ~config:Pid.Set.empty Pid.Set.empty |> not |> not
    |> fun b -> b && false);
  (* an empty set against an empty config: threshold is 1, present is 0 *)
  Alcotest.(check bool) "no quorum of empty config" false
    (Quorum.Majority.is_quorum ~config:Pid.Set.empty (set [ 1 ]))

let gen_config_and_subsets =
  QCheck.make
    ~print:(fun (c, a, b) ->
      Format.asprintf "config=%a a=%a b=%a" Pid.pp_set (set c) Pid.pp_set (set a)
        Pid.pp_set (set b))
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let config = List.init n (fun i -> i) in
      let* a = flatten_l (List.map (fun p -> map (fun keep -> (p, keep)) bool) config) in
      let* b = flatten_l (List.map (fun p -> map (fun keep -> (p, keep)) bool) config) in
      let pick l = List.filter_map (fun (p, keep) -> if keep then Some p else None) l in
      return (config, pick a, pick b))

let prop_quorum_intersection (module Q : Quorum.SYSTEM) name =
  QCheck.Test.make ~name:(name ^ ": two quorums intersect") gen_config_and_subsets
    (fun (c, a, b) ->
      let config = set c and qa = set a and qb = set b in
      if Q.is_quorum ~config qa && Q.is_quorum ~config qb then
        Quorum.intersects (Pid.Set.inter qa config) (Pid.Set.inter qb config)
      else true)

let test_grid_basic () =
  (* 9 members in a 3x3 grid: a full row + one per row is a quorum *)
  let config = set [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  (* rows: [1;2;3] [4;5;6] [7;8;9] *)
  Alcotest.(check bool) "row+cover" true
    (Quorum.Grid.is_quorum ~config (set [ 1; 2; 3; 4; 7 ]));
  Alcotest.(check bool) "missing a row touch" false
    (Quorum.Grid.is_quorum ~config (set [ 1; 2; 3; 4 ]));
  Alcotest.(check bool) "no full row" false
    (Quorum.Grid.is_quorum ~config (set [ 1; 5; 9 ]));
  Alcotest.(check bool) "everything" true (Quorum.Grid.is_quorum ~config config)

let test_grid_small_configs () =
  Alcotest.(check bool) "singleton" true
    (Quorum.Grid.is_quorum ~config:(set [ 1 ]) (set [ 1 ]));
  Alcotest.(check bool) "pair needs both.. majority=2" true
    (Quorum.Grid.is_quorum ~config:(set [ 1; 2 ]) (set [ 1; 2 ]));
  Alcotest.(check bool) "pair single insufficient" false
    (Quorum.Grid.is_quorum ~config:(set [ 1; 2 ]) (set [ 1 ]))

let test_wall_basic () =
  (* 10 members -> rows [1] [2;3] [4;5;6] [7;8;9;10] *)
  let config = set [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  Alcotest.(check bool) "top row + reps below" true
    (Quorum.Wall.is_quorum ~config (set [ 1; 2; 4; 7 ]));
  Alcotest.(check bool) "full middle row + reps below" true
    (Quorum.Wall.is_quorum ~config (set [ 4; 5; 6; 8 ]));
  Alcotest.(check bool) "bottom row alone" true
    (Quorum.Wall.is_quorum ~config (set [ 7; 8; 9; 10 ]));
  Alcotest.(check bool) "no full row" false
    (Quorum.Wall.is_quorum ~config (set [ 2; 4; 7 ]));
  Alcotest.(check bool) "full row but a row below untouched" false
    (Quorum.Wall.is_quorum ~config (set [ 2; 3; 7 ]))

let test_wall_small_configs () =
  Alcotest.(check bool) "singleton" true
    (Quorum.Wall.is_quorum ~config:(set [ 1 ]) (set [ 1 ]));
  Alcotest.(check bool) "pair single insufficient" false
    (Quorum.Wall.is_quorum ~config:(set [ 1; 2 ]) (set [ 2 ]))

let test_has_majority_alias () =
  let config = set [ 1; 2; 3 ] in
  Alcotest.(check bool) "alias works" true (Quorum.has_majority ~config (set [ 1; 2 ]))

let suites =
  [
    ( "quorum",
      [
        Alcotest.test_case "majority threshold" `Quick test_majority_threshold;
        Alcotest.test_case "majority membership" `Quick test_majority_is_quorum;
        Alcotest.test_case "empty config" `Quick test_majority_empty_config;
        Alcotest.test_case "grid basics" `Quick test_grid_basic;
        Alcotest.test_case "grid small configs" `Quick test_grid_small_configs;
        Alcotest.test_case "wall basics" `Quick test_wall_basic;
        Alcotest.test_case "wall small configs" `Quick test_wall_small_configs;
        Alcotest.test_case "has_majority alias" `Quick test_has_majority_alias;
        qtest (prop_quorum_intersection (module Quorum.Majority) "majority");
        qtest (prop_quorum_intersection (module Quorum.Grid) "grid");
        qtest (prop_quorum_intersection (module Quorum.Wall) "wall");
      ] );
  ]
