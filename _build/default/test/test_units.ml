(* Unit tests for modules otherwise covered only through integration:
   recMA internals, the joining mechanism's gating, result tables. *)

open Sim
open Reconfig

let set = Pid.set_of_list

(* --- recMA --- *)

(* Build a recSA instance that believes a steady configuration: own config
   set plus consistent peer reports. *)
let steady_recsa ~self ~members =
  let sa = Recsa.create ~self ~participant:true ~initial_config:members () in
  Pid.Set.iter
    (fun p ->
      if not (Pid.equal p self) then
        Recsa.receive sa ~from:p
          {
            Recsa.m_fd = members;
            m_part = members;
            m_config = Config_value.Set members;
            m_prp = Notification.default;
            m_all = false;
            m_echo =
              Some
                {
                  Recsa.e_part = members;
                  e_prp = Notification.default;
                  e_all = false;
                };
          })
    members;
  sa

let test_recma_core_intersection () =
  let members = set [ 1; 2; 3 ] in
  let sa = steady_recsa ~self:1 ~members in
  let ma = Recma.create ~self:1 in
  let core = Recma.core ma ~trusted:members ~recsa:sa in
  Alcotest.(check (list int)) "core = intersection of all FDs" [ 1; 2; 3 ]
    (Pid.Set.elements core)

let test_recma_no_trigger_in_steady_state () =
  let members = set [ 1; 2; 3 ] in
  let sa = steady_recsa ~self:1 ~members in
  let ma = Recma.create ~self:1 in
  for _ = 1 to 5 do
    let _msgs, events =
      Recma.tick ma ~trusted:members ~recsa:sa ~eval_conf:(fun _ -> false) ()
    in
    Alcotest.(check (list (pair string string))) "no trigger events" [] events
  done;
  Alcotest.(check int) "no estab attempts" 0 (Recma.attempt_count ma)

let test_recma_messages_to_participants () =
  let members = set [ 1; 2; 3 ] in
  let sa = steady_recsa ~self:1 ~members in
  let ma = Recma.create ~self:1 in
  let msgs, _ = Recma.tick ma ~trusted:members ~recsa:sa ~eval_conf:(fun _ -> false) () in
  Alcotest.(check (list int)) "broadcast to other participants" [ 2; 3 ]
    (List.sort compare (List.map fst msgs))

let test_recma_prediction_needs_majority () =
  let members = set [ 1; 2; 3; 4; 5 ] in
  let sa = steady_recsa ~self:1 ~members in
  let ma = Recma.create ~self:1 in
  (* own vote only: 1 of 5 — no trigger *)
  let _ = Recma.tick ma ~trusted:members ~recsa:sa ~eval_conf:(fun _ -> true) () in
  Alcotest.(check int) "no trigger on own vote" 0 (Recma.attempt_count ma);
  (* two more supporters: 3 of 5 — majority, trigger *)
  Recma.receive ma ~from:2 ~participant:true
    { Recma.m_no_maj = false; m_need_reconf = true };
  Recma.receive ma ~from:3 ~participant:true
    { Recma.m_no_maj = false; m_need_reconf = true };
  let _ = Recma.tick ma ~trusted:members ~recsa:sa ~eval_conf:(fun _ -> true) () in
  Alcotest.(check bool) "trigger attempted with majority" true
    (Recma.attempt_count ma >= 1)

let test_recma_non_participant_ignores_messages () =
  let ma = Recma.create ~self:1 in
  Recma.receive ma ~from:2 ~participant:false
    { Recma.m_no_maj = true; m_need_reconf = true };
  (* nothing observable should have been stored: a tick as a non-participant
     produces nothing *)
  let sa = Recsa.create ~self:1 ~participant:false () in
  let msgs, events =
    Recma.tick ma ~trusted:(set [ 1; 2 ]) ~recsa:sa ~eval_conf:(fun _ -> true) ()
  in
  Alcotest.(check bool) "no output as non-participant" true (msgs = [] && events = [])

(* --- joining mechanism --- *)

let test_join_member_gates_on_pass_query () =
  let members = set [ 1; 2; 3 ] in
  let sa = steady_recsa ~self:1 ~members in
  let j = Join.create ~self:1 in
  (* member replies positively when the application allows *)
  (match
     Join.on_request j ~self_app:() ~from:9 ~trusted:members ~recsa:sa
       ~pass_query:(fun _ -> true)
   with
  | Some (Join.Join_reply { pass = true; _ }) -> ()
  | _ -> Alcotest.fail "expected a positive pass");
  (* ... and negatively when it does not *)
  match
    Join.on_request j ~self_app:() ~from:9 ~trusted:members ~recsa:sa
      ~pass_query:(fun _ -> false)
  with
  | Some (Join.Join_reply { pass = false; _ }) -> ()
  | _ -> Alcotest.fail "expected a negative pass"

let test_join_non_member_does_not_reply () =
  let members = set [ 2; 3; 4 ] in
  (* self=1 is a participant but NOT a configuration member *)
  let sa = Recsa.create ~self:1 ~participant:true ~initial_config:members () in
  let j = Join.create ~self:1 in
  match
    Join.on_request j ~self_app:() ~from:9 ~trusted:(set [ 1; 2; 3; 4 ])
      ~recsa:sa ~pass_query:(fun _ -> true)
  with
  | None -> ()
  | Some _ -> Alcotest.fail "non-members must not answer join requests"

let test_join_majority_required () =
  let members = set [ 1; 2; 3 ] in
  let sa = Recsa.create ~self:9 ~participant:false () in
  (* teach the joiner the configuration through received messages *)
  Pid.Set.iter
    (fun p ->
      Recsa.receive sa ~from:p
        {
          Recsa.m_fd = Pid.Set.add 9 members;
          m_part = members;
          m_config = Config_value.Set members;
          m_prp = Notification.default;
          m_all = false;
          m_echo = None;
        })
    members;
  let j = Join.create ~self:9 in
  let trusted = Pid.Set.add 9 members in
  (* one pass: not a majority of three members *)
  let tick () =
    Join.tick j ~trusted ~recsa:sa ~reset_vars:(fun () -> ())
      ~init_vars:(fun _ -> ())
      ()
  in
  ignore (tick ());
  Join.on_reply j ~from:1 ~participant:false ~pass:true ~app:();
  ignore (tick ());
  Alcotest.(check bool) "one pass is not enough" false (Recsa.is_participant sa);
  Join.on_reply j ~from:2 ~participant:false ~pass:true ~app:();
  ignore (tick ());
  Alcotest.(check bool) "two passes of three admit" true (Recsa.is_participant sa);
  Alcotest.(check int) "join counted" 1 (Join.join_count j)

(* --- result tables --- *)

let test_table_csv () =
  let t =
    Harness.Table.make ~id:"T" ~title:"t" ~claim:"c" ~header:[ "a"; "b" ]
      [ [ "1"; "2" ]; [ "3"; "4" ] ]
  in
  Alcotest.(check string) "csv" "a,b\n1,2\n3,4" (Harness.Table.to_csv t)

let test_table_pp_alignment () =
  let t =
    Harness.Table.make ~id:"T" ~title:"widths" ~claim:"c"
      ~header:[ "col"; "x" ]
      [ [ "longvalue"; "1" ] ]
  in
  let s = Format.asprintf "%a" Harness.Table.pp t in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "renders values" true (contains "longvalue" s);
  Alcotest.(check bool) "renders claim" true (contains "claim: c" s)

let suites =
  [
    ( "recma.unit",
      [
        Alcotest.test_case "core intersection" `Quick test_recma_core_intersection;
        Alcotest.test_case "quiet in steady state" `Quick test_recma_no_trigger_in_steady_state;
        Alcotest.test_case "broadcast targets" `Quick test_recma_messages_to_participants;
        Alcotest.test_case "prediction needs majority" `Quick test_recma_prediction_needs_majority;
        Alcotest.test_case "non-participant inert" `Quick test_recma_non_participant_ignores_messages;
      ] );
    ( "join.unit",
      [
        Alcotest.test_case "pass_query gating" `Quick test_join_member_gates_on_pass_query;
        Alcotest.test_case "non-member silent" `Quick test_join_non_member_does_not_reply;
        Alcotest.test_case "majority required" `Quick test_join_majority_required;
      ] );
    ( "harness.table",
      [
        Alcotest.test_case "csv" `Quick test_table_csv;
        Alcotest.test_case "pp" `Quick test_table_pp_alignment;
      ] );
  ]
