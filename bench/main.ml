(* Benchmark harness.

   Two parts:

   1. bechamel micro-benchmarks of the core primitives (one Test.make per
      primitive), so the cost of each building block is tracked;
   2. the experiment tables E1-E11 (DESIGN.md Section 5 / EXPERIMENTS.md),
      which regenerate the measurable content of every theorem and figure
      of the paper on the simulation substrate.

   Usage:
     bench/main.exe            micro-benches + quick experiment tables
     bench/main.exe --full     micro-benches + full experiment tables
     bench/main.exe --quick    micro-benches + quick tables (explicit)
     bench/main.exe --tables   experiment tables only
     bench/main.exe --micro    micro-benches only
     bench/main.exe --jobs N   run experiment cells on N domains
                               (default: Domain.recommended_domain_count;
                               table output is byte-identical for any N)
     bench/main.exe --json     emit one machine-readable JSON blob
                               ({name -> ns/run} for the micro-benches,
                               wall-clock seconds per experiment table)
                               instead of human-readable output *)

open Bechamel
open Toolkit

let set = Sim.Pid.set_of_list

(* --- micro-bench subjects ------------------------------------------- *)

let bench_rng =
  let rng = Sim.Rng.create 1 in
  Test.make ~name:"rng.int" (Staged.stage (fun () -> Sim.Rng.int rng 1000))

let bench_heap =
  let rng = Sim.Rng.create 2 in
  Test.make ~name:"heap.push_pop_64"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create Int.compare in
         for _ = 1 to 64 do
           Sim.Heap.push h (Sim.Rng.int rng 10_000)
         done;
         while not (Sim.Heap.is_empty h) do
           ignore (Sim.Heap.pop h)
         done))

let bench_channel =
  let rng = Sim.Rng.create 3 in
  Test.make ~name:"channel.send_take"
    (Staged.stage (fun () ->
         let ch = Sim.Channel.create ~capacity:8 in
         for i = 1 to 16 do
           Sim.Channel.send ch rng i
         done;
         while Sim.Channel.take ch rng ~reorder:true <> None do
           ()
         done))

let bench_fd =
  Test.make ~name:"detector.heartbeat_trusted"
    (Staged.stage (fun () ->
         let fd = Detector.Theta_fd.create ~n_bound:16 ~self:0 () in
         for r = 1 to 8 do
           ignore r;
           for p = 1 to 8 do
             Detector.Theta_fd.heartbeat fd p
           done
         done;
         ignore (Detector.Theta_fd.trusted fd)))

let bench_notification_max =
  let ns =
    List.init 16 (fun i ->
        Reconfig.Notification.make
          (if i mod 2 = 0 then Reconfig.Notification.P1 else Reconfig.Notification.P2)
          (set [ i; i + 1; i + 2 ]))
  in
  Test.make ~name:"notification.max_of_16"
    (Staged.stage (fun () -> Reconfig.Notification.max_of ns))

let bench_label_order =
  let l1 = Labels.Label.make ~creator:1 ~sting:3 ~antistings:[ 1; 2; 5; 7 ] in
  let l2 = Labels.Label.make ~creator:1 ~sting:8 ~antistings:[ 3; 4 ] in
  Test.make ~name:"label.precedes" (Staged.stage (fun () -> Labels.Label.precedes l1 l2))

let bench_label_next =
  let known =
    List.init 12 (fun i ->
        Labels.Label.make ~creator:1 ~sting:i ~antistings:[ i + 1; i + 2 ])
  in
  Test.make ~name:"label.next_label_12"
    (Staged.stage (fun () -> Labels.Label.next_label ~creator:1 ~known))

let bench_counter_order =
  let l = Labels.Label.make ~creator:1 ~sting:0 ~antistings:[ 9 ] in
  let c1 = Counters.Counter.make ~lbl:l ~seqn:41 ~wid:3 in
  let c2 = Counters.Counter.make ~lbl:l ~seqn:42 ~wid:2 in
  Test.make ~name:"counter.precedes"
    (Staged.stage (fun () -> Counters.Counter.precedes c1 c2))

let bench_recsa_tick =
  (* one do-forever iteration of a warm 8-node recSA instance *)
  let trusted = set (List.init 8 (fun i -> i + 1)) in
  let sa = Reconfig.Recsa.create ~self:1 ~participant:true ~initial_config:trusted () in
  List.iter
    (fun p ->
      if p <> 1 then
        Reconfig.Recsa.receive sa ~from:p
          {
            Reconfig.Recsa.m_fd = trusted;
            m_part = trusted;
            m_config = Reconfig.Config_value.Set trusted;
            m_prp = Reconfig.Notification.default;
            m_all = false;
            m_echo = None;
          })
    (List.init 8 (fun i -> i + 1));
  Test.make ~name:"recsa.tick_warm_8"
    (Staged.stage (fun () -> Reconfig.Recsa.tick sa ~trusted))

let gossip_round_subject n seed =
  let pids = List.init n (fun i -> i + 1) in
  let behavior =
    {
      Sim.Engine.init = (fun p -> p);
      on_timer =
        (fun ctx s ->
          List.iter
            (fun q -> if q <> Sim.Engine.self ctx then Sim.Engine.send ctx q s)
            pids;
          s);
      on_message = (fun _ _ v s -> max v s);
    }
  in
  let eng = Sim.Engine.create ~seed ~behavior ~pids () in
  fun () -> Sim.Engine.run_rounds eng 1

let bench_engine_round =
  Test.make ~name:"engine.round_5node_gossip" (Staged.stage (gossip_round_subject 5 5))

(* a larger all-to-all workload (16 nodes = 240 directed channels) makes
   the engine's per-send/per-delivery and rounds-accounting costs visible *)
let bench_engine_round_16 =
  Test.make ~name:"engine.round_16node_gossip" (Staged.stage (gossip_round_subject 16 16))

(* the scale tier's data-plane floor: 64 nodes = 4032 directed channels,
   all-to-all gossip; this is the pure engine+channel cost with no protocol
   on top (compare E17's full-stack steady rounds/s) *)
let bench_engine_round_64 =
  Test.make ~name:"engine.round_64node_gossip" (Staged.stage (gossip_round_subject 64 64))

let micro_tests =
  Test.make_grouped ~name:"primitives" ~fmt:"%s %s"
    [
      bench_rng;
      bench_heap;
      bench_channel;
      bench_fd;
      bench_notification_max;
      bench_label_order;
      bench_label_next;
      bench_counter_order;
      bench_recsa_tick;
      bench_engine_round;
      bench_engine_round_16;
      bench_engine_round_64;
    ]

let run_micro () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances micro_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      (name, est) :: acc)
    results []
  |> List.sort compare

let print_micro rows =
  Format.printf "@.== micro-benchmarks (monotonic clock, ns/run) ==@.";
  List.iter (fun (name, est) -> Format.printf "%-40s %12.1f ns/run@." name est) rows

(* --- experiment tables ---------------------------------------------- *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Run every registered table, returning (id, table, wall_seconds). *)
let run_registry registry ~jobs params =
  List.map
    (fun (id, f) ->
      let table, dt = timed (fun () -> f ?jobs:(Some jobs) params) in
      (id, table, dt))
    registry

let print_tables timed_tables =
  List.iter
    (fun (_, t, _) -> Format.printf "%a@." Harness.Table.pp t)
    timed_tables

(* --- telemetry summaries --------------------------------------------- *)

(* A short transient-fault recovery under the simulator runtime: the
   resulting protocol-level latency histograms (replacement phases, reset
   recovery, join handshakes) ride along in the --json blob so they can be
   tracked next to the ns/run numbers. Deterministic for the fixed seed. *)
let run_telemetry () =
  let n = 5 and seed = 7 in
  let members = List.init n (fun i -> i + 1) in
  let sys =
    Reconfig.Stack.of_scenario ~hooks:Reconfig.Stack.unit_hooks
      (Reconfig.Scenario.make ~seed ~loss:0.02 ~n_bound:(2 * n) ~members ())
  in
  Reconfig.Stack.run_rounds sys 30;
  Reconfig.Stack.corrupt_everything sys ~rng:(Sim.Rng.create (seed + 1));
  ignore (Reconfig.Stack.run_until_quiescent sys ~max_rounds:500);
  Sim.Engine.telemetry (Reconfig.Stack.engine sys)

(* --- JSON output ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_number f =
  if Float.is_nan f || Float.is_integer f && Float.abs f > 1e15 then "null"
  else Printf.sprintf "%.6g" f

let json_num_obj pairs =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (json_number v)) pairs)
  ^ "}"

(* One histogram as {"count": n, "sum": s, "p50": x, "p90": x, "p99": x},
   keyed "name{k=v,...}" like the Prometheus series identity. *)
let json_histograms tele =
  let series (name, labels, h) =
    let key =
      match labels with
      | [] -> name
      | labels ->
        name ^ "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
        ^ "}"
    in
    let module H = Telemetry.Histogram in
    let q p = Option.value ~default:nan (H.quantile h p) in
    Printf.sprintf "\"%s\": %s" (json_escape key)
      (json_num_obj
         [
           ("count", float_of_int (H.count h));
           ("sum", H.sum h);
           ("p50", q 0.5);
           ("p90", q 0.9);
           ("p99", q 0.99);
         ])
  in
  "{" ^ String.concat ", " (List.map series (Telemetry.histograms tele)) ^ "}"

let print_json ~jobs ~mode ~micro ~experiments ~ablations ~telemetry ~total_s =
  let wall_pairs timed_tables = List.map (fun (id, _, dt) -> (id, dt)) timed_tables in
  Format.printf
    "{@.  \"schema\": \"ssreconf-bench/1\",@.  \"jobs\": %d,@.  \"mode\": \"%s\",@.  \
     \"micro_ns_per_run\": %s,@.  \"experiments_wall_s\": %s,@.  \
     \"ablations_wall_s\": %s,@.  \"telemetry_histograms\": %s,@.  \
     \"total_wall_s\": %s@.}@."
    jobs mode
    (json_num_obj micro)
    (json_num_obj (wall_pairs experiments))
    (json_num_obj (wall_pairs ablations))
    (json_histograms telemetry)
    (json_number total_s)

(* --- driver ---------------------------------------------------------- *)

let parse_jobs args =
  let rec go = function
    | "--jobs" :: v :: _ -> int_of_string v
    | [ "--jobs" ] -> failwith "--jobs requires an argument"
    | arg :: rest ->
      (match String.index_opt arg '=' with
      | Some i when String.sub arg 0 i = "--jobs" ->
        int_of_string (String.sub arg (i + 1) (String.length arg - i - 1))
      | _ -> go rest)
    | [] -> Harness.Pool.default_jobs ()
  in
  go args

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let tables_only = List.mem "--tables" args in
  let micro_only = List.mem "--micro" args in
  let skip_ablations = List.mem "--no-ablations" args in
  let json = List.mem "--json" args in
  let jobs = parse_jobs args in
  let params =
    if full then Harness.Experiments.default_params else Harness.Experiments.quick_params
  in
  let t0 = Unix.gettimeofday () in
  let micro = if not tables_only then run_micro () else [] in
  let experiments =
    if not micro_only then run_registry Harness.Experiments.registry ~jobs params else []
  in
  let ablations =
    if (not micro_only) && not skip_ablations then
      run_registry Harness.Ablations.registry ~jobs params
    else []
  in
  let total_s = Unix.gettimeofday () -. t0 in
  if json then begin
    let telemetry = run_telemetry () in
    print_json ~jobs ~mode:(if full then "full" else "quick") ~micro ~experiments
      ~ablations ~telemetry ~total_s
  end
  else begin
    if not tables_only then print_micro micro;
    print_tables experiments;
    print_tables ablations
  end
