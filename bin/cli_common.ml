(* Shared command-line vocabulary for reconfig-sim.

   Every subcommand that runs a system is configured the same way: the
   flags below build one Reconfig.Scenario.t (topology, seed, channel
   model, fault plan, sink paths), and the subcommand hands it to
   Stack.of_scenario / Stack_loop.of_scenario. Adding a knob means adding
   it here once, not in five argument lists. *)

open Cmdliner
open Reconfig

let jobs_arg =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run simulation cells on $(docv) domains. Table output is \
           byte-identical for any job count (default: the number of \
           available cores).")

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of initial members.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let loss_arg =
  Arg.(value & opt float 0.02 & info [ "loss" ] ~docv:"P" ~doc:"Packet loss probability.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's telemetry registry to $(docv) in Prometheus text \
           exposition format.")

let metrics_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-jsonl" ] ~docv:"FILE"
        ~doc:"Write the run's telemetry registry to $(docv) as JSON Lines.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the run's event trace to $(docv) as JSON Lines.")

(* The scenario every run-flavoured subcommand shares. The fault plan rides
   separately ({!plan_term}) because only some subcommands accept one. *)
let scenario_term ?(name = "scenario") () =
  let build n seed loss jobs metrics_out metrics_jsonl trace_out =
    Scenario.make ~name ~seed ~loss ~jobs ?metrics_out ?metrics_jsonl
      ?trace_out ~nodes:n ()
  in
  Term.(
    const build $ n_arg $ seed_arg $ loss_arg $ jobs_arg $ metrics_out_arg
    $ metrics_jsonl_arg $ trace_out_arg)

let plan_term =
  let plan_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE" ~doc:"Load the fault plan from $(docv) (JSON).")
  in
  let plan_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan-json" ] ~docv:"JSON" ~doc:"Inline fault plan as JSON text.")
  in
  let build file json =
    match (file, json) with
    | Some _, Some _ ->
      `Error (true, "--plan and --plan-json are mutually exclusive")
    | None, None -> `Ok None
    | Some f, None -> (
      match Faults.Fault_plan.of_file f with
      | Ok p -> `Ok (Some p)
      | Error e -> `Error (false, Printf.sprintf "--plan %s: %s" f e))
    | None, Some s -> (
      match Faults.Fault_plan.of_json s with
      | Ok p -> `Ok (Some p)
      | Error e -> `Error (false, Printf.sprintf "--plan-json: %s" e))
  in
  Term.(ret (const build $ plan_file $ plan_json))

(* One trace entry as a JSON object (one line of JSONL output). *)
let entry_json e =
  Printf.sprintf "{\"time\":%s,\"node\":%s,\"tag\":\"%s\",\"detail\":\"%s\"}"
    (Telemetry.Export.json_float e.Sim.Trace.time)
    (match e.Sim.Trace.node with Some p -> string_of_int p | None -> "null")
    (Telemetry.Export.json_escape e.Sim.Trace.tag)
    (Telemetry.Export.json_escape e.Sim.Trace.detail)

(* Write the run's telemetry/trace to whichever sinks the scenario names.
   All three renderings are deterministic for a fixed seed: the registry
   never reads wall clocks and exports are sorted. *)
let export ~tele ~trace (sc : Scenario.t) =
  let dump path render =
    match path with
    | None -> ()
    | Some path ->
      let buf = Buffer.create 4096 in
      render buf;
      let oc = open_out path in
      Buffer.output_buffer oc buf;
      close_out oc;
      Format.printf "wrote %s@." path
  in
  dump sc.Scenario.sc_metrics_out (fun buf -> Telemetry.Export.prometheus buf tele);
  dump sc.Scenario.sc_metrics_jsonl (fun buf ->
      Telemetry.Export.metrics_jsonl buf tele);
  dump sc.Scenario.sc_trace_out (fun buf ->
      Sim.Trace.iter trace (fun e ->
          Buffer.add_string buf (entry_json e);
          Buffer.add_char buf '\n'))
