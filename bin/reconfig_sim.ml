(* reconfig-sim — command-line driver for the self-stabilizing
   reconfiguration simulator.

   Subcommands:
     experiments   regenerate the paper-claim tables (E1..E11)
     scenario      run a named scenario and print what happened
     trace         run a transient-fault recovery and dump the event trace *)

open Cmdliner
open Sim
open Reconfig

(* ------------------------------------------------------------------ *)
(* experiments                                                          *)
(* ------------------------------------------------------------------ *)

let jobs_arg =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run simulation cells on $(docv) domains. Table output is \
           byte-identical for any job count (default: the number of \
           available cores).")

let experiments_cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run with the full parameter grid.")
  in
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment identifiers (E1..E11). All when omitted.")
  in
  let run full jobs ids =
    let params =
      if full then Harness.Experiments.default_params
      else Harness.Experiments.quick_params
    in
    let tables =
      match ids with
      | [] -> Harness.Experiments.all ~jobs params
      | ids ->
        List.map
          (fun id ->
            match Harness.Experiments.by_id id with
            | Some f -> f ~jobs params
            | None ->
              Format.eprintf "unknown experiment %s (known: %s)@." id
                (String.concat ", " Harness.Experiments.ids);
              exit 1)
          ids
    in
    List.iter (fun t -> Format.printf "%a@." Harness.Table.pp t) tables
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper-claim tables (E1..E11).")
    Term.(const run $ full $ jobs_arg $ ids)

let ablations_cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run with the full parameter grid.")
  in
  let run full jobs =
    let params =
      if full then Harness.Experiments.default_params
      else Harness.Experiments.quick_params
    in
    List.iter
      (fun t -> Format.printf "%a@." Harness.Table.pp t)
      (Harness.Ablations.all ~jobs params)
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run the design-choice ablation sweeps (A1..A4).")
    Term.(const run $ full $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* scenario                                                             *)
(* ------------------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of initial members.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let loss_arg =
  Arg.(value & opt float 0.02 & info [ "loss" ] ~docv:"P" ~doc:"Packet loss probability.")

let pp_config fmt sys =
  match Stack.uniform_config sys with
  | Some c -> Pid.pp_set fmt c
  | None -> Format.fprintf fmt "(no agreement yet)"

(* One trace entry as a JSON object (one line of JSONL output). *)
let entry_json e =
  Printf.sprintf "{\"time\":%s,\"node\":%s,\"tag\":\"%s\",\"detail\":\"%s\"}"
    (Telemetry.Export.json_float e.Trace.time)
    (match e.Trace.node with Some p -> string_of_int p | None -> "null")
    (Telemetry.Export.json_escape e.Trace.tag)
    (Telemetry.Export.json_escape e.Trace.detail)

(* Write the run's telemetry/trace to whichever output files were asked
   for. All three renderings are deterministic for a fixed seed: the
   registry never reads wall clocks and exports are sorted. *)
let export_scenario sys ~metrics_out ~metrics_jsonl ~trace_out =
  let dump path render =
    match path with
    | None -> ()
    | Some path ->
      let buf = Buffer.create 4096 in
      render buf;
      let oc = open_out path in
      Buffer.output_buffer oc buf;
      close_out oc;
      Format.printf "wrote %s@." path
  in
  let tele = Engine.telemetry (Stack.engine sys) in
  dump metrics_out (fun buf -> Telemetry.Export.prometheus buf tele);
  dump metrics_jsonl (fun buf -> Telemetry.Export.metrics_jsonl buf tele);
  dump trace_out (fun buf ->
      Trace.iter
        (Engine.trace (Stack.engine sys))
        (fun e ->
          Buffer.add_string buf (entry_json e);
          Buffer.add_char buf '\n'))

let scenario_steady n seed loss =
  let members = List.init n (fun i -> i + 1) in
  let sys =
    Stack.create ~seed ~loss ~n_bound:(2 * n) ~hooks:Stack.unit_hooks ~members ()
  in
  Format.printf "starting %d members...@." n;
  Stack.run_rounds sys 30;
  Format.printf "config after 30 rounds: %a, quiescent=%b@." pp_config sys
    (Stack.quiescent sys);
  Format.printf "proposing replacement by {1..%d}...@." (n - 1);
  let target = Pid.set_of_list (List.init (n - 1) (fun i -> i + 1)) in
  let rec propose k =
    if k = 0 then Format.printf "estab not accepted@."
    else if not (Stack.estab sys 1 target) then (Stack.run_rounds sys 2; propose (k - 1))
  in
  propose 50;
  ignore
    (Stack.run_until sys ~max_steps:2_000_000 (fun t ->
         Stack.quiescent t
         && match Stack.uniform_config t with Some c -> Pid.Set.equal c target | None -> false));
  Format.printf "config after delicate replacement: %a@." pp_config sys;
  Format.printf "delicate installs: %d, brute-force resets: %d@."
    (Stack.total_installs sys) (Stack.total_resets sys);
  sys

let scenario_transient n seed loss =
  let members = List.init n (fun i -> i + 1) in
  let sys =
    Stack.create ~seed ~loss ~n_bound:(2 * n) ~hooks:Stack.unit_hooks ~members ()
  in
  Stack.run_rounds sys 30;
  Format.printf "steady config: %a@." pp_config sys;
  Format.printf "injecting transient fault: all node states and channels corrupted@.";
  Stack.corrupt_everything sys ~rng:(Rng.create (seed + 1));
  (match Stack.run_until_quiescent sys ~max_rounds:1000 with
  | Some rounds -> Format.printf "recovered in %d rounds@." rounds
  | None -> Format.printf "did not recover within budget@.");
  Format.printf "config after recovery: %a (resets: %d)@." pp_config sys
    (Stack.total_resets sys);
  sys

let scenario_churn n seed loss =
  let members = List.init n (fun i -> i + 1) in
  let hooks = { Stack.unit_hooks with eval_conf = Stack.default_eval_conf () } in
  let sys = Stack.create ~seed ~loss ~n_bound:(4 * n) ~hooks ~members () in
  Stack.run_rounds sys 30;
  Format.printf "steady config: %a@." pp_config sys;
  Format.printf "two joiners arrive...@.";
  Stack.add_joiner sys 100;
  Stack.add_joiner sys 101;
  ignore
    (Stack.run_until sys ~max_steps:2_000_000 (fun t ->
         Recsa.is_participant (Stack.node t 100).Stack.sa
         && Recsa.is_participant (Stack.node t 101).Stack.sa));
  Format.printf "joiners are participants@.";
  Format.printf "crashing members 1 and 2; the predictor should reconfigure...@.";
  Stack.crash sys 1;
  Stack.crash sys 2;
  let recovered =
    Stack.run_until sys ~max_steps:4_000_000 (fun t ->
        match Stack.uniform_config t with
        | Some c -> (not (Pid.Set.mem 1 c)) && not (Pid.Set.mem 2 c)
        | None -> false)
  in
  Format.printf "reconfigured away from crashed members: %b@." recovered;
  Format.printf "final config: %a (recMA triggers: %d)@." pp_config sys
    (Stack.total_triggers sys);
  sys

(* The scale tier's smoke scenario: full recovery from a corrupted state at
   larger N, then a short steady-state stretch, with throughput narrated.
   Everything exported (metrics, trace) is deterministic for a fixed seed;
   only the narrated wall-clock figures vary run to run. *)
let scenario_scale n seed loss =
  let members = List.init n (fun i -> i + 1) in
  let sys =
    Stack.create ~seed ~loss ~n_bound:(2 * n) ~hooks:Stack.unit_hooks ~members ()
  in
  let eng = Stack.engine sys in
  Format.printf "starting %d members...@." n;
  Stack.run_rounds sys 25;
  Format.printf "warm config: %a, quiescent=%b@." pp_config sys (Stack.quiescent sys);
  Format.printf "corrupting every node state and channel...@.";
  Stack.corrupt_everything sys ~rng:(Rng.create (seed * 7919));
  let s0 = Engine.steps eng in
  let t0 = Unix.gettimeofday () in
  (match Stack.run_until_quiescent sys ~max_rounds:500 with
  | Some rounds ->
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "recovered in %d rounds (%.2f s, %.0fk events/s)@." rounds dt
      (float_of_int (Engine.steps eng - s0) /. dt /. 1e3)
  | None -> Format.printf "did not recover within budget@.");
  let s1 = Engine.steps eng in
  let t1 = Unix.gettimeofday () in
  Stack.run_rounds sys 10;
  let dt = Unix.gettimeofday () -. t1 in
  Format.printf "steady state: %.0fk events/s, %.1f rounds/s@."
    (float_of_int (Engine.steps eng - s1) /. dt /. 1e3)
    (10.0 /. dt);
  Format.printf "config after recovery: %a (resets: %d)@." pp_config sys
    (Stack.total_resets sys);
  sys

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's telemetry registry to $(docv) in Prometheus text \
           exposition format.")

let metrics_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-jsonl" ] ~docv:"FILE"
        ~doc:"Write the run's telemetry registry to $(docv) as JSON Lines.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the run's event trace to $(docv) as JSON Lines.")

let scenario_cmd =
  let kind =
    Arg.(
      value
      & pos 0
          (enum
             [
               ("steady", `Steady);
               ("transient", `Transient);
               ("churn", `Churn);
               ("scale", `Scale);
             ])
          `Steady
      & info [] ~docv:"SCENARIO" ~doc:"One of: steady, transient, churn, scale.")
  in
  let run kind n seed loss metrics_out metrics_jsonl trace_out =
    let sys =
      match kind with
      | `Steady -> scenario_steady n seed loss
      | `Transient -> scenario_transient n seed loss
      | `Churn -> scenario_churn n seed loss
      | `Scale -> scenario_scale n seed loss
    in
    export_scenario sys ~metrics_out ~metrics_jsonl ~trace_out
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a named scenario and narrate the outcome.")
    Term.(
      const run $ kind $ n_arg $ seed_arg $ loss_arg $ metrics_out_arg
      $ metrics_jsonl_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                                *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Dump every trace entry as JSON Lines (one object per line) \
             instead of the filtered human-readable text.")
  in
  let run n seed loss json =
    let members = List.init n (fun i -> i + 1) in
    let sys =
      Stack.create ~seed ~loss ~n_bound:(2 * n) ~hooks:Stack.unit_hooks ~members ()
    in
    Stack.run_rounds sys 30;
    Stack.corrupt_everything sys ~rng:(Rng.create (seed + 1));
    ignore (Stack.run_until_quiescent sys ~max_rounds:1000);
    let trace = Engine.trace (Stack.engine sys) in
    if json then Trace.iter trace (fun e -> print_endline (entry_json e))
    else begin
      Trace.iter trace (fun e ->
          if e.Trace.tag <> "join" then Format.printf "%a@." Trace.pp_entry e);
      Format.printf "final config: %a@."
        (fun fmt () -> pp_config fmt sys) ()
    end
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the protocol event trace of a transient-fault recovery.")
    Term.(const run $ n_arg $ seed_arg $ loss_arg $ json_arg)

let () =
  let info =
    Cmd.info "reconfig-sim" ~version:"1.0.0"
      ~doc:"Self-stabilizing reconfiguration (MIDDLEWARE 2016) simulator."
  in
  exit (Cmd.eval (Cmd.group info [ experiments_cmd; ablations_cmd; scenario_cmd; trace_cmd ]))
