(* reconfig-sim — command-line driver for the self-stabilizing
   reconfiguration simulator.

   Subcommands:
     experiments   regenerate the paper-claim tables (E1..E18)
     scenario      run a named scenario and print what happened
     faults        replay a declarative fault plan on either runtime
     trace         run a transient-fault recovery and dump the event trace

   Every run-flavoured subcommand is configured through one
   Reconfig.Scenario.t built from the shared flags in Cli_common. *)

open Cmdliner
open Sim
open Reconfig

(* ------------------------------------------------------------------ *)
(* experiments                                                          *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run with the full parameter grid.")
  in
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment identifiers (E1..E18). All when omitted.")
  in
  let run full jobs ids =
    let params =
      if full then Harness.Experiments.default_params
      else Harness.Experiments.quick_params
    in
    let tables =
      match ids with
      | [] -> Harness.Experiments.all ~jobs params
      | ids ->
        List.map
          (fun id ->
            match Harness.Experiments.by_id id with
            | Some f -> f ~jobs params
            | None ->
              Format.eprintf "unknown experiment %s (known: %s)@." id
                (String.concat ", " Harness.Experiments.ids);
              exit 1)
          ids
    in
    List.iter (fun t -> Format.printf "%a@." Harness.Table.pp t) tables
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper-claim tables (E1..E18).")
    Term.(const run $ full $ Cli_common.jobs_arg $ ids)

let ablations_cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run with the full parameter grid.")
  in
  let run full jobs =
    let params =
      if full then Harness.Experiments.default_params
      else Harness.Experiments.quick_params
    in
    List.iter
      (fun t -> Format.printf "%a@." Harness.Table.pp t)
      (Harness.Ablations.all ~jobs params)
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run the design-choice ablation sweeps (A1..A4).")
    Term.(const run $ full $ Cli_common.jobs_arg)

(* ------------------------------------------------------------------ *)
(* scenario                                                             *)
(* ------------------------------------------------------------------ *)

let pp_config fmt sys =
  match Stack.uniform_config sys with
  | Some c -> Pid.pp_set fmt c
  | None -> Format.fprintf fmt "(no agreement yet)"

let export_sys sys (sc : Scenario.t) =
  let eng = Stack.engine sys in
  Cli_common.export ~tele:(Engine.telemetry eng) ~trace:(Engine.trace eng) sc

let scenario_steady (sc : Scenario.t) =
  let n = Scenario.nodes sc in
  let sys = Stack.of_scenario ~hooks:Stack.unit_hooks sc in
  Format.printf "starting %d members...@." n;
  Stack.run_rounds sys 30;
  Format.printf "config after 30 rounds: %a, quiescent=%b@." pp_config sys
    (Stack.quiescent sys);
  Format.printf "proposing replacement by {1..%d}...@." (n - 1);
  let target = Pid.set_of_list (List.init (n - 1) (fun i -> i + 1)) in
  let rec propose k =
    if k = 0 then Format.printf "estab not accepted@."
    else if not (Stack.estab sys 1 target) then (Stack.run_rounds sys 2; propose (k - 1))
  in
  propose 50;
  ignore
    (Stack.run_until sys ~max_steps:2_000_000 (fun t ->
         Stack.quiescent t
         && match Stack.uniform_config t with Some c -> Pid.Set.equal c target | None -> false));
  Format.printf "config after delicate replacement: %a@." pp_config sys;
  Format.printf "delicate installs: %d, brute-force resets: %d@."
    (Stack.total_installs sys) (Stack.total_resets sys);
  sys

let scenario_transient (sc : Scenario.t) =
  let sys = Stack.of_scenario ~hooks:Stack.unit_hooks sc in
  Stack.run_rounds sys 30;
  Format.printf "steady config: %a@." pp_config sys;
  Format.printf "injecting transient fault: all node states and channels corrupted@.";
  Stack.corrupt_everything sys ~rng:(Rng.create (sc.Scenario.sc_seed + 1));
  (match Stack.run_until_quiescent sys ~max_rounds:1000 with
  | Some rounds -> Format.printf "recovered in %d rounds@." rounds
  | None -> Format.printf "did not recover within budget@.");
  Format.printf "config after recovery: %a (resets: %d)@." pp_config sys
    (Stack.total_resets sys);
  sys

let scenario_churn (sc : Scenario.t) =
  let n = Scenario.nodes sc in
  let hooks = { Stack.unit_hooks with eval_conf = Stack.default_eval_conf () } in
  let sys = Stack.of_scenario ~hooks (Scenario.with_n_bound sc (4 * n)) in
  Stack.run_rounds sys 30;
  Format.printf "steady config: %a@." pp_config sys;
  Format.printf "two joiners arrive...@.";
  Stack.add_joiner sys 100;
  Stack.add_joiner sys 101;
  ignore
    (Stack.run_until sys ~max_steps:2_000_000 (fun t ->
         Recsa.is_participant (Stack.node t 100).Stack.sa
         && Recsa.is_participant (Stack.node t 101).Stack.sa));
  Format.printf "joiners are participants@.";
  Format.printf "crashing members 1 and 2; the predictor should reconfigure...@.";
  Stack.crash sys 1;
  Stack.crash sys 2;
  let recovered =
    Stack.run_until sys ~max_steps:4_000_000 (fun t ->
        match Stack.uniform_config t with
        | Some c -> (not (Pid.Set.mem 1 c)) && not (Pid.Set.mem 2 c)
        | None -> false)
  in
  Format.printf "reconfigured away from crashed members: %b@." recovered;
  Format.printf "final config: %a (recMA triggers: %d)@." pp_config sys
    (Stack.total_triggers sys);
  sys

(* The scale tier's smoke scenario: full recovery from a corrupted state at
   larger N, then a short steady-state stretch, with throughput narrated.
   Everything exported (metrics, trace) is deterministic for a fixed seed;
   only the narrated wall-clock figures vary run to run. *)
let scenario_scale (sc : Scenario.t) =
  let n = Scenario.nodes sc and seed = sc.Scenario.sc_seed in
  let sys = Stack.of_scenario ~hooks:Stack.unit_hooks sc in
  let eng = Stack.engine sys in
  Format.printf "starting %d members...@." n;
  Stack.run_rounds sys 25;
  Format.printf "warm config: %a, quiescent=%b@." pp_config sys (Stack.quiescent sys);
  Format.printf "corrupting every node state and channel...@.";
  Stack.corrupt_everything sys ~rng:(Rng.create (seed * 7919));
  let s0 = Engine.steps eng in
  let t0 = Unix.gettimeofday () in
  (match Stack.run_until_quiescent sys ~max_rounds:500 with
  | Some rounds ->
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "recovered in %d rounds (%.2f s, %.0fk events/s)@." rounds dt
      (float_of_int (Engine.steps eng - s0) /. dt /. 1e3)
  | None -> Format.printf "did not recover within budget@.");
  let s1 = Engine.steps eng in
  let t1 = Unix.gettimeofday () in
  Stack.run_rounds sys 10;
  let dt = Unix.gettimeofday () -. t1 in
  Format.printf "steady state: %.0fk events/s, %.1f rounds/s@."
    (float_of_int (Engine.steps eng - s1) /. dt /. 1e3)
    (10.0 /. dt);
  Format.printf "config after recovery: %a (resets: %d)@." pp_config sys
    (Stack.total_resets sys);
  sys

let scenario_cmd =
  let kind =
    Arg.(
      value
      & pos 0
          (enum
             [
               ("steady", `Steady);
               ("transient", `Transient);
               ("churn", `Churn);
               ("scale", `Scale);
             ])
          `Steady
      & info [] ~docv:"SCENARIO" ~doc:"One of: steady, transient, churn, scale.")
  in
  let run kind sc =
    let sys =
      match kind with
      | `Steady -> scenario_steady sc
      | `Transient -> scenario_transient sc
      | `Churn -> scenario_churn sc
      | `Scale -> scenario_scale sc
    in
    export_sys sys sc
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a named scenario and narrate the outcome.")
    Term.(const run $ kind $ Cli_common.scenario_term ~name:"scenario" ())

(* ------------------------------------------------------------------ *)
(* faults                                                               *)
(* ------------------------------------------------------------------ *)

(* A small built-in plan used when no --plan/--plan-json is given: a
   corruption burst, a lossy stretch on every link out of node 1, a
   partition with a timed heal, and two joiners. *)
let demo_plan n seed =
  let module Fp = Faults.Fault_plan in
  Fp.make ~seed
    [
      Fp.at 30 (Fp.Corrupt_nodes (Fp.Sample (max 1 (n / 2))));
      Fp.at 32 (Fp.Corrupt_channels Fp.All);
      Fp.at 36
        (Fp.Degrade_links
           { src = Fp.Pids [ 1 ]; dst = Fp.All; profile = Fp.lossy 0.5 });
      Fp.at 44 (Fp.Restore_links { src = Fp.Pids [ 1 ]; dst = Fp.All });
      Fp.at 48 (Fp.Partition { group = Fp.Sample ((n / 2) + 1); heal_after = 10 });
      Fp.at 62 (Fp.Join [ n + 1; n + 2 ]);
    ]

let fault_counters tele =
  List.fold_left
    (fun (applied, skipped) (name, labels, v) ->
      if name <> "fault.injected" then (applied, skipped)
      else if List.mem_assoc "kind" labels && List.assoc "kind" labels = "skipped"
      then (applied, skipped + v)
      else (applied + v, skipped))
    (0, 0) (Telemetry.counters tele)

let report_plan_outcome ~tele ~recovery =
  let applied, skipped = fault_counters tele in
  Format.printf "fault events applied: %d, skipped: %d@." applied skipped;
  match recovery with
  | Some rounds -> Format.printf "quiescent %d rounds after the last fault@." rounds
  | None -> Format.printf "did not stabilize within budget@."

let faults_cmd =
  let runtime =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("loop", `Loop) ]) `Sim
      & info [ "runtime" ] ~docv:"RT"
          ~doc:
            "Which runtime interprets the plan: the discrete-event simulator \
             ($(b,sim)) or the real-time event loop ($(b,loop)). The loop has \
             no channel state to corrupt; such events are counted as skipped.")
  in
  let run sc plan runtime =
    let plan =
      match plan with
      | Some p -> p
      | None -> demo_plan (Scenario.nodes sc) sc.Scenario.sc_seed
    in
    let sc = Scenario.with_plan sc (Some plan) in
    Format.printf "%a@." Faults.Fault_plan.pp plan;
    match runtime with
    | `Sim ->
      let sys = Stack.of_scenario ~hooks:Stack.unit_hooks sc in
      let recovery = Stack.run_plan sys ~plan ~max_rounds:2000 in
      let tele = Engine.telemetry (Stack.engine sys) in
      report_plan_outcome ~tele ~recovery;
      Format.printf "final config: %a (resets: %d)@." pp_config sys
        (Stack.total_resets sys);
      export_sys sys sc
    | `Loop ->
      let sys = Stack_loop.of_scenario ~hooks:Stack.unit_hooks sc in
      let recovery = Stack_loop.run_plan sys ~plan ~max_rounds:2000 in
      let loop = Stack_loop.loop sys in
      let tele = Runtime.Loop.telemetry loop in
      report_plan_outcome ~tele ~recovery;
      (match Stack_loop.uniform_config sys with
      | Some c -> Format.printf "final config: %a@." Pid.pp_set c
      | None -> Format.printf "final config: (no agreement yet)@.");
      Cli_common.export ~tele ~trace:(Runtime.Loop.trace loop) sc
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Replay a declarative fault plan (JSON) on either runtime and \
          report stabilization.")
    Term.(
      const run
      $ Cli_common.scenario_term ~name:"faults" ()
      $ Cli_common.plan_term $ runtime)

(* ------------------------------------------------------------------ *)
(* trace                                                                *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Dump every trace entry as JSON Lines (one object per line) \
             instead of the filtered human-readable text.")
  in
  let run sc json =
    let sys = Stack.of_scenario ~hooks:Stack.unit_hooks sc in
    Stack.run_rounds sys 30;
    Stack.corrupt_everything sys ~rng:(Rng.create (sc.Scenario.sc_seed + 1));
    ignore (Stack.run_until_quiescent sys ~max_rounds:1000);
    let trace = Engine.trace (Stack.engine sys) in
    if json then Trace.iter trace (fun e -> print_endline (Cli_common.entry_json e))
    else begin
      Trace.iter trace (fun e ->
          if e.Trace.tag <> "join" then Format.printf "%a@." Trace.pp_entry e);
      Format.printf "final config: %a@."
        (fun fmt () -> pp_config fmt sys) ()
    end
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the protocol event trace of a transient-fault recovery.")
    Term.(const run $ Cli_common.scenario_term ~name:"trace" () $ json_arg)

let () =
  let info =
    Cmd.info "reconfig-sim" ~version:"1.0.0"
      ~doc:"Self-stabilizing reconfiguration (MIDDLEWARE 2016) simulator."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ experiments_cmd; ablations_cmd; scenario_cmd; faults_cmd; trace_cmd ]))
