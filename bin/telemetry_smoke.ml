(* telemetry-smoke — end-to-end check of the telemetry exporters.

   Runs a short transient-fault recovery in-process, renders the
   resulting registry in both export formats (plus the event trace as
   JSONL), validates each with a hand-rolled parser, checks that the
   metric families the scheme promises are present, and confirms that
   two identical-seed runs yield byte-identical exports. Exits nonzero
   on any failure, so `dune build @telemetry-smoke` is a CI gate. *)

open Sim
open Reconfig

let fail fmt =
  Format.kasprintf
    (fun s ->
      prerr_endline ("telemetry-smoke: FAIL: " ^ s);
      exit 1)
    fmt

(* ------------------------------------------------------------------ *)
(* the scenario                                                         *)
(* ------------------------------------------------------------------ *)

let run_scenario () =
  let n = 5 and seed = 7 in
  let members = List.init n (fun i -> i + 1) in
  let sys =
    Stack.of_scenario ~hooks:Stack.unit_hooks
      (Scenario.make ~seed ~loss:0.02 ~n_bound:(2 * n) ~members ())
  in
  Stack.run_rounds sys 30;
  Stack.corrupt_everything sys ~rng:(Rng.create (seed + 1));
  ignore (Stack.run_until_quiescent sys ~max_rounds:500);
  sys

let entry_json e =
  Printf.sprintf "{\"time\":%s,\"node\":%s,\"tag\":\"%s\",\"detail\":\"%s\"}"
    (Telemetry.Export.json_float e.Trace.time)
    (match e.Trace.node with Some p -> string_of_int p | None -> "null")
    (Telemetry.Export.json_escape e.Trace.tag)
    (Telemetry.Export.json_escape e.Trace.detail)

let render sys =
  let tele = Engine.telemetry (Stack.engine sys) in
  let prom = Buffer.create 4096 in
  Telemetry.Export.prometheus prom tele;
  let ml = Buffer.create 4096 in
  Telemetry.Export.metrics_jsonl ml tele;
  let tr = Buffer.create 4096 in
  Trace.iter
    (Engine.trace (Stack.engine sys))
    (fun e ->
      Buffer.add_string tr (entry_json e);
      Buffer.add_char tr '\n');
  (Buffer.contents prom, Buffer.contents ml, Buffer.contents tr)

(* ------------------------------------------------------------------ *)
(* hand-rolled JSON validator                                           *)
(* ------------------------------------------------------------------ *)

exception Bad_json of string

let validate_json line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then '\255' else line.[!pos] in
  let adv () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
    do
      incr pos
    done
  in
  let bad msg =
    raise (Bad_json (Printf.sprintf "%s at offset %d in: %s" msg !pos line))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> str ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> bad "expected a value"
  and lit s =
    String.iter
      (fun c ->
        if peek () <> c then bad "bad literal";
        adv ())
      s
  and number () =
    let start = !pos in
    if peek () = '-' then adv ();
    while
      match peek () with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      adv ()
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some _ -> ()
    | None -> bad "bad number"
  and str () =
    if peek () <> '"' then bad "expected a string";
    adv ();
    let rec go () =
      match peek () with
      | '"' -> adv ()
      | '\\' ->
        adv ();
        adv ();
        go ()
      | '\255' -> bad "unterminated string"
      | _ ->
        adv ();
        go ()
    in
    go ()
  and obj () =
    adv ();
    skip_ws ();
    if peek () = '}' then adv ()
    else
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        if peek () <> ':' then bad "expected ':'";
        adv ();
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          adv ();
          members ()
        | '}' -> adv ()
        | _ -> bad "expected ',' or '}'"
      in
      members ()
  and arr () =
    adv ();
    skip_ws ();
    if peek () = ']' then adv ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          adv ();
          elems ()
        | ']' -> adv ()
        | _ -> bad "expected ',' or ']'"
      in
      elems ()
  in
  value ();
  skip_ws ();
  if !pos <> n then bad "trailing garbage"

let validate_jsonl ~what text =
  let count = ref 0 in
  List.iter
    (fun line ->
      if line <> "" then begin
        incr count;
        try validate_json line
        with Bad_json msg -> fail "%s: %s" what msg
      end)
    (String.split_on_char '\n' text);
  if !count = 0 then fail "%s: empty output" what;
  !count

(* ------------------------------------------------------------------ *)
(* hand-rolled Prometheus text-exposition validator                     *)
(* ------------------------------------------------------------------ *)

let validate_prometheus text =
  let count = ref 0 in
  List.iter
    (fun line ->
      if line = "" then ()
      else if line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: _name :: [ kind ] ->
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            fail "prometheus: unknown TYPE kind: %s" line
        | "#" :: "HELP" :: _ -> ()
        | _ -> fail "prometheus: malformed comment: %s" line
      end
      else begin
        incr count;
        (* name{labels} value  |  name value — our label values never
           contain spaces, so the value is everything after the last one. *)
        match String.rindex_opt line ' ' with
        | None -> fail "prometheus: malformed sample: %s" line
        | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          (match float_of_string_opt v with
          | Some _ -> ()
          | None -> fail "prometheus: unparseable value: %s" line);
          let name_part = String.sub line 0 i in
          let name =
            match String.index_opt name_part '{' with
            | Some j ->
              if name_part.[String.length name_part - 1] <> '}' then
                fail "prometheus: unclosed label set: %s" line;
              String.sub name_part 0 j
            | None -> name_part
          in
          if name = "" then fail "prometheus: empty metric name: %s" line;
          String.iter
            (fun c ->
              match c with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
              | _ -> fail "prometheus: bad metric name: %s" line)
            name
      end)
    (String.split_on_char '\n' text);
  !count

(* ------------------------------------------------------------------ *)
(* required families                                                    *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let required_prom =
  [
    "recsa_replacement_seconds_bucket";
    "recsa_reset_recovery_seconds_bucket";
    "recsa_brute_force_total";
    "recsa_conflicts_total{type=\"1\"}";
    "recsa_conflicts_total{type=\"2\"}";
    "recsa_conflicts_total{type=\"3\"}";
    "recsa_conflicts_total{type=\"4\"}";
    "join_handshake_seconds_bucket";
    "counter_op_seconds_bucket";
    "vs_view_change_seconds_bucket";
  ]

let required_jsonl =
  [
    "\"name\":\"recsa.replacement_seconds\"";
    "\"name\":\"recsa.brute_force\"";
    "\"name\":\"recsa.conflicts\"";
    "\"name\":\"join.handshake_seconds\"";
    "\"name\":\"counter.op_seconds\"";
  ]

(* ------------------------------------------------------------------ *)

let () =
  let sys1 = run_scenario () in
  let prom1, ml1, tr1 = render sys1 in
  let prom_samples = validate_prometheus prom1 in
  let metric_lines = validate_jsonl ~what:"metrics jsonl" ml1 in
  let trace_lines = validate_jsonl ~what:"trace jsonl" tr1 in
  List.iter
    (fun needle ->
      if not (contains prom1 needle) then
        fail "prometheus output is missing %s" needle)
    required_prom;
  List.iter
    (fun needle ->
      if not (contains ml1 needle) then
        fail "metrics jsonl output is missing %s" needle)
    required_jsonl;
  let sys2 = run_scenario () in
  let prom2, ml2, tr2 = render sys2 in
  if prom1 <> prom2 then fail "identical seeds: prometheus exports differ";
  if ml1 <> ml2 then fail "identical seeds: metrics jsonl exports differ";
  if tr1 <> tr2 then fail "identical seeds: trace jsonl exports differ";
  Printf.printf
    "telemetry-smoke: OK (%d prometheus samples, %d metric rows, %d trace \
     events; identical-seed runs byte-identical)\n"
    prom_samples metric_lines trace_lines
