(* Shared storage under churn — the motivating system of the paper's
   introduction [20]: an MWMR register service whose quorum configuration
   gradually loses members to crashes while new processors keep joining,
   with the reconfiguration scheme keeping the service consistent.

   Run with:  dune exec examples/churn_storage.exe *)

open Sim
open Vs

let app sys p = (Reconfig.Stack.node sys p).Reconfig.Stack.app

let wait_view sys =
  Reconfig.Stack.run_until sys ~max_steps:2_000_000 (fun t ->
      List.for_all
        (fun (_, n) ->
          Vs_service.status_of n.Reconfig.Stack.app = Vs_service.Multicast
          && (Vs_service.current_view n.Reconfig.Stack.app).Vs_service.vid <> None)
        (Reconfig.Stack.live_nodes t))

let pp_config fmt sys =
  match Reconfig.Stack.uniform_config sys with
  | Some c -> Pid.pp_set fmt c
  | None -> Format.fprintf fmt "(reconfiguring)"

let () =
  (* the predictor reconfigures once a quarter of the members look failed *)
  let eval_config ~self:_ ~trusted members =
    let missing =
      Pid.Set.cardinal members - Pid.Set.cardinal (Pid.Set.inter members trusted)
    in
    missing > 0 && 4 * missing >= Pid.Set.cardinal members
  in
  let members = [ 1; 2; 3; 4; 5 ] in
  let sys =
    Reconfig.Stack.of_scenario
      ~hooks:(Shared_memory.hooks ~eval_config ())
      (Reconfig.Scenario.make ~seed:21 ~n_bound:32 ~members ())
  in
  Reconfig.Stack.run_rounds sys 20;
  ignore (wait_view sys);
  Format.printf "storage service up, config=%a@." pp_config sys;

  (* clients write and read *)
  Shared_memory.write (app sys 2) ~writer:2 "x" 10;
  ignore
    (Reconfig.Stack.run_until sys ~max_steps:2_000_000 (fun t ->
         Shared_memory.peek (app t 5) "x" = Some 10));
  Shared_memory.read (app sys 5) ~reader:5 ~rid:1 "x";
  ignore
    (Reconfig.Stack.run_until sys ~max_steps:2_000_000 (fun t ->
         Shared_memory.read_result (app t 5) ~reader:5 ~rid:1 <> None));
  Format.printf "node 5 read x = %s@."
    (match Shared_memory.read_result (app sys 5) ~reader:5 ~rid:1 with
    | Some (Some v) -> string_of_int v
    | Some None -> "(unwritten)"
    | None -> "(pending)");

  (* churn: two joiners arrive, then two members crash *)
  Reconfig.Stack.add_joiner sys 101;
  Reconfig.Stack.add_joiner sys 102;
  ignore
    (Reconfig.Stack.run_until sys ~max_steps:2_000_000 (fun t ->
         Reconfig.Recsa.is_participant (Reconfig.Stack.node t 101).Reconfig.Stack.sa
         && Reconfig.Recsa.is_participant (Reconfig.Stack.node t 102).Reconfig.Stack.sa));
  Format.printf "joiners 101, 102 are participants@.";
  Reconfig.Stack.crash sys 1;
  Reconfig.Stack.crash sys 2;
  Format.printf "members 1 and 2 crashed; waiting for reconfiguration...@.";
  ignore
    (Reconfig.Stack.run_until sys ~max_steps:6_000_000 (fun t ->
         match Reconfig.Stack.uniform_config t with
         | Some c -> (not (Pid.Set.mem 1 c)) && not (Pid.Set.mem 2 c)
         | None -> false));
  Format.printf "reconfigured: config=%a@." pp_config sys;

  (* the register survived the churn *)
  ignore (wait_view sys);
  Shared_memory.write (app sys 101) ~writer:101 "x" 77;
  ignore
    (Reconfig.Stack.run_until sys ~max_steps:4_000_000 (fun t ->
         List.for_all
           (fun (_, n) -> Shared_memory.peek n.Reconfig.Stack.app "x" = Some 77)
           (Reconfig.Stack.live_nodes t)));
  Format.printf "new participant wrote x=77; visible at every live node@.";
  Format.printf "service survived churn of %d joins and %d crashes@." 2 2
