(* Bounded labels and practically-infinite counters (Sections 4.1/4.2):
   what happens when a transient fault drives a counter straight to its
   maximum? The epoch machinery cancels the exhausted counter, mints a new
   maximal label, and counting continues — no wrap-around, no unbounded
   storage.

   Run with:  dune exec examples/epoch_counters.exe *)

open Sim
open Labels
open Counters

let app sys p = (Reconfig.Stack.node sys p).Reconfig.Stack.app

let increment sys pid =
  let before = List.length (Counter_service.results (app sys pid)) in
  Counter_service.request_increment (app sys pid);
  let ok =
    Reconfig.Stack.run_until sys ~max_steps:2_000_000 (fun t ->
        List.length (Counter_service.results (app t pid)) > before)
  in
  if not ok then failwith "increment did not complete";
  List.nth (Counter_service.results (app sys pid)) before

let () =
  (* a deliberately tiny exhaustion bound so we can watch epochs roll *)
  let exhaust_bound = 4 in
  let members = [ 1; 2; 3 ] in
  let sys =
    Reconfig.Stack.of_scenario
      ~hooks:(Counter_service.hooks ~in_transit_bound:4 ~exhaust_bound)
      (Reconfig.Scenario.make ~seed:31 ~n_bound:8 ~members ())
  in
  Reconfig.Stack.run_rounds sys 20;
  Format.printf "counter bound per epoch label: %d@." exhaust_bound;
  for i = 1 to 10 do
    let c = increment sys (1 + (i mod 3)) in
    Format.printf "increment %2d -> seqn=%d wid=%a label-creator=%a sting=%d@." i
      c.Counter.seqn Pid.pp c.Counter.wid Pid.pp c.Counter.lbl.Label.creator
      c.Counter.lbl.Label.sting
  done;
  (* Epoch rolls are visible above: whenever a label's sequence numbers ran
     out, the members canceled it and minted a fresh epoch label. During a
     roll, concurrent increments may briefly use different epochs (the
     counters are then incomparable — exactly why Theorem 4.6 is an
     *eventual* monotonicity result). Once the labeling algorithm settles
     on the new maximal label, increments are strictly increasing again. *)
  Format.printf "@.letting the labeling algorithm settle on one epoch...@.";
  Reconfig.Stack.run_rounds sys 40;
  let cs = List.init 3 (fun i -> increment sys (1 + (i mod 3))) in
  Format.printf "three post-settle increments:@.";
  List.iter
    (fun (c : Counter.t) ->
      Format.printf "  seqn=%d wid=%a label-creator=%a@." c.Counter.seqn Pid.pp
        c.Counter.wid Pid.pp c.Counter.lbl.Label.creator)
    cs;
  let rec mono = function
    | a :: (b :: _ as rest) -> Counter.precedes a b && mono rest
    | _ -> true
  in
  Format.printf "strictly increasing after settling: %b@." (mono cs);
  Format.printf "bounded storage throughout: no sequence number ever exceeded %d@."
    exhaust_bound
