(* The identical protocol stack running on the real-time event-loop runtime
   ({!Runtime.Loop}) instead of the discrete-event simulator: same
   {!Reconfig.Stack.Core}, different engine behind the RUNTIME signature.

   Run with:  dune exec examples/loop_demo.exe *)

open Sim
open Reconfig

let pp_conf fmt = function
  | Some c -> Pid.pp_set fmt c
  | None -> Format.fprintf fmt "<no agreement>"

let () =
  let members = [ 1; 2; 3; 4; 5 ] in
  let sys =
    Stack_loop.of_scenario ~hooks:Stack.unit_hooks
      (Scenario.make ~seed:7 ~n_bound:16 ~members ())
  in

  (* Bootstrap: let the failure detectors warm up and the scheme settle. *)
  (match Stack_loop.run_until_quiescent sys ~max_rounds:500 with
  | Some r -> Format.printf "quiescent after %d rounds@." r
  | None -> Format.printf "not quiescent within 500 rounds?!@.");
  Format.printf "agreed configuration: %a@." pp_conf (Stack_loop.uniform_config sys);

  (* Admit a joiner through the snap-stabilizing join protocol. *)
  Stack_loop.add_joiner sys 6;
  Stack_loop.run_rounds sys 200;
  Format.printf "joiner 6 now trusts: %a@." Pid.pp_set (Stack_loop.trusted_of sys 6);
  Format.printf "configuration still: %a@." pp_conf (Stack_loop.uniform_config sys);

  (* Crash a member; the survivors keep the configuration available. *)
  Stack_loop.crash sys 5;
  Stack_loop.run_rounds sys 100;
  Format.printf "after crash(5), configuration: %a@." pp_conf
    (Stack_loop.uniform_config sys);

  let loop = Stack_loop.loop sys in
  Format.printf "loop runtime: %d rounds, %.3fs of loop time, %d messages in flight@."
    (Runtime.Loop.rounds loop) (Runtime.Loop.now loop) (Runtime.Loop.pending loop)
