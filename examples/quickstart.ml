(* Quickstart: bring up a self-stabilizing reconfigurable system, read the
   agreed configuration, replace it delicately, admit a joiner, and survive
   a transient fault.

   Run with:  dune exec examples/quickstart.exe *)

open Sim
open Reconfig

let () =
  (* Five initial members; the scheme's "application" is trivial: never ask
     for reconfiguration, always admit joiners. *)
  let members = [ 1; 2; 3; 4; 5 ] in
  let sys =
    Stack.of_scenario ~hooks:Stack.unit_hooks
      (Scenario.make ~seed:7 ~n_bound:16 ~members ())
  in

  (* Let the failure detectors warm up and the scheme go quiescent. *)
  Stack.run_rounds sys 30;
  (match Stack.uniform_config sys with
  | Some config -> Format.printf "agreed configuration: %a@." Pid.pp_set config
  | None -> Format.printf "no agreement yet?!@.");

  (* Delicate replacement: ask recSA to install {1,2,3}. The proposal goes
     through the three-phase automaton of Figure 2. *)
  let target = Pid.set_of_list [ 1; 2; 3 ] in
  let rec propose tries =
    if tries > 0 && not (Stack.estab sys 1 target) then begin
      Stack.run_rounds sys 2;
      propose (tries - 1)
    end
  in
  propose 50;
  ignore
    (Stack.run_until sys ~max_steps:1_000_000 (fun t ->
         match Stack.uniform_config t with
         | Some c -> Pid.Set.equal c target && Stack.quiescent t
         | None -> false));
  Format.printf "after estab({1,2,3}): %a@."
    (fun fmt () ->
      match Stack.uniform_config sys with
      | Some c -> Pid.pp_set fmt c
      | None -> Format.fprintf fmt "?")
    ();

  (* A new processor joins: it needs passes from a majority of the
     configuration members, then becomes a participant. *)
  Stack.add_joiner sys 9;
  ignore
    (Stack.run_until sys ~max_steps:1_000_000 (fun t ->
         Recsa.is_participant (Stack.node t 9).Stack.sa));
  Format.printf "processor 9 joined as participant@.";

  (* Transient fault: arbitrary garbage in every node state and channel.
     Self-stabilization: the system converges back to a uniform
     configuration without outside help. *)
  Stack.corrupt_everything sys ~rng:(Rng.create 99);
  (match Stack.run_until_quiescent sys ~max_rounds:500 with
  | Some rounds -> Format.printf "recovered from transient fault in %d rounds@." rounds
  | None -> Format.printf "recovery timed out?!@.");
  match Stack.uniform_config sys with
  | Some config -> Format.printf "configuration after recovery: %a@." Pid.pp_set config
  | None -> Format.printf "no agreement after recovery?!@."
