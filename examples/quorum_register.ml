(* The quorum-based register emulation (two-phase read/write with counter
   tags) serving across member crashes and a delicate reconfiguration —
   the ABD-style alternative to routing operations through the replicated
   state machine.

   Run with:  dune exec examples/quorum_register.exe *)

open Sim
open Register

let app sys p = (Reconfig.Stack.node sys p).Reconfig.Stack.app

let wait sys pred =
  if not (Reconfig.Stack.run_until sys ~max_steps:2_000_000 pred) then
    failwith "operation did not complete"

let () =
  let members = [ 1; 2; 3; 4; 5 ] in
  let sys =
    Reconfig.Stack.of_scenario ~hooks:(Register_service.hooks ())
      (Reconfig.Scenario.make ~seed:17 ~n_bound:16 ~members ())
  in
  Reconfig.Stack.run_rounds sys 20;

  (* write at node 1, read at node 5 *)
  Register_service.write (app sys 1) ~rid:1 "balance" 250;
  wait sys (fun t -> Register_service.write_done (app t 1) ~rid:1);
  Register_service.read (app sys 5) ~rid:1 "balance";
  wait sys (fun t -> Register_service.find_read (app t 5) ~rid:1 <> None);
  Format.printf "node 5 reads balance = %s@."
    (match Register_service.find_read (app sys 5) ~rid:1 with
    | Some (Some v) -> string_of_int v
    | _ -> "?");

  (* a member crashes: the majority keeps serving *)
  Reconfig.Stack.crash sys 2;
  Format.printf "member 2 crashed; operations continue against the majority@.";
  Register_service.write (app sys 3) ~rid:1 "balance" 300;
  wait sys (fun t -> Register_service.write_done (app t 3) ~rid:1);
  Register_service.read (app sys 4) ~rid:1 "balance";
  wait sys (fun t -> Register_service.find_read (app t 4) ~rid:1 <> None);
  Format.printf "node 4 reads balance = %s after the crash@."
    (match Register_service.find_read (app sys 4) ~rid:1 with
    | Some (Some v) -> string_of_int v
    | _ -> "?");

  (* delicate reconfiguration away from the crashed member; the register
     value survives because every participant keeps a refreshed copy *)
  let target = Pid.set_of_list [ 1; 3; 4; 5 ] in
  let rec propose k =
    if k = 0 then failwith "estab never accepted"
    else if not (Reconfig.Stack.estab sys 1 target) then begin
      Reconfig.Stack.run_rounds sys 2;
      propose (k - 1)
    end
  in
  propose 60;
  wait sys (fun t ->
      Option.equal Pid.Set.equal (Reconfig.Stack.uniform_config t) (Some target)
      && Reconfig.Stack.quiescent t);
  Format.printf "reconfigured to {1, 3, 4, 5}@.";
  Register_service.read (app sys 1) ~rid:2 "balance";
  wait sys (fun t -> Register_service.find_read (app t 1) ~rid:2 <> None);
  Format.printf "balance after reconfiguration = %s (aborted-and-retried ops: %d)@."
    (match Register_service.find_read (app sys 1) ~rid:2 with
    | Some (Some v) -> string_of_int v
    | _ -> "?")
    (List.fold_left
       (fun acc (_, n) -> acc + Register_service.aborts n.Reconfig.Stack.app)
       0
       (Reconfig.Stack.live_nodes sys))
