(* A replicated key-value store over the self-stabilizing reconfigurable
   virtually synchronous SMR (Section 4.3): the workload the paper's
   introduction motivates — a service that keeps running while its replica
   set changes.

   Run with:  dune exec examples/replicated_kv.exe *)

open Sim
open Vs

module Kv = Map.Make (String)

type cmd = Put of string * int | Del of string

let machine =
  {
    Vs_service.initial = Kv.empty;
    apply =
      (fun kv -> function
        | Put (k, v) -> Kv.add k v kv
        | Del k -> Kv.remove k kv);
  }

let pp_kv fmt kv =
  Kv.iter (fun k v -> Format.fprintf fmt "%s=%d " k v) kv

let app sys p = (Reconfig.Stack.node sys p).Reconfig.Stack.app

let wait_view sys =
  Reconfig.Stack.run_until sys ~max_steps:2_000_000 (fun t ->
      List.for_all
        (fun (_, n) ->
          Vs_service.status_of n.Reconfig.Stack.app = Vs_service.Multicast
          && (Vs_service.current_view n.Reconfig.Stack.app).Vs_service.vid <> None)
        (Reconfig.Stack.live_nodes t))

let wait_value sys key value =
  Reconfig.Stack.run_until sys ~max_steps:2_000_000 (fun t ->
      List.for_all
        (fun (_, n) ->
          Kv.find_opt key (Vs_service.replica n.Reconfig.Stack.app) = value)
        (Reconfig.Stack.live_nodes t))

let () =
  (* reconfigure whenever the participant set differs from the members *)
  let want_joiner = ref false in
  let eval_config ~self:_ ~trusted:_ _ = !want_joiner in
  let members = [ 1; 2; 3; 4 ] in
  let sys =
    Reconfig.Stack.of_scenario
      ~hooks:(Vs_service.hooks ~machine ~eval_config ())
      (Reconfig.Scenario.make ~seed:11 ~n_bound:16 ~members ())
  in
  Reconfig.Stack.run_rounds sys 20;
  ignore (wait_view sys);
  Format.printf "view established; coordinator elected@.";

  (* clients at different replicas write *)
  Vs_service.submit (app sys 1) (Put ("apples", 3));
  Vs_service.submit (app sys 2) (Put ("pears", 7));
  Vs_service.submit (app sys 3) (Put ("plums", 1));
  ignore (wait_value sys "plums" (Some 1));
  Format.printf "store at node 4: %a@." pp_kv (Vs_service.replica (app sys 4));

  (* a new replica joins; the coordinator reconfigures to include it *)
  Reconfig.Stack.add_joiner sys 9;
  ignore
    (Reconfig.Stack.run_until sys ~max_steps:2_000_000 (fun t ->
         Reconfig.Recsa.is_participant (Reconfig.Stack.node t 9).Reconfig.Stack.sa));
  want_joiner := true;
  ignore
    (Reconfig.Stack.run_until sys ~max_steps:4_000_000 (fun t ->
         match Reconfig.Stack.uniform_config t with
         | Some c -> Pid.Set.mem 9 c
         | None -> false));
  want_joiner := false;
  Format.printf "replica 9 joined; configuration now includes it@.";

  (* the store survived the reconfiguration, and replica 9 can serve *)
  ignore (wait_value sys "apples" (Some 3));
  Format.printf "store at new replica 9: %a@." pp_kv (Vs_service.replica (app sys 9));

  (* a mixed workload after the reconfiguration *)
  Vs_service.submit (app sys 9) (Put ("quinces", 2));
  Vs_service.submit (app sys 1) (Del "pears");
  ignore (wait_value sys "quinces" (Some 2));
  ignore (wait_value sys "pears" None);
  Format.printf "final store everywhere: %a@." pp_kv (Vs_service.replica (app sys 2));
  let logs =
    List.map
      (fun (_, n) -> List.length (Vs_service.delivered n.Reconfig.Stack.app))
      (Reconfig.Stack.live_nodes sys)
  in
  Format.printf "commands delivered per replica: %s@."
    (String.concat " " (List.map string_of_int logs))
