(* Self-stabilization in action: the same transient fault is injected into
   (a) the non-stabilizing epoch-based baseline and (b) the paper's
   reconfiguration scheme. The baseline is doomed; the scheme recovers.

   Run with:  dune exec examples/transient_recovery.exe *)

open Sim

let dead_config = Pid.set_of_list [ 777; 888 ]

let run_baseline () =
  Format.printf "--- baseline (epoch-ordered reconfiguration, coherent-start assumption)@.";
  let b = Baseline.Epoch_config.create ~seed:5 ~members:[ 1; 2; 3; 4; 5 ] () in
  Baseline.Epoch_config.run_rounds b 10;
  Format.printf "healthy before fault: %b@." (Baseline.Epoch_config.healthy b);
  (* one bit-flipped epoch at one node is enough *)
  Baseline.Epoch_config.corrupt b 3 ~epoch:1_000_000_000 ~config:dead_config;
  Baseline.Epoch_config.run_rounds b 200;
  Format.printf "config at node 1 after 200 rounds: %a@." Pid.pp_set
    (Baseline.Epoch_config.config_of b 1);
  Format.printf "healthy after fault: %b (and it never will be again)@.@."
    (Baseline.Epoch_config.healthy b)

let run_ssreconf () =
  Format.printf "--- self-stabilizing reconfiguration (this paper)@.";
  let sys =
    Reconfig.Stack.of_scenario ~hooks:Reconfig.Stack.unit_hooks
      (Reconfig.Scenario.make ~seed:5 ~n_bound:16 ~members:[ 1; 2; 3; 4; 5 ] ())
  in
  Reconfig.Stack.run_rounds sys 30;
  Format.printf "healthy before fault: %b@." (Reconfig.Stack.quiescent sys);
  (* the same class of fault, planted at EVERY node, plus garbage in every
     channel *)
  List.iter
    (fun (_, n) ->
      Reconfig.Recsa.corrupt n.Reconfig.Stack.sa
        ~config:(Reconfig.Config_value.Set dead_config)
        ())
    (Reconfig.Stack.live_nodes sys);
  Reconfig.Stack.corrupt_everything sys ~rng:(Rng.create 1234);
  (match Reconfig.Stack.run_until_quiescent sys ~max_rounds:1000 with
  | Some rounds -> Format.printf "recovered in %d rounds@." rounds
  | None -> Format.printf "recovery timed out?!@.");
  (match Reconfig.Stack.uniform_config sys with
  | Some c ->
    Format.printf "config after recovery: %a (all live processors: %b)@." Pid.pp_set c
      (Pid.Set.subset c (Pid.set_of_list [ 1; 2; 3; 4; 5 ]))
  | None -> Format.printf "no agreement?!@.");
  (* the trace shows the brute-force stabilization at work *)
  let tr = Sim.Engine.trace (Reconfig.Stack.engine sys) in
  Format.printf "brute-force resets observed: %d, reset completions: %d@."
    (Trace.count tr "recsa.reset")
    (Trace.count tr "recsa.brute_force")

let () =
  run_baseline ();
  run_ssreconf ()
