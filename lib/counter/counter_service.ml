open Sim
open Reconfig

type phase =
  | Idle
  | Reading of { rid : int; conf : Pid.Set.t; read_only : bool }
  | Writing of { rid : int; conf : Pid.Set.t; cnt : Counter.t }

type state = {
  mutable algo : Counter_algo.t option;
  mutable phase : phase;
  mutable responses : Counter.pair option Pid.Map.t; (* majRead answers *)
  mutable acks : Pid.Set.t; (* majWrite answers *)
  mutable want_increment : bool;
  mutable want_read : bool;
  mutable results_rev : Counter.t list;
  mutable read_results_rev : Counter.t option list;
  mutable abort_count : int;
  mutable next_rid : int;
}

type msg =
  | Gossip of { sent_max : Counter.pair option; last_sent : Counter.pair option }
  | Read_request of { rid : int }
  | Read_response of { rid : int; counter : Counter.pair option }
  | Write_request of { rid : int; counter : Counter.t }
  | Write_ack of { rid : int }
  | Abort of { rid : int }

let fresh_state _pid =
  {
    algo = None;
    phase = Idle;
    responses = Pid.Map.empty;
    acks = Pid.Set.empty;
    want_increment = false;
    want_read = false;
    results_rev = [];
    read_results_rev = [];
    abort_count = 0;
    next_rid = 0;
  }

let request_increment st = st.want_increment <- true
let request_read st = st.want_read <- true
let results st = List.rev st.results_rev
let read_results st = List.rev st.read_results_rev
let aborts st = st.abort_count
let phase_of st = st.phase

let local_max st =
  Option.bind st.algo (fun a ->
      match Counter_algo.local_max a with
      | Some p when Counter.legit p -> Some p.Counter.mct
      | Some _ | None -> None)

let label_creations st =
  match st.algo with Some a -> Counter_algo.label_creations a | None -> 0

let ensure_algo ~in_transit_bound ~exhaust_bound (view : Stack.scheme_view) st
    members =
  match st.algo with
  | Some algo when Pid.Set.equal (Counter_algo.members algo) members -> algo
  | Some algo ->
    Counter_algo.rebuild algo ~members;
    view.Stack.v_emit "counter.rebuild" "";
    algo
  | None ->
    let algo =
      Counter_algo.create ~self:view.Stack.v_self ~members ~in_transit_bound
        ~exhaust_bound
    in
    st.algo <- Some algo;
    algo

let abort_op (view : Stack.scheme_view) st =
  st.phase <- Idle;
  st.responses <- Pid.Map.empty;
  st.acks <- Pid.Set.empty;
  st.abort_count <- st.abort_count + 1;
  Telemetry.span_drop view.Stack.v_telemetry ~name:"counter.op_seconds"
    ~key:view.Stack.v_self;
  Telemetry.inc view.Stack.v_telemetry "counter.aborts"

let majority conf = Quorum.majority_threshold (Pid.Set.cardinal conf)

(* Did the read phase gather a usable maximum? Members can always settle on
   one through their own storage; non-members need a legit, non-exhausted
   counter dominating every counter returned (Algorithm 4.5). *)
let max_from_responses ~exhaust_bound st =
  let returned =
    Pid.Map.fold (fun _ p acc -> match p with Some p -> p :: acc | None -> acc)
      st.responses []
  in
  let usable =
    List.filter_map
      (fun (p : Counter.pair) ->
        if Counter.legit p && not (Counter.exhausted ~bound:exhaust_bound p.Counter.mct)
        then Some p.Counter.mct
        else None)
      returned
  in
  match Counter.max_of usable with
  | None -> None
  | Some m ->
    let dominated (p : Counter.pair) =
      (not (Counter.legit p))
      || Counter.equal p.Counter.mct m
      || Counter.precedes p.Counter.mct m
    in
    if List.for_all dominated returned then Some m else None

let start_write (view : Stack.scheme_view) st ~conf ~max_counter =
  let self = view.Stack.v_self in
  let rid = st.next_rid in
  st.next_rid <- st.next_rid + 1;
  let cnt =
    Counter.make ~lbl:max_counter.Counter.lbl ~seqn:(max_counter.Counter.seqn + 1)
      ~wid:self
  in
  st.phase <- Writing { rid; conf; cnt };
  st.acks <- Pid.Set.empty;
  let out =
    Pid.Set.fold
      (fun p acc ->
        if Pid.equal p self then acc else (p, Write_request { rid; counter = cnt }) :: acc)
      conf []
  in
  (* a member counts as its own acknowledgment and stores the counter *)
  (match st.algo with
  | Some algo when Pid.Set.mem self conf ->
    Counter_algo.merge algo ~from:self (Counter.pair_of cnt);
    st.acks <- Pid.Set.add self st.acks
  | Some _ | None -> ());
  out

let finish_write (view : Stack.scheme_view) st cnt =
  st.phase <- Idle;
  st.responses <- Pid.Map.empty;
  st.acks <- Pid.Set.empty;
  st.want_increment <- false;
  st.results_rev <- cnt :: st.results_rev;
  Telemetry.span_end view.Stack.v_telemetry ~labels:[ ("op", "increment") ]
    ~name:"counter.op_seconds" ~key:view.Stack.v_self ~now:view.Stack.v_now;
  view.Stack.v_emit "counter.increment" (Format.asprintf "%a" Counter.pp cnt)

let finish_read_only (view : Stack.scheme_view) st result =
  st.phase <- Idle;
  st.responses <- Pid.Map.empty;
  st.want_read <- false;
  st.read_results_rev <- result :: st.read_results_rev;
  Telemetry.span_end view.Stack.v_telemetry ~labels:[ ("op", "read") ]
    ~name:"counter.op_seconds" ~key:view.Stack.v_self ~now:view.Stack.v_now;
  view.Stack.v_emit "counter.read"
    (match result with
    | Some c -> Format.asprintf "%a" Counter.pp c
    | None -> "bottom")

let maybe_finish_read ~exhaust_bound (view : Stack.scheme_view) st =
  match st.phase with
  | Reading { rid = _; conf; read_only }
    when Pid.Map.cardinal st.responses >= majority conf -> (
    let self = view.Stack.v_self in
    match st.algo with
    | Some algo when Pid.Set.mem self conf ->
      (* member: fold the answers into the local storage and settle
         (Algorithm 4.4: repeat findMaxCounter until legit and not
         exhausted — our find_max_counter creates a fresh epoch when
         needed, so one call suffices) *)
      Pid.Map.iter
        (fun from p -> match p with Some p -> Counter_algo.merge algo ~from p | None -> ())
        st.responses;
      let m = Counter_algo.find_max_counter algo in
      if read_only then begin
        finish_read_only view st (Some m);
        []
      end
      else start_write view st ~conf ~max_counter:m
    | Some _ | None -> (
      match max_from_responses ~exhaust_bound st with
      | Some m ->
        if read_only then begin
          finish_read_only view st (Some m);
          []
        end
        else start_write view st ~conf ~max_counter:m
      | None ->
        if read_only then begin
          (* the paper's two-phase read returns ⊥ when no comparable
             maximum exists yet *)
          finish_read_only view st None;
          []
        end
        else begin
          (* incomparable or exhausted counters only: return ⊥ *)
          abort_op view st;
          []
        end))
  | Idle | Reading _ | Writing _ -> []

let maybe_finish_write (view : Stack.scheme_view) st =
  match st.phase with
  | Writing { rid = _; conf; cnt } when Pid.Set.cardinal st.acks >= majority conf ->
    finish_write view st cnt;
    []
  | Idle | Reading _ | Writing _ -> []

let tick ~in_transit_bound ~exhaust_bound (view : Stack.scheme_view) st =
  let self = view.Stack.v_self in
  match Stack.View.current_members view with
  | None -> (st, []) (* reconfiguration taking place *)
  | Some members ->
    let is_member = Pid.Set.mem self members in
    let out = ref [] in
    (* Algorithm 4.3: members maintain and gossip the maximal counter *)
    if is_member then begin
      let algo = ensure_algo ~in_transit_bound ~exhaust_bound view st members in
      if Counter_algo.local_max algo = None then
        ignore (Counter_algo.find_max_counter algo);
      let clean p = Option.bind p (Counter_algo.clean_pair algo) in
      Pid.Set.iter
        (fun pk ->
          if not (Pid.equal pk self) then
            out :=
              ( pk,
                Gossip
                  {
                    sent_max = clean (Counter_algo.local_max algo);
                    last_sent = clean (Counter_algo.max_of algo pk);
                  } )
              :: !out)
        members
    end;
    (* start a pending increment or read *)
    (if (st.want_increment || st.want_read) && st.phase = Idle then begin
       (* quorum round-trip timing: the span closes in finish_write /
          finish_read_only and is dropped on abort *)
       Telemetry.span_begin view.Stack.v_telemetry ~name:"counter.op_seconds"
         ~key:self ~now:view.Stack.v_now;
       let rid = st.next_rid in
       st.next_rid <- st.next_rid + 1;
       st.phase <-
         Reading
           { rid; conf = members; read_only = st.want_read && not st.want_increment };
       st.responses <- Pid.Map.empty;
       (* a member answers its own read locally *)
       (if is_member then
          match st.algo with
          | Some algo ->
            st.responses <-
              Pid.Map.add self (Counter_algo.local_max algo) st.responses
          | None -> ());
       Pid.Set.iter
         (fun p ->
           if not (Pid.equal p self) then out := (p, Read_request { rid }) :: !out)
         members
     end);
    (* retransmit in-flight requests (messages may be lost) *)
    (match st.phase with
    | Reading { rid; conf; read_only = _ } ->
      Pid.Set.iter
        (fun p ->
          if (not (Pid.equal p self)) && not (Pid.Map.mem p st.responses) then
            out := (p, Read_request { rid }) :: !out)
        conf
    | Writing { rid; conf; cnt } ->
      Pid.Set.iter
        (fun p ->
          if (not (Pid.equal p self)) && not (Pid.Set.mem p st.acks) then
            out := (p, Write_request { rid; counter = cnt }) :: !out)
        conf
    | Idle -> ());
    let more = maybe_finish_read ~exhaust_bound view st in
    let more' = maybe_finish_write view st in
    (st, !out @ more @ more')

let recv ~in_transit_bound ~exhaust_bound (view : Stack.scheme_view) ~from m st =
  let self = view.Stack.v_self in
  let members_opt = Stack.View.current_members view in
  let is_member =
    match members_opt with Some ms -> Pid.Set.mem self ms | None -> false
  in
  let reply r = (st, [ (from, r) ]) in
  match m with
  | Gossip { sent_max; last_sent } -> (
    match members_opt with
    | Some members when is_member && Pid.Set.mem from members ->
      let algo = ensure_algo ~in_transit_bound ~exhaust_bound view st members in
      let clean p = Option.bind p (Counter_algo.clean_pair algo) in
      Counter_algo.receipt_action algo ~sent_max:(clean sent_max)
        ~last_sent:(clean last_sent) ~from;
      (st, [])
    | Some _ | None -> (st, []))
  | Read_request { rid } -> (
    match members_opt with
    | Some members when is_member ->
      let algo = ensure_algo ~in_transit_bound ~exhaust_bound view st members in
      ignore (Counter_algo.find_max_counter algo);
      reply (Read_response { rid; counter = Counter_algo.local_max algo })
    | Some _ | None -> reply (Abort { rid }))
  | Write_request { rid; counter } -> (
    match members_opt with
    | Some members when is_member ->
      let algo = ensure_algo ~in_transit_bound ~exhaust_bound view st members in
      Counter_algo.merge algo ~from (Counter.pair_of counter);
      reply (Write_ack { rid })
    | Some _ | None -> reply (Abort { rid }))
  | Read_response { rid; counter } -> (
    match st.phase with
    | Reading r when r.rid = rid ->
      st.responses <- Pid.Map.add from counter st.responses;
      (st, maybe_finish_read ~exhaust_bound view st)
    | Idle | Reading _ | Writing _ -> (st, []))
  | Write_ack { rid } -> (
    match st.phase with
    | Writing w when w.rid = rid ->
      st.acks <- Pid.Set.add from st.acks;
      (st, maybe_finish_write view st)
    | Idle | Reading _ | Writing _ -> (st, []))
  | Abort { rid } -> (
    match st.phase with
    | Reading { rid = r; _ } when r = rid ->
      abort_op view st;
      (st, [])
    | Writing { rid = r; _ } when r = rid ->
      abort_op view st;
      (st, [])
    | Idle | Reading _ | Writing _ -> (st, []))

(* Arbitrary-state injection: garbage counter-pair storage plus a scrambled
   in-flight operation. Unmatched telemetry spans this leaves behind are
   counted, not fatal. *)
let corrupt rng st =
  (match st.algo with
  | Some algo ->
    let members = Pid.Set.elements (Counter_algo.members algo) in
    let garbage j =
      let lbl =
        Labels.Label.make ~creator:j ~sting:(Rng.int rng 1024)
          ~antistings:[ Rng.int rng 1024 ]
      in
      Counter.pair_of (Counter.make ~lbl ~seqn:(Rng.int rng 8) ~wid:j)
    in
    Counter_algo.corrupt algo
      ~max_entries:(List.map (fun j -> (j, garbage j)) members);
    let conf =
      match Rng.subset rng members with
      | [] -> Pid.set_of_list members
      | l -> Pid.set_of_list l
    in
    (match Rng.int rng 3 with
    | 0 -> st.phase <- Idle
    | 1 ->
      st.phase <-
        Reading { rid = Rng.int rng 1024; conf; read_only = Rng.bool rng }
    | _ ->
      let cnt =
        match garbage (List.hd members) with { Counter.mct; _ } -> mct
      in
      st.phase <- Writing { rid = Rng.int rng 1024; conf; cnt });
    st.responses <- Pid.Map.empty;
    st.acks <- Pid.set_of_list (Rng.subset rng members)
  | None -> st.phase <- Idle);
  st.want_increment <- Rng.bool rng;
  st.want_read <- Rng.bool rng;
  st.next_rid <- Rng.int rng 1024;
  st

let plugin ~in_transit_bound ~exhaust_bound =
  {
    Stack.p_init = fresh_state;
    p_tick = (fun view st -> tick ~in_transit_bound ~exhaust_bound view st);
    p_recv = (fun view ~from m st -> recv ~in_transit_bound ~exhaust_bound view ~from m st);
    p_merge = (fun ~self:_ st _ -> st);
    p_corrupt = corrupt;
  }

let hooks ~in_transit_bound ~exhaust_bound =
  {
    Stack.eval_conf = (fun ~self:_ ~trusted:_ _ -> false);
    pass_query = (fun ~self:_ ~joiner:_ -> true);
    plugin = plugin ~in_transit_bound ~exhaust_bound;
  }

let declare_metrics tele =
  Telemetry.declare_counter tele "counter.aborts";
  List.iter
    (fun op ->
      Telemetry.declare_histogram tele ~labels:[ ("op", op) ] "counter.op_seconds")
    [ "increment"; "read" ]

module Service = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "counter"
  let plugin = plugin ~in_transit_bound:8 ~exhaust_bound:(1 lsl 30)
  let hooks = hooks ~in_transit_bound:8 ~exhaust_bound:(1 lsl 30)
  let corrupt = corrupt
  let declare_metrics = declare_metrics
end
