(** Self-stabilizing counter increment — Algorithms 4.3 (maintenance),
    4.4 (member increment) and 4.5 (non-member increment), as a
    {!Reconfig.Stack} plugin.

    Configuration members gossip their maximal counter pairs and keep the
    bounded counter storage of {!Counter_algo}. Any participant increments
    the counter with a two-phase majority read / majority write against the
    configuration members; requests during a reconfiguration are answered
    with Abort and the operation returns ⊥ (here: is aborted and retried
    by the driver while the request flag stays up). *)

open Sim

type phase =
  | Idle
  | Reading of { rid : int; conf : Pid.Set.t; read_only : bool }
  | Writing of { rid : int; conf : Pid.Set.t; cnt : Counter.t }

type state

type msg =
  | Gossip of { sent_max : Counter.pair option; last_sent : Counter.pair option }
  | Read_request of { rid : int }
  | Read_response of { rid : int; counter : Counter.pair option }
  | Write_request of { rid : int; counter : Counter.t }
  | Write_ack of { rid : int }
  | Abort of { rid : int }

(** [plugin ~in_transit_bound ~exhaust_bound] — the Stack plugin. *)
val plugin :
  in_transit_bound:int -> exhaust_bound:int -> (state, msg) Reconfig.Stack.plugin

val hooks :
  in_transit_bound:int -> exhaust_bound:int -> (state, msg) Reconfig.Stack.hooks

(** {2 Client API (drive via node state)} *)

(** [request_increment st] — raise the increment flag; the plugin performs
    the two-phase operation when no reconfiguration is taking place, and
    retries after aborts until it succeeds. *)
val request_increment : state -> unit

(** [request_read st] — raise the read flag: a majority read of the
    current maximal counter without incrementing it (the first phase of
    the paper's two-phase operations, usable on its own for shared-memory
    style reads). *)
val request_read : state -> unit

(** Counters returned by completed increments at this node, oldest first. *)
val results : state -> Counter.t list

(** Results of completed read-only operations, oldest first; [None] means
    the read returned ⊥ (no comparable maximum existed yet). *)
val read_results : state -> Counter.t option list

(** Number of aborted attempts at this node. *)
val aborts : state -> int

val phase_of : state -> phase

(** The node's current belief of the maximal counter (members only). *)
val local_max : state -> Counter.t option

(** Labels created at this node by the counter machinery. *)
val label_creations : state -> int

(** {2 Fault injection and packaging} *)

(** Arbitrary-state injection (the plugin's [p_corrupt]): garbage
    counter-pair storage plus a scrambled in-flight operation. *)
val corrupt : Rng.t -> state -> state

(** Pre-register the service's telemetry families. *)
val declare_metrics : Telemetry.t -> unit

(** Default-configured instance ([in_transit_bound = 8],
    [exhaust_bound = 2{^30}]). *)
module Service :
  Reconfig.Stack.SERVICE with type state = state and type msg = msg
