open Sim

(* Counts are stored inverted: a single [epoch] advances on every arrival,
   and [last] records the epoch at which each processor was last heard.
   A processor's count — "arrivals since we last heard from it" — is then
   [epoch - last], so a heartbeat is two O(log n) map updates instead of
   rebuilding the whole counts map (the naive representation allocates
   O(n) map nodes per delivered message, which dominates the simulator's
   large-N hot path). *)
type t = {
  n_bound : int;
  theta : int;
  fd_self : Pid.t;
  mutable epoch : int;
  mutable last : int Pid.Map.t;
}

let create ~n_bound ?(theta = 4) ~self () =
  if n_bound <= 0 then invalid_arg "Theta_fd.create: n_bound";
  if theta < 2 then invalid_arg "Theta_fd.create: theta must be >= 2";
  { n_bound; theta; fd_self = self; epoch = 0; last = Pid.Map.singleton self 0 }

let self t = t.fd_self

let heartbeat t p =
  t.epoch <- t.epoch + 1;
  t.last <- Pid.Map.add p t.epoch (Pid.Map.add t.fd_self t.epoch t.last)

let forget t p = t.last <- Pid.Map.remove p t.last

(* Sort by (count, pid); walk the prefix until the gap opens. *)
let ranked t =
  Pid.Map.bindings t.last
  |> List.map (fun (p, l) -> (t.epoch - l, p))
  |> List.sort compare

let trusted_list t =
  (* The gap threshold scales with the number of known processors: between
     two of a live processor's heartbeats, roughly one message from every
     other known processor arrives, so live counts cluster below a small
     multiple of |known|; a crashed processor's count keeps growing past
     theta * (prev + |known|). *)
  let known_count = max 1 (Pid.Map.cardinal t.last) in
  let rec walk prev taken acc = function
    | [] -> List.rev acc
    | (c, p) :: rest ->
      if taken >= t.n_bound then List.rev acc
      else if c > t.theta * (prev + known_count) then List.rev acc (* the gap *)
      else walk c (taken + 1) (p :: acc) rest
  in
  match ranked t with
  | [] -> [ t.fd_self ]
  | (c0, p0) :: rest -> walk c0 1 [ p0 ] rest

let trusted t = Pid.Set.add t.fd_self (Pid.set_of_list (trusted_list t))
let estimate t = Pid.Set.cardinal (trusted t)
let count t p = Option.map (fun l -> t.epoch - l) (Pid.Map.find_opt p t.last)
let known t = Pid.Map.fold (fun p _ acc -> Pid.Set.add p acc) t.last Pid.Set.empty

let corrupt t assoc =
  t.last <-
    List.fold_left (fun m (p, c) -> Pid.Map.add p (t.epoch - c) m) Pid.Map.empty assoc;
  t.last <- Pid.Map.add t.fd_self t.epoch t.last

let pp fmt t =
  Format.fprintf fmt "FD(p%a){%a}" Pid.pp t.fd_self
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       (fun fmt (c, p) -> Format.fprintf fmt "p%a:%d" Pid.pp p c))
    (ranked t)
