open Sim

type link_profile = { fp_drop : float; fp_dup : float; fp_flip : float }

let lossy p = { fp_drop = p; fp_dup = 0.0; fp_flip = 0.0 }
let dead = lossy 1.0

type target = All | Pids of Pid.t list | Sample of int

type event =
  | Corrupt_nodes of target
  | Corrupt_channels of target
  | Degrade_links of { src : target; dst : target; profile : link_profile }
  | Restore_links of { src : target; dst : target }
  | Partition of { group : target; heal_after : int }
  | Heal
  | Crash of target
  | Join of Pid.t list

type entry = { at : int; event : event }
type t = { seed : int; entries : entry list }

(* --- building --- *)

let sort_entries entries =
  List.stable_sort (fun a b -> Int.compare a.at b.at) entries

let empty = { seed = 7; entries = [] }
let make ?(seed = 7) entries = { seed; entries = sort_entries entries }
let at at event = { at; event }
let add t ~at:r event = { t with entries = sort_entries ({ at = r; event } :: t.entries) }
let with_seed t seed = { t with seed }

let storm ~seed ~start ~rounds ~rate =
  let rng = Rng.create seed in
  let entries = ref [] in
  for r = start to start + rounds - 1 do
    if Rng.chance rng rate then
      entries := { at = r; event = Corrupt_nodes (Sample 1) } :: !entries
  done;
  List.rev !entries

(* --- observation --- *)

let kind = function
  | Corrupt_nodes _ -> "corrupt_nodes"
  | Corrupt_channels _ -> "corrupt_channels"
  | Degrade_links _ -> "degrade_links"
  | Restore_links _ -> "restore_links"
  | Partition _ -> "partition"
  | Heal -> "heal"
  | Crash _ -> "crash"
  | Join _ -> "join"

let kinds =
  [
    "corrupt_nodes";
    "corrupt_channels";
    "degrade_links";
    "restore_links";
    "partition";
    "heal";
    "crash";
    "join";
  ]

let last_round t =
  List.fold_left
    (fun acc e ->
      let last =
        match e.event with
        | Partition { heal_after; _ } -> e.at + heal_after
        | _ -> e.at
      in
      max acc last)
    (-1) t.entries

let equal a b = a = b

let pp_target fmt = function
  | All -> Format.pp_print_string fmt "all"
  | Pids l ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Pid.pp)
      l
  | Sample k -> Format.fprintf fmt "sample(%d)" k

let pp fmt t =
  Format.fprintf fmt "@[<v>plan seed=%d" t.seed;
  List.iter
    (fun e ->
      Format.fprintf fmt "@,  @@%d %s" e.at (kind e.event);
      match e.event with
      | Corrupt_nodes tg | Corrupt_channels tg | Crash tg ->
        Format.fprintf fmt " %a" pp_target tg
      | Degrade_links { src; dst; profile } ->
        Format.fprintf fmt " %a->%a drop=%g dup=%g flip=%g" pp_target src pp_target
          dst profile.fp_drop profile.fp_dup profile.fp_flip
      | Restore_links { src; dst } ->
        Format.fprintf fmt " %a->%a" pp_target src pp_target dst
      | Partition { group; heal_after } ->
        Format.fprintf fmt " %a heal_after=%d" pp_target group heal_after
      | Heal -> ()
      | Join pids -> Format.fprintf fmt " %a" pp_target (Pids pids))
    t.entries;
  Format.fprintf fmt "@]"

(* --- JSON rendering --- *)

let buf_target b = function
  | All -> Buffer.add_string b "\"all\""
  | Pids l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int p))
      l;
    Buffer.add_char b ']'
  | Sample k -> Buffer.add_string b (Printf.sprintf "{\"sample\":%d}" k)

let buf_float b f =
  (* probabilities: a fixed, round-trippable decimal rendering *)
  Buffer.add_string b (Telemetry.Export.json_float f)

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "{\"seed\":%d,\"events\":[" t.seed);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"at\":%d,\"kind\":\"%s\"" e.at (kind e.event));
      (match e.event with
      | Corrupt_nodes tg | Corrupt_channels tg | Crash tg ->
        Buffer.add_string b ",\"target\":";
        buf_target b tg
      | Degrade_links { src; dst; profile } ->
        Buffer.add_string b ",\"src\":";
        buf_target b src;
        Buffer.add_string b ",\"dst\":";
        buf_target b dst;
        Buffer.add_string b ",\"drop\":";
        buf_float b profile.fp_drop;
        Buffer.add_string b ",\"dup\":";
        buf_float b profile.fp_dup;
        Buffer.add_string b ",\"flip\":";
        buf_float b profile.fp_flip
      | Restore_links { src; dst } ->
        Buffer.add_string b ",\"src\":";
        buf_target b src;
        Buffer.add_string b ",\"dst\":";
        buf_target b dst
      | Partition { group; heal_after } ->
        Buffer.add_string b ",\"group\":";
        buf_target b group;
        Buffer.add_string b (Printf.sprintf ",\"heal_after\":%d" heal_after)
      | Heal -> ()
      | Join pids ->
        Buffer.add_string b ",\"pids\":";
        buf_target b (Pids pids));
      Buffer.add_char b '}')
    t.entries;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- a minimal JSON parser (the toolchain has no JSON library; plans only
   need objects, arrays, strings, numbers and literals) --- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "invalid \\u escape"
          in
          (* plans are ASCII; anything exotic degrades to '?' *)
          if code < 128 then Buffer.add_char b (Char.chr code)
          else Buffer.add_char b '?'
        | _ -> fail "invalid escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail (Printf.sprintf "invalid number '%s'" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jarr (elements [])
      end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- decoding a plan out of the generic tree --- *)

let pid_limit = 1 lsl Pid.key_bits

let decode (j : json) : t =
  let fail msg = raise (Parse_error msg) in
  let field obj key =
    match List.assoc_opt key obj with
    | Some v -> v
    | None -> fail (Printf.sprintf "missing field \"%s\"" key)
  in
  let as_int ctx = function
    | Jnum f when Float.is_integer f -> int_of_float f
    | _ -> fail (Printf.sprintf "%s: expected an integer" ctx)
  in
  let as_prob ctx = function
    | Jnum f when f >= 0.0 && f <= 1.0 -> f
    | _ -> fail (Printf.sprintf "%s: expected a probability in [0,1]" ctx)
  in
  let as_pid ctx v =
    let p = as_int ctx v in
    if p < 0 || p >= pid_limit then
      fail (Printf.sprintf "%s: pid %d out of range [0, 2^%d)" ctx p Pid.key_bits);
    p
  in
  let as_pids ctx = function
    | Jarr l -> List.map (as_pid ctx) l
    | _ -> fail (Printf.sprintf "%s: expected a pid array" ctx)
  in
  let as_target ctx = function
    | Jstr "all" -> All
    | Jarr _ as l -> Pids (as_pids ctx l)
    | Jobj o ->
      let k = as_int (ctx ^ ".sample") (field o "sample") in
      if k <= 0 then fail (Printf.sprintf "%s: sample size must be positive" ctx);
      Sample k
    | _ -> fail (Printf.sprintf "%s: expected \"all\", a pid array or {\"sample\":k}" ctx)
  in
  match j with
  | Jobj top ->
    let seed = as_int "seed" (field top "seed") in
    let events =
      match field top "events" with
      | Jarr l -> l
      | _ -> fail "\"events\": expected an array"
    in
    let entry = function
      | Jobj o ->
        let r = as_int "at" (field o "at") in
        if r < 0 then fail "\"at\": round must be non-negative";
        let kind =
          match field o "kind" with
          | Jstr k -> k
          | _ -> fail "\"kind\": expected a string"
        in
        let event =
          match kind with
          | "corrupt_nodes" -> Corrupt_nodes (as_target "target" (field o "target"))
          | "corrupt_channels" ->
            Corrupt_channels (as_target "target" (field o "target"))
          | "degrade_links" ->
            Degrade_links
              {
                src = as_target "src" (field o "src");
                dst = as_target "dst" (field o "dst");
                profile =
                  {
                    fp_drop = as_prob "drop" (field o "drop");
                    fp_dup = as_prob "dup" (field o "dup");
                    fp_flip = as_prob "flip" (field o "flip");
                  };
              }
          | "restore_links" ->
            Restore_links
              { src = as_target "src" (field o "src"); dst = as_target "dst" (field o "dst") }
          | "partition" ->
            let heal_after = as_int "heal_after" (field o "heal_after") in
            if heal_after < 0 then fail "\"heal_after\" must be non-negative";
            Partition { group = as_target "group" (field o "group"); heal_after }
          | "heal" -> Heal
          | "crash" -> Crash (as_target "target" (field o "target"))
          | "join" -> Join (as_pids "pids" (field o "pids"))
          | k -> fail (Printf.sprintf "unknown event kind \"%s\"" k)
        in
        { at = r; event }
      | _ -> fail "\"events\": expected objects"
    in
    make ~seed (List.map entry events)
  | _ -> fail "expected a top-level object"

let of_json s =
  match decode (parse_json s) with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> of_json contents
  | exception Sys_error msg -> Error msg
