(** Declarative fault plans — the systematic adversary.

    The paper's convergence theorems quantify over executions that start in
    an {e arbitrary} state (Definition 3.1) and then suffer benign failures:
    transient state corruption, fair-lossy links, crashes, joins, and
    temporary partitions. A {!t} is a seeded, serializable schedule of
    exactly those fault classes, expressed against {e rounds} (asynchronous
    rounds on the simulator, loop rounds on the real-time runtime) so the
    same plan drives both runtimes. Interpretation is the job of
    {!Injector}; this module is pure data — building, validating and
    (de)serializing plans.

    Determinism: a plan carries its own [seed]. Every random choice made
    while {e interpreting} the plan (picking [Sample] victims, drawing
    garbage state) flows from that seed alone, never from the runtime's
    schedule RNG — so replaying one serialized plan on the simulator twice
    produces byte-identical telemetry and traces. *)

open Sim

(** Per-directed-link fault rates, overriding the engine's global channel
    model while installed. [flip] is the probability that a delivered
    packet is mangled ("bit-flipped" — the runtime rewrites it into a stale
    protocol packet, since a typed message has no bit representation to
    flip). *)
type link_profile = {
  fp_drop : float;  (** per-delivery loss probability *)
  fp_dup : float;  (** per-send duplication probability *)
  fp_flip : float;  (** per-delivery mangling probability *)
}

val lossy : float -> link_profile
(** [lossy p] — a profile that only drops, with probability [p]. *)

val dead : link_profile
(** Drops everything: [fp_drop = 1.0]. *)

(** Victim selection, resolved against the live set when the event fires:
    [All] live nodes, an explicit pid list, or [Sample k] live nodes drawn
    from the plan's RNG. *)
type target = All | Pids of Pid.t list | Sample of int

type event =
  | Corrupt_nodes of target
      (** transient fault: rewrite each victim's protocol {e and}
          application state with seeded garbage (the per-module
          [corrupt] hooks) *)
  | Corrupt_channels of target
      (** fill every directed channel among the victims with stale
          protocol packets (simulator only; mailbox runtimes have no
          channel state to corrupt) *)
  | Degrade_links of { src : target; dst : target; profile : link_profile }
      (** install [profile] on every directed link src→dst *)
  | Restore_links of { src : target; dst : target }
      (** remove any installed profile on those links *)
  | Partition of { group : target; heal_after : int }
      (** cut [group] off from the rest, both directions; automatically
          healed [heal_after] rounds later *)
  | Heal  (** remove every block and every link profile *)
  | Crash of target  (** fail-stop each victim *)
  | Join of Pid.t list  (** membership churn: introduce fresh joiners *)

type entry = { at : int; event : event }
(** [at] is the round (relative to the run's start) the event fires in. *)

type t = { seed : int; entries : entry list }
(** Entries are kept sorted by [at] (stable for equal rounds). *)

(** {2 Building} *)

val empty : t

val make : ?seed:int -> entry list -> t
(** [make entries] sorts [entries] by round (stable). [seed] defaults
    to 7. *)

val at : int -> event -> entry

val add : t -> at:int -> event -> t
(** Functional insert, keeping the round order. *)

val with_seed : t -> int -> t

val storm : seed:int -> start:int -> rounds:int -> rate:float -> entry list
(** [storm ~seed ~start ~rounds ~rate] — a corruption storm: for each of
    the [rounds] rounds beginning at [start], with probability [rate] one
    live node (freshly sampled) suffers a transient fault. The Bernoulli
    draws are made here, from [seed], so the resulting entry list is plain
    data. *)

(** {2 Observation} *)

val kind : event -> string
(** Stable lower-snake identifier ("corrupt_nodes", "partition", ...);
    used as the [kind] label on [fault.injected] counters and as the JSON
    discriminator. *)

val kinds : string list
(** Every identifier {!kind} can return, in a fixed order. *)

val last_round : t -> int
(** The last round the plan acts in, including scheduled partition heals;
    [-1] for the empty plan. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Serialization}

    A plan is one JSON object:
    [{"seed":7,"events":[{"at":3,"kind":"crash","target":[2]},...]}].
    Targets render as ["all"], an array of pids, or [{"sample":k}].
    [of_json] accepts anything [to_json] produces and validates ranges
    (probabilities in [0,1], non-negative rounds, pids within the
    engine's pid range). *)

val to_json : t -> string

val of_json : string -> (t, string) result
(** [Error msg] carries a human-readable parse/validation error. *)

val of_file : string -> (t, string) result
