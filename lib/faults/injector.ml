open Sim

type ops = {
  o_live : unit -> Pid.t list;
  o_pids : unit -> Pid.t list;
  o_rounds : unit -> int;
  o_crash : Pid.t -> unit;
  o_join : Pid.t -> unit;
  o_corrupt_node : Rng.t -> Pid.t -> unit;
  o_corrupt_link : (Rng.t -> src:Pid.t -> dst:Pid.t -> unit) option;
  o_set_link_profile :
    (src:Pid.t -> dst:Pid.t -> Fault_plan.link_profile option -> unit) option;
  o_partition : Pid.Set.t -> unit;
  o_heal : unit -> unit;
  o_telemetry : Telemetry.t;
  o_emit : tag:string -> detail:string -> unit;
}

type t = {
  ops : ops;
  rng : Rng.t;
  mutable pending : Fault_plan.entry list;  (* sorted by round *)
  mutable heals : int list;  (* scheduled partition heals, sorted *)
  mutable injected : int;
  mutable skipped : int;
}

let declare_metrics tele =
  List.iter
    (fun k -> Telemetry.declare_counter tele ~labels:[ ("kind", k) ] "fault.injected")
    (Fault_plan.kinds @ [ "skipped" ])

let create ~plan ~ops =
  declare_metrics ops.o_telemetry;
  {
    ops;
    rng = Rng.create plan.Fault_plan.seed;
    pending = plan.Fault_plan.entries;
    heals = [];
    injected = 0;
    skipped = 0;
  }

let finished t = t.pending = [] && t.heals = []
let injected t = t.injected
let skipped t = t.skipped

let pid_list_to_string pids =
  String.concat "," (List.map Pid.to_string pids)

(* [Sample k] resolves against the live set through the plan RNG; the live
   set itself is fully determined by the plan (crashes and joins are plan
   events), so the same plan picks the same victims on every runtime. *)
let resolve t target =
  match target with
  | Fault_plan.All -> t.ops.o_live ()
  | Fault_plan.Pids l -> l
  | Fault_plan.Sample k ->
    let live = t.ops.o_live () in
    let shuffled = Rng.shuffle t.rng live in
    List.filteri (fun i _ -> i < k) shuffled |> List.sort Pid.compare

let note t kind detail =
  t.injected <- t.injected + 1;
  Telemetry.inc t.ops.o_telemetry ~labels:[ ("kind", kind) ] "fault.injected";
  t.ops.o_emit ~tag:("fault." ^ kind) ~detail

let skip t kind =
  t.skipped <- t.skipped + 1;
  Telemetry.inc t.ops.o_telemetry ~labels:[ ("kind", "skipped") ] "fault.injected";
  t.ops.o_emit ~tag:"fault.skipped" ~detail:kind

let live_filter t pids =
  let live = Pid.set_of_list (t.ops.o_live ()) in
  List.filter (fun p -> Pid.Set.mem p live) pids

let directed_pairs srcs dsts =
  List.concat_map
    (fun s -> List.filter_map (fun d -> if Pid.equal s d then None else Some (s, d)) dsts)
    srcs

let apply t (e : Fault_plan.entry) =
  let kind = Fault_plan.kind e.event in
  match e.event with
  | Fault_plan.Corrupt_nodes tg ->
    let victims = live_filter t (resolve t tg) in
    List.iter (fun p -> t.ops.o_corrupt_node t.rng p) victims;
    note t kind (pid_list_to_string victims)
  | Fault_plan.Corrupt_channels tg -> (
    match t.ops.o_corrupt_link with
    | None -> skip t kind
    | Some corrupt_link ->
      let victims = live_filter t (resolve t tg) in
      List.iter
        (fun (src, dst) -> corrupt_link t.rng ~src ~dst)
        (directed_pairs victims victims);
      note t kind (pid_list_to_string victims))
  | Fault_plan.Degrade_links { src; dst; profile } -> (
    match t.ops.o_set_link_profile with
    | None -> skip t kind
    | Some set_profile ->
      let srcs = resolve t src and dsts = resolve t dst in
      List.iter
        (fun (src, dst) -> set_profile ~src ~dst (Some profile))
        (directed_pairs srcs dsts);
      note t kind
        (Printf.sprintf "%s->%s drop=%g dup=%g flip=%g" (pid_list_to_string srcs)
           (pid_list_to_string dsts) profile.Fault_plan.fp_drop
           profile.Fault_plan.fp_dup profile.Fault_plan.fp_flip))
  | Fault_plan.Restore_links { src; dst } -> (
    match t.ops.o_set_link_profile with
    | None -> skip t kind
    | Some set_profile ->
      let srcs = resolve t src and dsts = resolve t dst in
      List.iter
        (fun (src, dst) -> set_profile ~src ~dst None)
        (directed_pairs srcs dsts);
      note t kind
        (Printf.sprintf "%s->%s" (pid_list_to_string srcs) (pid_list_to_string dsts)))
  | Fault_plan.Partition { group; heal_after } ->
    let group_set = Pid.set_of_list (resolve t group) in
    t.ops.o_partition group_set;
    t.heals <- List.sort Int.compare ((e.at + heal_after) :: t.heals);
    note t kind (Format.asprintf "%a heal_after=%d" Pid.pp_set group_set heal_after)
  | Fault_plan.Heal ->
    t.ops.o_heal ();
    note t kind ""
  | Fault_plan.Crash tg ->
    let victims = live_filter t (resolve t tg) in
    List.iter t.ops.o_crash victims;
    note t kind (pid_list_to_string victims)
  | Fault_plan.Join pids ->
    let known = Pid.set_of_list (t.ops.o_pids ()) in
    let fresh = List.filter (fun p -> not (Pid.Set.mem p known)) pids in
    List.iter t.ops.o_join fresh;
    note t kind (pid_list_to_string fresh)

let step t =
  let r = t.ops.o_rounds () in
  let rec entries () =
    match t.pending with
    | e :: rest when e.Fault_plan.at <= r ->
      t.pending <- rest;
      apply t e;
      entries ()
    | _ -> ()
  in
  entries ();
  let rec heals () =
    match t.heals with
    | h :: rest when h <= r ->
      t.heals <- rest;
      t.ops.o_heal ();
      note t "heal" "partition healed";
      heals ()
    | _ -> ()
  in
  heals ()
