(** Fault-plan interpretation against any runtime.

    The injector never touches a runtime directly: it acts through an
    {!ops} capability record the runtime's harness supplies ([Stack] for
    the simulator, [Stack_loop] for the real-time loop). A capability a
    runtime cannot honor (e.g. channel corruption on a mailbox runtime)
    is supplied as a no-op and the event is counted as skipped — the plan
    still replays, the adversary is just weaker there (see DESIGN.md
    §11 for what the adversary deliberately cannot do).

    All interpretation randomness flows from the plan's own seed
    ({!Fault_plan.t}), so a plan resolves to the same victims and the
    same garbage on every runtime and every replay. *)

open Sim

type ops = {
  o_live : unit -> Pid.t list;  (** live pids, ascending *)
  o_pids : unit -> Pid.t list;  (** all pids ever seen, ascending *)
  o_rounds : unit -> int;  (** the runtime's round counter *)
  o_crash : Pid.t -> unit;
  o_join : Pid.t -> unit;  (** introduce a joiner *)
  o_corrupt_node : Rng.t -> Pid.t -> unit;
      (** rewrite one node's protocol + application state with garbage
          drawn from the given (plan-seeded) RNG *)
  o_corrupt_link : (Rng.t -> src:Pid.t -> dst:Pid.t -> unit) option;
      (** fill one directed channel with stale packets; [None] when the
          runtime has no channel state *)
  o_set_link_profile :
    (src:Pid.t -> dst:Pid.t -> Fault_plan.link_profile option -> unit) option;
      (** install/remove a per-link fault profile; [None] when
          unsupported *)
  o_partition : Pid.Set.t -> unit;
  o_heal : unit -> unit;  (** remove every block and link profile *)
  o_telemetry : Telemetry.t;
  o_emit : tag:string -> detail:string -> unit;  (** trace stamping *)
}

type t

val create : plan:Fault_plan.t -> ops:ops -> t
(** The injector starts with every plan entry pending and an RNG seeded
    from [plan.seed]. {!declare_metrics} is applied to [ops.o_telemetry]
    so the [fault.injected] schema is stable even for plans that never
    fire. *)

val step : t -> unit
(** Apply every pending entry (and scheduled partition heal) whose round
    has been reached, in plan order. Call once per round boundary. *)

val finished : t -> bool
(** No pending entries and no scheduled heals remain. *)

val injected : t -> int
(** Number of events applied so far (scheduled heals included). *)

val skipped : t -> int
(** Events dropped because the runtime lacked the capability. *)

val declare_metrics : Telemetry.t -> unit
(** Pre-register [fault.injected{kind}] for every {!Fault_plan.kinds}
    entry plus the [skipped] pseudo-kind. *)
