open Sim
open Reconfig

let members_of n = List.init n (fun i -> i + 1)

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let n_of (p : Experiments.params) =
  match List.rev p.Experiments.sizes with last :: _ -> last | [] -> 8

(* Like the experiment tables, each (variant x seed) sweep cell is an
   independent simulation submitted to the domain pool; see
   Experiments for the determinism contract. *)
let product xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let per_seed pool (p : Experiments.params) f keys =
  let nseeds = List.length p.Experiments.seeds in
  let cells = product keys p.Experiments.seeds in
  let results = Pool.map pool (fun (key, seed) -> f key seed) cells in
  let rec chunk = function
    | [] -> []
    | xs ->
      let rec split i acc rest =
        if i = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tl -> split (i - 1) (x :: acc) tl
      in
      let g, rest = split nseeds [] xs in
      g :: chunk rest
  in
  chunk results

(* ------------------------------------------------------------------ *)
(* A1: failure-detector gap factor.                                     *)
(* ------------------------------------------------------------------ *)

let a1_theta_sweep ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let n = n_of p in
  let run theta seed =
    let sys =
      Stack.of_scenario ~hooks:Stack.unit_hooks
        (Scenario.make ~seed ~theta ~n_bound:(2 * n) ~members:(members_of n) ())
    in
    Stack.run_rounds sys 60;
    let spurious = Stack.total_resets sys in
    (* crash one member; how long until every survivor's detector
       suspects it? *)
    Stack.crash sys 1;
    let start = Engine.rounds (Stack.engine sys) in
    let suspected t =
      List.for_all
        (fun (_, node) ->
          not (Pid.Set.mem 1 (Detector.Theta_fd.trusted node.Stack.fd)))
        (Stack.live_nodes t)
    in
    let ok = Stack.run_until sys ~max_steps:2_000_000 suspected in
    let detection =
      if ok then float_of_int (Engine.rounds (Stack.engine sys) - start)
      else nan
    in
    (float_of_int spurious, detection)
  in
  let thetas = [ 2; 3; 4; 8; 16 ] in
  let rows =
    List.map2
      (fun theta results ->
        [
          Table.cell_int theta;
          Table.cell_float (mean (List.map fst results));
          Table.cell_float (mean (List.map snd results));
        ])
      thetas
      (per_seed pool p run thetas)
  in
  Table.make ~id:"A1" ~title:"failure-detector gap factor Θ"
    ~claim:
      "design choice: Θ trades false suspicion (spurious resets in a \
       fault-free run) against crash-detection latency"
    ~header:[ "theta"; "spurious resets (60 fault-free rounds)"; "crash detection rounds" ]
    rows

(* ------------------------------------------------------------------ *)
(* A2: packet loss vs delicate replacement latency.                     *)
(* ------------------------------------------------------------------ *)

let a2_loss_sweep ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let n = n_of p in
  let target = Pid.set_of_list (members_of (n - 1)) in
  let run loss seed =
    let sys =
      Stack.of_scenario ~hooks:Stack.unit_hooks
        (Scenario.make ~seed ~loss ~n_bound:(2 * n) ~members:(members_of n) ())
    in
    Stack.run_rounds sys 30;
    let rec propose k =
      if k = 0 then false
      else if Stack.estab sys 1 target then true
      else begin
        Stack.run_rounds sys 2;
        propose (k - 1)
      end
    in
    if not (propose 100) then None
    else begin
      let start = Engine.rounds (Stack.engine sys) in
      let done_ t =
        Stack.quiescent t
        &&
        match Stack.uniform_config t with
        | Some c -> Pid.Set.equal c target
        | None -> false
      in
      if Stack.run_until sys ~max_steps:4_000_000 done_ then
        Some (float_of_int (Engine.rounds (Stack.engine sys) - start))
      else None
    end
  in
  let losses = [ 0.0; 0.02; 0.10; 0.25 ] in
  let rows =
    List.map2
      (fun loss results ->
        let completed = List.filter_map Fun.id results in
        [
          Printf.sprintf "%.0f%%" (loss *. 100.0);
          Table.cell_int (List.length completed);
          Table.cell_float (mean completed);
        ])
      losses
      (per_seed pool p run losses)
  in
  Table.make ~id:"A2" ~title:"packet loss vs delicate replacement latency"
    ~claim:
      "design choice: the unison echo/allSeen handshake retransmits state \
       every step, so replacement latency should degrade gracefully with \
       loss"
    ~header:[ "loss"; "completed"; "rounds(mean)" ]
    rows

(* ------------------------------------------------------------------ *)
(* A3: channel capacity vs recovery cost.                               *)
(* ------------------------------------------------------------------ *)

let a3_capacity_sweep ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let n = n_of p in
  let run capacity seed =
    let sys =
      Stack.of_scenario ~hooks:Stack.unit_hooks
        (Scenario.make ~seed ~capacity ~n_bound:(2 * n) ~members:(members_of n) ())
    in
    Stack.run_rounds sys 25;
    Stack.corrupt_everything sys ~rng:(Rng.create (seed * 31));
    Option.map float_of_int
      (Stack.run_until_quiescent sys ~max_rounds:p.Experiments.max_rounds)
  in
  let caps = [ 2; 4; 8; 16; 32 ] in
  let rows =
    List.map2
      (fun capacity results ->
        let recovered = List.filter_map Fun.id results in
        [
          Table.cell_int capacity;
          Table.cell_int (List.length recovered);
          Table.cell_float (mean recovered);
        ])
      caps
      (per_seed pool p run caps)
  in
  Table.make ~id:"A3" ~title:"channel capacity vs recovery from arbitrary state"
    ~claim:
      "design choice: bigger channels can carry more stale packets after a \
       transient fault; recovery cost should grow only mildly with cap"
    ~header:[ "cap"; "recovered"; "rounds(mean)" ]
    rows

(* ------------------------------------------------------------------ *)
(* A4: brute force vs delicate replacement.                             *)
(* ------------------------------------------------------------------ *)

let a4_brute_vs_delicate ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let run (n, technique) seed =
    match technique with
    | `Delicate ->
      let sys =
        Stack.of_scenario ~hooks:Stack.unit_hooks
          (Scenario.make ~seed ~n_bound:(2 * n) ~members:(members_of n) ())
      in
      Stack.run_rounds sys 30;
      let target = Pid.set_of_list (members_of (n - 1)) in
      let rec propose k =
        if k = 0 then false
        else if Stack.estab sys 1 target then true
        else (Stack.run_rounds sys 2; propose (k - 1))
      in
      if not (propose 100) then None
      else begin
        let start = Engine.rounds (Stack.engine sys) in
        if
          Stack.run_until sys ~max_steps:4_000_000 (fun t ->
              Stack.quiescent t
              && Option.equal Pid.Set.equal (Stack.uniform_config t) (Some target))
        then Some (float_of_int (Engine.rounds (Stack.engine sys) - start))
        else None
      end
    | `Brute ->
      let sys =
        Stack.of_scenario ~hooks:Stack.unit_hooks
          (Scenario.make ~seed ~n_bound:(2 * n) ~members:(members_of n) ())
      in
      Stack.run_rounds sys 30;
      (* force a reset by planting a conflicting configuration *)
      (match Stack.live_nodes sys with
      | (_, node) :: _ ->
        Recsa.corrupt node.Stack.sa
          ~config:(Config_value.Set (Pid.set_of_list [ 1; 2 ]))
          ()
      | [] -> ());
      Option.map float_of_int
        (Stack.run_until_quiescent sys ~max_rounds:p.Experiments.max_rounds)
  in
  let keys = product p.Experiments.sizes [ `Delicate; `Brute ] in
  let rows =
    List.map2
      (fun (n, technique) results ->
        let completed = List.filter_map Fun.id results in
        [
          Table.cell_int n;
          (match technique with
          | `Delicate -> "delicate (estab)"
          | `Brute -> "brute force (conflict reset)");
          Table.cell_int (List.length completed);
          Table.cell_float (mean completed);
        ])
      keys
      (per_seed pool p run keys)
  in
  Table.make ~id:"A4" ~title:"brute-force reset vs delicate replacement"
    ~claim:
      "design choice: the paper keeps both techniques; delicate replacement \
       avoids resetting application state but needs the three-phase unison \
       handshake, so it is slower in rounds than a conflict-driven reset"
    ~header:[ "N"; "technique"; "completed"; "rounds(mean)" ]
    rows

let all ?jobs p =
  [
    a1_theta_sweep ?jobs p;
    a2_loss_sweep ?jobs p;
    a3_capacity_sweep ?jobs p;
    a4_brute_vs_delicate ?jobs p;
  ]

let registry =
  [
    ("A1", a1_theta_sweep);
    ("A2", a2_loss_sweep);
    ("A3", a3_capacity_sweep);
    ("A4", a4_brute_vs_delicate);
  ]
