(** Ablation studies for the design choices DESIGN.md calls out.

    These are not paper claims; they quantify the sensitivity of the
    implementation to its own knobs:

    - A1: the (N,Θ)-failure detector's gap factor Θ — too small and live
      processors are falsely suspected (spurious resets), too large and
      crash detection slows recMA down.
    - A2: packet loss rate vs. delicate-replacement latency (the unison
      handshake needs several round trips, each sensitive to loss).
    - A3: channel capacity [cap] vs. recovery cost (more stale packets can
      survive a transient fault in bigger channels).
    - A4: brute-force reset vs. delicate replacement — the cost gap that
      justifies having both techniques.

    As in {!Experiments}, [?jobs] runs the sweep cells on a domain pool
    with deterministic (byte-identical) table output for any job count. *)

val a1_theta_sweep : ?jobs:int -> Experiments.params -> Table.t
val a2_loss_sweep : ?jobs:int -> Experiments.params -> Table.t
val a3_capacity_sweep : ?jobs:int -> Experiments.params -> Table.t
val a4_brute_vs_delicate : ?jobs:int -> Experiments.params -> Table.t

val all : ?jobs:int -> Experiments.params -> Table.t list

(** The (id, ablation) pairs behind {!all}, in order. *)
val registry : (string * (?jobs:int -> Experiments.params -> Table.t)) list
