open Sim
open Reconfig

type params = { sizes : int list; seeds : int list; max_rounds : int }

let default_params = { sizes = [ 4; 6; 8; 12 ]; seeds = [ 1; 2; 3 ]; max_rounds = 600 }
let quick_params = { sizes = [ 4; 6 ]; seeds = [ 1 ]; max_rounds = 400 }

let members_of n = List.init n (fun i -> i + 1)

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let fmax l = List.fold_left Float.max neg_infinity l
let fmin l = List.fold_left Float.min infinity l

(* Exact nearest-rank percentile over a (small) sample list. *)
let percentile l p =
  match l with
  | [] -> nan
  | l ->
    let a = Array.of_list l in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

(* The channel capacity used throughout (the paper's cap). *)
let cap = 8

let warm_system_with ~hooks ~seed n =
  let sys =
    Stack.of_scenario ~hooks
      (Scenario.make ~seed ~capacity:cap ~n_bound:(2 * n) ~members:(members_of n) ())
  in
  Stack.run_rounds sys 25;
  sys

let warm_system ?hooks ~seed n =
  let hooks = match hooks with Some h -> h | None -> Stack.unit_hooks in
  warm_system_with ~hooks ~seed n

(* ------------------------------------------------------------------ *)
(* Cell scheduling.                                                    *)
(*                                                                     *)
(* Every table is computed as a flat list of independent               *)
(* (variant x seed) simulation cells; each cell is a closure submitted *)
(* to a domain pool and the results are reassembled in submission      *)
(* order, so the rendered table is byte-identical for any job count.   *)
(* Cells must not share mutable state: each builds its own engine,     *)
(* RNG, trace and metrics.                                             *)
(* ------------------------------------------------------------------ *)

let product xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let chunk k xs =
  if k <= 0 then invalid_arg "Experiments.chunk: group size must be positive";
  let rec split i acc rest =
    if i = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> (List.rev acc, [])
      | x :: tl -> split (i - 1) (x :: acc) tl
  in
  let rec go = function
    | [] -> []
    | xs ->
      let g, rest = split k [] xs in
      g :: go rest
  in
  go xs

(* [per_seed pool p f keys] runs [f key seed] for every (key, seed) cell on
   the pool and returns one result group per key, seeds in order. *)
let per_seed pool p f keys =
  Pool.map pool (fun (key, seed) -> f key seed) (product keys p.seeds)
  |> chunk (List.length p.seeds)

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 3.15: convergence from arbitrary states.               *)
(* ------------------------------------------------------------------ *)

let e1_convergence ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let run n seed =
    let sys = warm_system ~seed n in
    Stack.corrupt_everything sys ~rng:(Rng.create (seed * 7919));
    match Stack.run_until_quiescent sys ~max_rounds:p.max_rounds with
    | Some rounds -> (true, float_of_int rounds, Stack.total_resets sys)
    | None -> (false, float_of_int p.max_rounds, Stack.total_resets sys)
  in
  let rows =
    List.map2
      (fun n results ->
        let rounds = List.map (fun (_, r, _) -> r) results in
        let recovered = List.for_all (fun (ok, _, _) -> ok) results in
        let resets = List.fold_left (fun a (_, _, r) -> a + r) 0 results in
        [
          Table.cell_int n;
          Table.cell_bool recovered;
          Table.cell_float (mean rounds);
          Table.cell_float (percentile rounds 0.5);
          Table.cell_float (percentile rounds 0.95);
          Table.cell_float (fmin rounds);
          Table.cell_float (fmax rounds);
          Table.cell_int resets;
        ])
      p.sizes
      (per_seed pool p run p.sizes)
  in
  Table.make ~id:"E1" ~title:"recSA convergence from arbitrary states"
    ~claim:
      "Theorem 3.15: from any state (corrupted nodes AND channels), the \
       system reaches a conflict-free uniform configuration"
    ~header:
      [
        "N";
        "recovered";
        "rounds(mean)";
        "rounds(p50)";
        "rounds(p95)";
        "rounds(min)";
        "rounds(max)";
        "resets";
      ]
    ~notes:
      [
        "every node state and every channel is overwritten with random garbage \
         before measuring";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 3.16 / Figure 2: delicate replacement.                 *)
(* ------------------------------------------------------------------ *)

let e2_delicate_replacement ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let n = match List.rev p.sizes with last :: _ -> last | [] -> 8 in
  let members = Pid.set_of_list (members_of n) in
  let cells =
    List.concat_map
      (fun k ->
        List.filter_map
          (fun seed ->
            if seed <> List.hd p.seeds && k > 1 then None else Some (k, seed))
          p.seeds)
      [ 1; 2; n / 2; n - 1 ]
  in
  let cell (k, seed) =
    let sys = warm_system ~seed n in
    (* k concurrent proposals, each dropping a different member *)
    let proposals = List.init k (fun i -> Pid.Set.remove (i + 1) members) in
    let accepted = List.mapi (fun i set -> Stack.estab sys (i + 1) set) proposals in
    let start = Engine.rounds (Stack.engine sys) in
    let settled t =
      Stack.quiescent t
      &&
      match Stack.uniform_config t with
      | Some c -> List.exists (Pid.Set.equal c) proposals
      | None -> false
    in
    let ok = Stack.run_until sys ~max_steps:2_000_000 settled in
    let rounds = Engine.rounds (Stack.engine sys) - start in
    let tr = Engine.trace (Stack.engine sys) in
    [
      Table.cell_int k;
      Table.cell_int (List.length (List.filter (fun x -> x) accepted));
      Table.cell_bool ok;
      Table.cell_int rounds;
      Table.cell_int (Trace.count tr "recsa.phase2");
      Table.cell_int (Trace.count tr "recsa.phase0");
      Table.cell_int (Stack.total_resets sys);
    ]
  in
  let rows = Pool.map pool cell cells in
  Table.make ~id:"E2" ~title:"delicate replacement selects exactly one proposal"
    ~claim:
      "Theorem 3.16 / Figure 2: concurrent estab() proposals resolve to a \
       single installed configuration via phases 0->1->2->0, with no \
       brute-force reset"
    ~header:
      [ "proposals"; "accepted"; "one winner installed"; "rounds"; "phase2 events"; "phase0 events"; "resets" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — Lemma 3.18: bounded spurious recMA triggerings.                *)
(* ------------------------------------------------------------------ *)

let e3_recma_trigger_bound ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let run n seed =
    let sys = warm_system ~seed n in
    (* corrupt only the recMA flags: every node believes everyone
       reported noMaj and needReconf *)
    let all = members_of n in
    List.iter
      (fun (_, node) ->
        let flags = List.map (fun q -> (q, true)) all in
        Recma.corrupt node.Stack.ma ~no_maj:flags ~need_reconf:flags)
      (Stack.live_nodes sys);
    Stack.run_rounds sys 100;
    float_of_int
      (List.fold_left
         (fun acc (_, node) -> acc + Recma.attempt_count node.Stack.ma)
         0 (Stack.live_nodes sys))
  in
  let rows =
    List.map2
      (fun n attempts ->
        let bound = n * n * cap in
        [
          Table.cell_int n;
          Table.cell_float (mean attempts);
          Table.cell_float (fmax attempts);
          Table.cell_int bound;
          Table.cell_bool (fmax attempts <= float_of_int bound);
        ])
      p.sizes
      (per_seed pool p run p.sizes)
  in
  Table.make ~id:"E3" ~title:"spurious recMA triggerings are bounded"
    ~claim:
      "Lemma 3.18: stale noMaj/needReconf information causes at most \
       O(N^2 * cap) reconfiguration triggerings"
    ~header:[ "N"; "attempts(mean)"; "attempts(max)"; "bound N^2*cap"; "within bound" ]
    ~notes:[ "all flags at every node are forced to true before measuring" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4 — Lemma 3.20: recMA liveness on collapse / prediction.           *)
(* ------------------------------------------------------------------ *)

let e4_recma_liveness ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let run_case (n, kind) seed =
    let hooks =
      match kind with
      | `Collapse -> Stack.unit_hooks
      | `Prediction ->
        { Stack.unit_hooks with eval_conf = Stack.default_eval_conf () }
    in
    let sys = warm_system_with ~hooks ~seed n in
    let victims =
      match kind with
      | `Collapse ->
        (* destroy the majority but leave at least two survivors: the core
           condition |core()| > 1 (line 12) needs a second witness *)
        min (n - 2) ((n / 2) + 1)
      | `Prediction ->
        (* kill ⌈n/4⌉ so the example predictor (reconfigure when 1/4 of the
           members look failed) fires while the majority survives *)
        (n + 3) / 4
    in
    List.iter (fun p -> Stack.crash sys p) (List.init victims (fun i -> i + 1));
    let survivors =
      Pid.set_of_list (List.init (n - victims) (fun i -> victims + i + 1))
    in
    let start = Engine.rounds (Stack.engine sys) in
    let ok =
      Stack.run_until sys ~max_steps:3_000_000 (fun t ->
          match Stack.uniform_config t with
          | Some c -> Pid.Set.subset c survivors && Stack.quiescent t
          | None -> false)
    in
    (ok, Engine.rounds (Stack.engine sys) - start, Stack.total_triggers sys)
  in
  let keys = product p.sizes [ `Collapse; `Prediction ] in
  let rows =
    List.map2
      (fun (n, kind) results ->
        let label =
          match kind with
          | `Collapse -> "majority collapse"
          | `Prediction -> "prediction (1/4 crash)"
        in
        [
          Table.cell_int n;
          label;
          Table.cell_bool (List.for_all (fun (ok, _, _) -> ok) results);
          Table.cell_float (mean (List.map (fun (_, r, _) -> float_of_int r) results));
          Table.cell_int (List.fold_left (fun a (_, _, t) -> a + t) 0 results);
        ])
      keys
      (per_seed pool p run_case keys)
  in
  Table.make ~id:"E4" ~title:"recMA reconfigures on collapse and on prediction"
    ~claim:
      "Lemma 3.20: if a majority of members collapses, or a majority's \
       prediction function asks for it, a reconfiguration to a live \
       configuration takes place"
    ~header:[ "N"; "scenario"; "reconfigured"; "rounds(mean)"; "triggers" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 3.26: joining.                                         *)
(* ------------------------------------------------------------------ *)

let e5_joining ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let run (n, joiners) seed =
    let sys = warm_system ~seed n in
    let ids = List.init joiners (fun i -> 100 + i) in
    List.iter (fun j -> Stack.add_joiner sys j) ids;
    let start = Engine.rounds (Stack.engine sys) in
    let ok =
      Stack.run_until sys ~max_steps:2_000_000 (fun t ->
          List.for_all
            (fun j -> Recsa.is_participant (Stack.node t j).Stack.sa)
            ids)
    in
    (ok, float_of_int (Engine.rounds (Stack.engine sys) - start))
  in
  let keys = product p.sizes [ 1; 3 ] in
  let rows =
    List.map2
      (fun (n, joiners) results ->
        [
          Table.cell_int n;
          Table.cell_int joiners;
          Table.cell_bool (List.for_all fst results);
          Table.cell_float (mean (List.map snd results));
        ])
      keys
      (per_seed pool p run keys)
  in
  Table.make ~id:"E5" ~title:"joining latency"
    ~claim:
      "Theorem 3.26: joiners gathering passes from a majority of members \
       become participants; they cannot join mid-reconfiguration"
    ~header:[ "N"; "joiners"; "all joined"; "rounds(mean)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 — Theorem 4.4: label creations.                                  *)
(* ------------------------------------------------------------------ *)

let e6_label_creations ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let m_bound = 8 in
  let run n seed =
    let hooks = Labels.Label_service.hooks ~in_transit_bound:m_bound in
    let sys = warm_system_with ~hooks ~seed n in
    let agreed t = Labels.Label_service.agreed_max t <> None in
    ignore (Stack.run_until sys ~max_steps:2_000_000 agreed);
    (* (a) arbitrary label state: plant incomparable same-creator
       labels everywhere *)
    List.iter
      (fun (pid, node) ->
        match node.Stack.app.Labels.Label_service.algo with
        | Some algo ->
          let garbage j =
            Labels.Label.pair_of
              (Labels.Label.make ~creator:j ~sting:(1000 + pid)
                 ~antistings:[ 2000 + pid ])
          in
          Labels.Label_algo.corrupt algo
            ~max_entries:(List.map (fun j -> (j, garbage j)) (members_of n))
            ~stored_entries:[]
        | None -> ())
      (Stack.live_nodes sys);
    let before = Labels.Label_service.total_creations sys in
    ignore (Stack.run_until sys ~max_steps:2_000_000 agreed);
    let corrupt_creations = Labels.Label_service.total_creations sys - before in
    (* (b) after a delicate reconfiguration *)
    let rec propose tries =
      if tries = 0 then ()
      else if not (Stack.estab sys 1 (Pid.set_of_list (members_of (n - 1)))) then begin
        Stack.run_rounds sys 2;
        propose (tries - 1)
      end
    in
    propose 100;
    let before = Labels.Label_service.total_creations sys in
    ignore
      (Stack.run_until sys ~max_steps:2_000_000 (fun t ->
           (match Stack.uniform_config t with
           | Some c -> Pid.Set.cardinal c = n - 1
           | None -> false)
           && agreed t));
    let reconfig_creations = Labels.Label_service.total_creations sys - before in
    (float_of_int corrupt_creations, float_of_int reconfig_creations)
  in
  let rows =
    List.map2
      (fun n per_seed_results ->
        let corrupt_bound = n * ((n * n) + m_bound) in
        let reconfig_bound = n * n in
        [
          Table.cell_int n;
          Table.cell_float (mean (List.map fst per_seed_results));
          Table.cell_int corrupt_bound;
          Table.cell_float (mean (List.map snd per_seed_results));
          Table.cell_int reconfig_bound;
          Table.cell_bool
            (fmax (List.map fst per_seed_results) <= float_of_int corrupt_bound
            && fmax (List.map snd per_seed_results) <= float_of_int reconfig_bound);
        ])
      p.sizes
      (per_seed pool p run p.sizes)
  in
  Table.make ~id:"E6" ~title:"label creations until a maximal label"
    ~claim:
      "Theorem 4.4: at most O(N(N^2+m)) creations from an arbitrary state; \
       at most O(N^2) after a reconfiguration"
    ~header:
      [
        "N";
        "creations(corrupt)";
        "bound N(N^2+m)";
        "creations(reconfig)";
        "bound N^2";
        "within bounds";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 4.6: counter increments.                               *)
(* ------------------------------------------------------------------ *)

let e7_counter_increments ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let open Counters in
  let run (n, clients) seed =
    let hooks =
      Counter_service.hooks ~in_transit_bound:8 ~exhaust_bound:(1 lsl 30)
    in
    let sys = warm_system_with ~hooks ~seed n in
    let ids = List.init clients (fun i -> i + 1) in
    let app t pid = (Stack.node t pid).Stack.app in
    List.iter (fun pid -> Counter_service.request_increment (app sys pid)) ids;
    let all_done t =
      List.for_all (fun pid -> Counter_service.results (app t pid) <> []) ids
    in
    let ok = Stack.run_until sys ~max_steps:2_000_000 all_done in
    let counters =
      List.concat_map (fun pid -> Counter_service.results (app sys pid)) ids
    in
    let distinct =
      List.for_all
        (fun c -> List.length (List.filter (Counter.equal c) counters) = 1)
        counters
    in
    let ordered =
      List.for_all
        (fun c ->
          List.for_all
            (fun c' -> Counter.equal c c' || Counter.comparable c c')
            counters)
        counters
    in
    let aborts =
      List.fold_left (fun a pid -> a + Counter_service.aborts (app sys pid)) 0 ids
    in
    (ok, distinct && ordered, aborts)
  in
  let keys =
    List.concat_map (fun n -> List.map (fun c -> (n, c)) [ 1; n / 2; n ]) p.sizes
  in
  let rows =
    List.map2
      (fun (n, clients) results ->
        [
          Table.cell_int n;
          Table.cell_int clients;
          Table.cell_bool (List.for_all (fun (ok, _, _) -> ok) results);
          Table.cell_bool (List.for_all (fun (_, o, _) -> o) results);
          Table.cell_int (List.fold_left (fun a (_, _, x) -> a + x) 0 results);
        ])
      keys
      (per_seed pool p run keys)
  in
  Table.make ~id:"E7" ~title:"concurrent counter increments are totally ordered"
    ~claim:
      "Theorem 4.6: increments return monotonically increasing, pairwise \
       distinct and comparable counters, even under concurrency"
    ~header:[ "N"; "clients"; "all completed"; "distinct+ordered"; "aborts" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8 — Theorem 4.13: VS SMR throughput and crash tolerance.           *)
(* ------------------------------------------------------------------ *)

let e8_vs_smr ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let open Vs in
  let machine = { Vs_service.initial = 0; apply = (fun s c -> s + c) } in
  let commands_per_node = 5 in
  let run (n, crash_coordinator) seed =
    let hooks = Vs_service.hooks ~machine () in
    let sys = warm_system_with ~hooks ~seed n in
    let in_view t =
      List.for_all
        (fun (_, node) ->
          Vs_service.status_of node.Stack.app = Vs_service.Multicast
          && (Vs_service.current_view node.Stack.app).Vs_service.vid <> None)
        (Stack.live_nodes t)
    in
    if not (Stack.run_until sys ~max_steps:2_000_000 in_view) then None
    else begin
      let start = Engine.rounds (Stack.engine sys) in
      (* crashing the coordinator first exercises re-election; commands are
         then submitted at survivors (a command pending at a crashed client
         is lost by definition) *)
      (if crash_coordinator then
         match
           List.find_opt
             (fun (_, node) -> Vs_service.is_coordinator node.Stack.app)
             (Stack.live_nodes sys)
         with
         | Some (pid, _) -> Stack.crash sys pid
         | None -> ());
      let total = ref 0 in
      List.iter
        (fun (pid, node) ->
          ignore pid;
          for c = 1 to commands_per_node do
            Vs_service.submit node.Stack.app c;
            total := !total + c
          done)
        (Stack.live_nodes sys);
      let expected = !total in
      let done_ t =
        List.for_all
          (fun (_, node) -> Vs_service.replica node.Stack.app = expected)
          (Stack.live_nodes t)
      in
      let ok = Stack.run_until sys ~max_steps:3_000_000 done_ in
      let rounds = Engine.rounds (Stack.engine sys) - start in
      Some (ok, rounds, List.length (Stack.live_nodes sys) * commands_per_node)
    end
  in
  let keys = product p.sizes [ false; true ] in
  let rows =
    List.map2
      (fun (n, crash) per_seed_results ->
        let results = List.filter_map Fun.id per_seed_results in
        let all_ok = results <> [] && List.for_all (fun (ok, _, _) -> ok) results in
        let rounds = List.map (fun (_, r, _) -> float_of_int r) results in
        let cmds = match results with (_, _, c) :: _ -> c | [] -> 0 in
        [
          Table.cell_int n;
          (if crash then "coordinator crash mid-run" else "steady");
          Table.cell_bool all_ok;
          Table.cell_int cmds;
          Table.cell_float (mean rounds);
          Table.cell_float
            (if mean rounds > 0.0 then float_of_int cmds /. mean rounds else 0.0);
        ])
      keys
      (per_seed pool p run keys)
  in
  Table.make ~id:"E8" ~title:"virtually synchronous SMR"
    ~claim:
      "Theorem 4.13: the SMR delivers all multicast commands to every \
       replica in the same order, preserving state across coordinator \
       crashes"
    ~header:[ "N"; "scenario"; "all delivered"; "commands"; "rounds(mean)"; "cmds/round" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 — baseline comparison: self-stabilization matters.               *)
(* ------------------------------------------------------------------ *)

let e9_baseline_comparison ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let n = match p.sizes with first :: _ -> first | [] -> 4 in
  let trials = List.length p.seeds in
  let dead_config = Pid.set_of_list [ 1777; 1888 ] in
  let baseline_recoveries =
    Pool.map pool
      (fun seed ->
        let b = Baseline.Epoch_config.create ~seed ~members:(members_of n) () in
        Baseline.Epoch_config.run_rounds b 10;
        Baseline.Epoch_config.corrupt b 1 ~epoch:1_000_000 ~config:dead_config;
        Baseline.Epoch_config.run_rounds b p.max_rounds;
        Baseline.Epoch_config.healthy b)
      p.seeds
    |> List.filter (fun ok -> ok)
    |> List.length
  in
  let ours =
    Pool.map pool
      (fun seed ->
        let sys = warm_system ~seed n in
        List.iter
          (fun (_, node) ->
            Recsa.corrupt node.Stack.sa ~config:(Config_value.Set dead_config) ())
          (Stack.live_nodes sys);
        Stack.run_until_quiescent sys ~max_rounds:p.max_rounds)
      p.seeds
    |> List.filter_map Fun.id
  in
  let rows =
    [
      [
        "epoch baseline (non-stabilizing)";
        Table.cell_int trials;
        Table.cell_int baseline_recoveries;
        "-";
      ];
      [
        "ssreconf (this paper)";
        Table.cell_int trials;
        Table.cell_int (List.length ours);
        Table.cell_float (mean (List.map float_of_int ours));
      ];
    ]
  in
  Table.make ~id:"E9" ~title:"recovery from a transient fault: baseline vs ssreconf"
    ~claim:
      "Section 1 / Related work: prior reconfiguration schemes assume a \
       coherent start and never recover from a planted dead configuration; \
       the self-stabilizing scheme always does"
    ~header:[ "system"; "trials"; "recovered"; "recovery rounds(mean)" ]
    ~notes:
      [
        Format.asprintf
          "fault: one node (baseline) / all nodes (ssreconf) get config=%a with a huge epoch"
          Pid.pp_set dead_config;
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 — Figure 1: the module interfaces compose as depicted.          *)
(* ------------------------------------------------------------------ *)

let e10_interface_contract ?jobs:_ p =
  let seed = match p.seeds with s :: _ -> s | [] -> 1 in
  let n = match p.sizes with s :: _ -> s | [] -> 4 in
  let blocked = ref true in
  let hooks =
    { Stack.unit_hooks with pass_query = (fun ~self:_ ~joiner -> joiner <> 200 || not !blocked) }
  in
  let sys = warm_system_with ~hooks ~seed n in
  let checks = ref [] in
  let check name ok = checks := (name, ok) :: !checks in
  (* getConfig: uniform in steady state *)
  let configs =
    List.map
      (fun (pid, node) -> Recsa.get_config node.Stack.sa ~trusted:(Stack.trusted_of sys pid))
      (Stack.live_nodes sys)
  in
  check "getConfig() uniform across participants"
    (match configs with
    | first :: rest -> List.for_all (Config_value.equal first) rest
    | [] -> false);
  (* noReco: true in steady state *)
  check "noReco() true in steady state"
    (List.for_all
       (fun (pid, node) -> Recsa.no_reco node.Stack.sa ~trusted:(Stack.trusted_of sys pid))
       (Stack.live_nodes sys));
  (* estab honored *)
  let target = Pid.set_of_list (members_of (n - 1)) in
  let accepted = Stack.estab sys 1 target in
  let installed =
    Stack.run_until sys ~max_steps:2_000_000 (fun t ->
        match Stack.uniform_config t with
        | Some c -> Pid.Set.equal c target && Stack.quiescent t
        | None -> false)
  in
  check "estab(set) installs the proposal" (accepted && installed);
  (* passQuery gating *)
  Stack.add_joiner sys 200;
  Stack.run_rounds sys 60;
  check "passQuery()=false blocks participate()"
    (not (Recsa.is_participant (Stack.node sys 200).Stack.sa));
  blocked := false;
  let joined =
    Stack.run_until sys ~max_steps:2_000_000 (fun t ->
        Recsa.is_participant (Stack.node t 200).Stack.sa)
  in
  check "passQuery()=true admits participate()" joined;
  let rows =
    List.rev_map (fun (name, ok) -> [ name; Table.cell_bool ok ]) !checks
  in
  Table.make ~id:"E10" ~title:"module interface contract (Figure 1)"
    ~claim:
      "Figure 1: getConfig/noReco/estab/participate/passQuery compose \
       across recSA, recMA, the joining mechanism and the application"
    ~header:[ "property"; "holds" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11 — shared memory emulation.                                      *)
(* ------------------------------------------------------------------ *)

let e11_shared_memory ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let open Vs in
  let run n seed =
    let sys = warm_system_with ~hooks:(Shared_memory.hooks ()) ~seed n in
    let app pid = (Stack.node sys pid).Stack.app in
    let in_view t =
      List.for_all
        (fun (_, node) ->
          Vs_service.status_of node.Stack.app = Vs_service.Multicast
          && (Vs_service.current_view node.Stack.app).Vs_service.vid <> None)
        (Stack.live_nodes t)
    in
    if not (Stack.run_until sys ~max_steps:2_000_000 in_view) then (false, false)
    else begin
      (* writers write distinct values; readers read after *)
      List.iteri
        (fun i pid -> Shared_memory.write (app pid) ~writer:pid "r" (100 + i))
        (members_of n);
      let writes_done t =
        List.for_all
          (fun (_, node) -> Shared_memory.peek node.Stack.app "r" <> None)
          (Stack.live_nodes t)
      in
      let w_ok = Stack.run_until sys ~max_steps:2_000_000 writes_done in
      List.iter
        (fun pid -> Shared_memory.read (app pid) ~reader:pid ~rid:1 "r")
        (members_of n);
      let reads_done _t =
        List.for_all
          (fun pid ->
            match Shared_memory.read_result (app pid) ~reader:pid ~rid:1 with
            | Some (Some v) -> v >= 100 && v < 100 + n
            | Some None | None -> false)
          (members_of n)
      in
      let r_ok = Stack.run_until sys ~max_steps:2_000_000 reads_done in
      (* atomicity: every node sees the same final value *)
      let finals =
        List.map (fun (_, node) -> Shared_memory.peek node.Stack.app "r")
          (Stack.live_nodes sys)
      in
      let agree =
        match finals with
        | first :: rest -> List.for_all (( = ) first) rest
        | [] -> false
      in
      (w_ok && r_ok, agree)
    end
  in
  let rows =
    List.map2
      (fun n results ->
        [
          Table.cell_int n;
          Table.cell_bool (List.for_all fst results);
          Table.cell_bool (List.for_all snd results);
        ])
      p.sizes
      (per_seed pool p run p.sizes)
  in
  Table.make ~id:"E11" ~title:"MWMR shared memory emulation"
    ~claim:
      "Section 4.3: reads and writes over the virtually synchronous SMR \
       form an atomic multi-writer multi-reader register between delicate \
       reconfigurations"
    ~header:[ "N"; "ops completed"; "replicas agree" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 — churn: sustained joins and leaves.                             *)
(* ------------------------------------------------------------------ *)

let e12_churn ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let n = match p.sizes with first :: _ -> first | [] -> 4 in
  let cell (churn_period, seed) =
    let hooks =
      { Stack.unit_hooks with eval_conf = Stack.default_eval_conf () }
    in
    let sys = warm_system_with ~hooks ~seed (2 * n) in
    (* alternate joins and crashes every [churn_period] rounds *)
    let next_id = ref 1000 in
    let crashed = ref 0 in
    let events = 6 in
    for i = 1 to events do
      if i mod 2 = 0 && !crashed < n then begin
        Stack.crash sys (!crashed + 1);
        incr crashed
      end
      else begin
        Stack.add_joiner sys !next_id;
        incr next_id
      end;
      Stack.run_rounds sys churn_period
    done;
    (* churn stops; the system must settle on a configuration with
       a live majority *)
    let healthy t =
      Stack.quiescent t
      &&
      match Stack.uniform_config t with
      | Some c ->
        Quorum.has_majority ~config:c
          (Pid.set_of_list (Engine.live_pids (Stack.engine t)))
      | None -> false
    in
    let rec wait budget =
      if healthy sys then Some (Engine.rounds (Stack.engine sys))
      else if budget = 0 then None
      else begin
        Stack.run_rounds sys 5;
        wait (budget - 1)
      end
    in
    let start = Engine.rounds (Stack.engine sys) in
    let settled = wait 120 in
    [
      Table.cell_int churn_period;
      Table.cell_int seed;
      Table.cell_bool (settled <> None);
      (match settled with
      | Some r -> Table.cell_int (r - start)
      | None -> "-");
      Table.cell_int (Stack.total_triggers sys);
    ]
  in
  let rows = Pool.map pool cell (product [ 5; 15; 40 ] p.seeds) in
  Table.make ~id:"E12" ~title:"sustained churn"
    ~claim:
      "Section 1: the scheme tolerates ongoing joins and crashes; once the \
       churn rate assumption holds again, a steady majority-live \
       configuration is re-established"
    ~header:[ "rounds between churn events"; "seed"; "settled"; "settle rounds"; "recMA triggers" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13 — (N,Θ)-failure-detector estimate accuracy (Section 2).          *)
(* ------------------------------------------------------------------ *)

let e13_fd_estimate ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let run (n, crashed) seed =
    let sys = warm_system ~seed n in
    List.iter (fun v -> Stack.crash sys v) (List.init crashed (fun i -> i + 1));
    Stack.run_rounds sys 60;
    let estimates =
      List.map
        (fun (_, node) ->
          float_of_int (Detector.Theta_fd.estimate node.Stack.fd))
        (Stack.live_nodes sys)
    in
    mean estimates
  in
  let keys =
    List.concat_map
      (fun n -> List.map (fun c -> (n, c)) [ 0; max 1 (n / 4) ])
      p.sizes
  in
  let rows =
    List.map2
      (fun (n, crashed) per_seed_means ->
        [
          Table.cell_int n;
          Table.cell_int crashed;
          Table.cell_int (n - crashed);
          Table.cell_float (mean per_seed_means);
        ])
      keys
      (per_seed pool p run keys)
  in
  Table.make ~id:"E13" ~title:"failure-detector live-count estimate"
    ~claim:
      "Section 2: the heartbeat-gap estimation converges to the number of \
       active processors (n_i <= N)"
    ~header:[ "N"; "crashed"; "actual live"; "estimate(mean)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E14 — partitions: temporary connectivity violations.                 *)
(* ------------------------------------------------------------------ *)

let e14_partitions ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let n = match List.rev p.sizes with last :: _ -> last | [] -> 8 in
  let cell (cut_rounds, seed) =
    let sys = warm_system ~seed n in
    let minority = Pid.set_of_list (List.init (n / 2) (fun i -> i + 1)) in
    Engine.partition (Stack.engine sys) minority;
    Stack.run_rounds sys cut_rounds;
    Engine.heal (Stack.engine sys);
    let start = Engine.rounds (Stack.engine sys) in
    let ok =
      Stack.run_until sys ~max_steps:3_000_000 (fun t ->
          Stack.quiescent t && Stack.uniform_config t <> None)
    in
    [
      Table.cell_int cut_rounds;
      Table.cell_int seed;
      Table.cell_bool ok;
      Table.cell_int (Engine.rounds (Stack.engine sys) - start);
      Table.cell_int (Stack.total_resets sys);
    ]
  in
  let rows = Pool.map pool cell (product [ 10; 40; 120 ] p.seeds) in
  Table.make ~id:"E14" ~title:"temporary partitions"
    ~claim:
      "Section 1: a temporary violation of connectivity is a transient \
       fault; after healing, a single steady configuration holds (no split \
       brain)"
    ~header:[ "cut rounds"; "seed"; "steady after heal"; "rounds to steady"; "resets" ]
    rows

(* ------------------------------------------------------------------ *)
(* E15 — message overhead per protocol layer.                           *)
(* ------------------------------------------------------------------ *)

let e15_message_overhead ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let cell n =
    let seed = match p.seeds with s :: _ -> s | [] -> 1 in
    let sys = warm_system ~seed n in
    let m = Engine.metrics (Stack.engine sys) in
    let before kind = Metrics.get m ("sent." ^ kind) in
    let sa0 = before "sa" and ma0 = before "ma" and hb0 = before "heartbeat" in
    let rounds = 50 in
    Stack.run_rounds sys rounds;
    let per_round v0 kind =
      float_of_int (Metrics.get m ("sent." ^ kind) - v0) /. float_of_int rounds
    in
    [
      Table.cell_int n;
      Table.cell_float (per_round sa0 "sa");
      Table.cell_float (per_round ma0 "ma");
      Table.cell_float (per_round hb0 "heartbeat");
      Table.cell_float
        (per_round sa0 "sa" +. per_round ma0 "ma" +. per_round hb0 "heartbeat");
    ]
  in
  let rows = Pool.map pool cell p.sizes in
  Table.make ~id:"E15" ~title:"message overhead per layer (steady state)"
    ~claim:
      "bounded message complexity: every layer broadcasts O(N) messages per \
       node per round (O(N^2) system-wide), with bounded message size"
    ~header:
      [ "N"; "recSA msgs/round"; "recMA msgs/round"; "heartbeats/round"; "total/round" ]
    rows

(* ------------------------------------------------------------------ *)
(* E16 — the two shared-memory emulations compared.                     *)
(* ------------------------------------------------------------------ *)

let e16_register_comparison ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let seed = match p.seeds with s :: _ -> s | [] -> 1 in
  let ops = 5 in
  let run_smr n =
    let sys = warm_system_with ~hooks:(Vs.Shared_memory.hooks ()) ~seed n in
    let app pid = (Stack.node sys pid).Stack.app in
    let in_view t =
      List.for_all
        (fun (_, node) ->
          Vs.Vs_service.status_of node.Stack.app = Vs.Vs_service.Multicast
          && (Vs.Vs_service.current_view node.Stack.app).Vs.Vs_service.vid <> None)
        (Stack.live_nodes t)
    in
    if not (Stack.run_until sys ~max_steps:2_000_000 in_view) then None
    else begin
      let start = Engine.rounds (Stack.engine sys) in
      let rec do_ops i =
        if i > ops then true
        else begin
          Vs.Shared_memory.write (app 1) ~writer:1 "r" i;
          let written t =
            Vs.Shared_memory.peek (Stack.node t 2).Stack.app "r" = Some i
          in
          if not (Stack.run_until sys ~max_steps:1_000_000 written) then false
          else begin
            Vs.Shared_memory.read (app 3) ~reader:3 ~rid:i "r";
            if
              Stack.run_until sys ~max_steps:1_000_000 (fun t ->
                  Vs.Shared_memory.read_result ((Stack.node t 3).Stack.app) ~reader:3 ~rid:i
                  = Some (Some i))
            then do_ops (i + 1)
            else false
          end
        end
      in
      if do_ops 1 then
        Some (float_of_int (Engine.rounds (Stack.engine sys) - start) /. float_of_int (2 * ops))
      else None
    end
  in
  let run_reg n =
    let sys = warm_system_with ~hooks:(Register.Register_service.hooks ()) ~seed n in
    let app t pid = (Stack.node t pid).Stack.app in
    let start = Engine.rounds (Stack.engine sys) in
    let rec do_ops i =
      if i > ops then true
      else begin
        Register.Register_service.write (app sys 1) ~rid:i "r" i;
        if
          not
            (Stack.run_until sys ~max_steps:1_000_000 (fun t ->
                 Register.Register_service.write_done (app t 1) ~rid:i))
        then false
        else begin
          Register.Register_service.read (app sys 3) ~rid:i "r";
          if
            Stack.run_until sys ~max_steps:1_000_000 (fun t ->
                Register.Register_service.find_read (app t 3) ~rid:i = Some (Some i))
          then do_ops (i + 1)
          else false
        end
      end
    in
    if do_ops 1 then
      Some (float_of_int (Engine.rounds (Stack.engine sys) - start) /. float_of_int (2 * ops))
    else None
  in
  let cell (n, kind) =
    let cell_of = function Some r -> Table.cell_float r | None -> "-" in
    match kind with
    | `Smr -> [ Table.cell_int n; "SMR-based (Vs.Shared_memory)"; cell_of (run_smr n) ]
    | `Reg -> [ Table.cell_int n; "quorum-based (Register_service)"; cell_of (run_reg n) ]
  in
  let rows = Pool.map pool cell (product p.sizes [ `Smr; `Reg ]) in
  Table.make ~id:"E16" ~title:"shared-memory emulations: SMR vs quorum register"
    ~claim:
      "Section 4.3: both emulation routes provide atomic MWMR registers; \
       the quorum route pays two majority round trips per operation while \
       the SMR route pays a multicast round, so their costs converge but \
       the SMR route suspends during reconfigurations"
    ~header:[ "N"; "emulation"; "rounds per op (mean)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E17 — scale tier: the data plane at N in {16, 32, 64}.              *)
(* ------------------------------------------------------------------ *)

let scale_sizes = [ 16; 32; 64 ]

let e17_scale ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let steady_rounds = 20 in
  let run n seed =
    (* recovery from a fully corrupted state, timed *)
    let sys = warm_system ~seed n in
    Stack.corrupt_everything sys ~rng:(Rng.create (seed * 7919));
    let eng = Stack.engine sys in
    let steps0 = Engine.steps eng in
    let t0 = Unix.gettimeofday () in
    let recovery = Stack.run_until_quiescent sys ~max_rounds:p.max_rounds in
    let rec_wall = Unix.gettimeofday () -. t0 in
    let rec_steps = Engine.steps eng - steps0 in
    (* steady-state throughput on the recovered system *)
    let steps1 = Engine.steps eng in
    let t1 = Unix.gettimeofday () in
    Stack.run_rounds sys steady_rounds;
    let steady_wall = Unix.gettimeofday () -. t1 in
    let steady_steps = Engine.steps eng - steps1 in
    ( recovery,
      rec_steps,
      rec_wall,
      float_of_int steady_steps /. steady_wall,
      float_of_int steady_rounds /. steady_wall )
  in
  let rows =
    List.map2
      (fun n results ->
        let recovered =
          List.for_all (fun (r, _, _, _, _) -> Option.is_some r) results
        in
        let rec_rounds =
          List.map
            (fun (r, _, _, _, _) ->
              match r with
              | Some rounds -> float_of_int rounds
              | None -> float_of_int p.max_rounds)
            results
        in
        let rec_ev_s =
          List.map (fun (_, steps, wall, _, _) -> float_of_int steps /. wall) results
        in
        let rec_wall = List.map (fun (_, _, w, _, _) -> w) results in
        let steady_ev = List.map (fun (_, _, _, ev, _) -> ev) results in
        let steady_r = List.map (fun (_, _, _, _, r) -> r) results in
        [
          Table.cell_int n;
          Table.cell_bool recovered;
          Table.cell_float (mean rec_rounds);
          Printf.sprintf "%.2f" (mean rec_wall);
          Printf.sprintf "%.0fk" (mean rec_ev_s /. 1e3);
          Printf.sprintf "%.0fk" (mean steady_ev /. 1e3);
          Table.cell_float (mean steady_r);
        ])
      scale_sizes
      (per_seed pool p run scale_sizes)
  in
  Table.make ~id:"E17" ~title:"scale tier: recovery and throughput at N in {16, 32, 64}"
    ~claim:
      "north star: the allocation-light data plane (ring channels, dense \
       link tables, interned descriptors) sustains full recovery and \
       steady-state gossip well beyond the N<=12 grid"
    ~header:
      [
        "N";
        "recovered";
        "recovery rounds(mean)";
        "recovery s(mean)";
        "recovery events/s";
        "steady events/s";
        "steady rounds/s";
      ]
    ~notes:
      [
        "recovered and rounds are deterministic per seed; the wall-clock \
         columns (s, events/s, rounds/s) vary run to run and are excluded \
         from byte-identity checks";
        "sizes are fixed at {16, 32, 64}; seeds and the round budget follow \
         the main grid's params";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E18 — fault plans: stabilization time vs. fault intensity.          *)
(* ------------------------------------------------------------------ *)

let fault_sizes = [ 8; 16; 32 ]

(* Composite intensity levels: corruption-storm rate x partition duration
   x join/crash churn. Each cell replays one declarative fault plan
   through [Stack.run_plan], so the adversary is identical across sizes
   and seeds up to the plan's own RNG. *)
let fault_levels =
  [
    ("calm", 0.0, 0, false);
    ("low", 0.15, 5, false);
    ("medium", 0.4, 10, true);
    ("high", 0.7, 20, true);
  ]

let e18_faults ?(jobs = 1) p =
  Pool.with_pool ~jobs @@ fun pool ->
  let module Fp = Faults.Fault_plan in
  let warm = 25 in
  let storm_rounds = 20 in
  let plan_for n (rate, part, churn) seed =
    let storm =
      if rate > 0.0 then
        Fp.storm ~seed:((seed * 131) + n) ~start:warm ~rounds:storm_rounds ~rate
      else []
    in
    let partition =
      if part > 0 then
        [
          Fp.at (warm + 5)
            (Fp.Partition { group = Fp.Sample ((n / 2) + 1); heal_after = part });
        ]
      else []
    in
    let churn_events =
      if churn then
        [
          Fp.at (warm + 10) (Fp.Join [ n + 1; n + 2 ]);
          Fp.at (warm + 12) (Fp.Crash (Fp.Sample 1));
        ]
      else []
    in
    Fp.make ~seed:((seed * 977) + n) (storm @ partition @ churn_events)
  in
  let run (n, (_, rate, part, churn)) seed =
    let sys =
      Stack.of_scenario ~hooks:Stack.unit_hooks
        (Scenario.make ~seed ~capacity:cap ~n_bound:(2 * n)
           ~members:(members_of n) ())
    in
    let plan = plan_for n (rate, part, churn) seed in
    let recovery = Stack.run_plan sys ~plan ~max_rounds:(4 * p.max_rounds) in
    let tele = Engine.telemetry (Stack.engine sys) in
    (* reset-to-recovery latency quantiles; an intensity too mild to cause
       any reset reports 0 (finite by construction) *)
    let q pr =
      match Telemetry.find_histogram tele "recsa.reset_recovery_seconds" with
      | Some h -> Option.value ~default:0.0 (Telemetry.Histogram.quantile h pr)
      | None -> 0.0
    in
    (recovery, q 0.5, q 0.95)
  in
  let keys = product fault_sizes fault_levels in
  let rows =
    List.map2
      (fun (n, (label, rate, part, churn)) results ->
        let recovered =
          List.for_all (fun (r, _, _) -> Option.is_some r) results
        in
        let rec_rounds =
          List.map
            (fun (r, _, _) ->
              match r with
              | Some rounds -> float_of_int rounds
              | None -> float_of_int (4 * p.max_rounds))
            results
        in
        let p50s = List.map (fun (_, a, _) -> a) results in
        let p95s = List.map (fun (_, _, b) -> b) results in
        [
          Table.cell_int n;
          label;
          Printf.sprintf "%.2f/%d/%s" rate part (if churn then "yes" else "no");
          Table.cell_bool recovered;
          Table.cell_float (mean rec_rounds);
          Table.cell_float (mean p50s);
          Table.cell_float (mean p95s);
        ])
      keys
      (per_seed pool p run keys)
  in
  Table.make ~id:"E18"
    ~title:"fault plans: stabilization time vs. fault intensity"
    ~claim:
      "Theorem 3.15 under a systematic adversary: for every swept fault \
       intensity (corruption-storm rate x partition duration x churn) the \
       system returns to a quiescent legal configuration within a bounded \
       number of rounds after the last fault, with finite reset-recovery \
       quantiles"
    ~header:
      [
        "N";
        "intensity";
        "rate/part/churn";
        "recovered";
        "rounds after last fault(mean)";
        "reset recovery p50(s)";
        "reset recovery p95(s)";
      ]
    ~notes:
      [
        "each cell replays one declarative Faults.Fault_plan (seeded storm \
         + timed-heal partition + join/crash churn) via Stack.run_plan";
        "recovery quantiles come from the recsa.reset_recovery_seconds \
         histogram; 0 means the intensity caused no reset";
      ]
    rows

let all ?jobs p =
  [
    e1_convergence ?jobs p;
    e2_delicate_replacement ?jobs p;
    e3_recma_trigger_bound ?jobs p;
    e4_recma_liveness ?jobs p;
    e5_joining ?jobs p;
    e6_label_creations ?jobs p;
    e7_counter_increments ?jobs p;
    e8_vs_smr ?jobs p;
    e9_baseline_comparison ?jobs p;
    e10_interface_contract ?jobs p;
    e11_shared_memory ?jobs p;
    e12_churn ?jobs p;
    e13_fd_estimate ?jobs p;
    e14_partitions ?jobs p;
    e15_message_overhead ?jobs p;
    e16_register_comparison ?jobs p;
    e17_scale ?jobs p;
    e18_faults ?jobs p;
  ]

let registry =
  [
    ("E1", e1_convergence);
    ("E2", e2_delicate_replacement);
    ("E3", e3_recma_trigger_bound);
    ("E4", e4_recma_liveness);
    ("E5", e5_joining);
    ("E6", e6_label_creations);
    ("E7", e7_counter_increments);
    ("E8", e8_vs_smr);
    ("E9", e9_baseline_comparison);
    ("E10", e10_interface_contract);
    ("E11", e11_shared_memory);
    ("E12", e12_churn);
    ("E13", e13_fd_estimate);
    ("E14", e14_partitions);
    ("E15", e15_message_overhead);
    ("E16", e16_register_comparison);
    ("E17", e17_scale);
    ("E18", e18_faults);
  ]

let by_id id = List.assoc_opt (String.uppercase_ascii id) registry
let ids = List.map fst registry
