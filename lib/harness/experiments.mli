(** The experiment suite (EXPERIMENTS.md / DESIGN.md Section 5).

    The paper is a theory paper: its evaluation is a set of theorems and
    asymptotic bounds plus two structural figures. Each experiment here
    regenerates the measurable content of one claim on the simulation
    substrate. Every experiment is deterministic given its seeds.

    Each (experiment x size x seed) cell is an independent simulation; the
    [?jobs] argument runs the cells on a {!Pool} of that many domains.
    Results are reassembled in deterministic order, so the rendered tables
    are byte-identical for every job count (default: sequential). *)

(** Default parameters; callers (bench, CLI) can shrink for quick runs. *)
type params = {
  sizes : int list;  (** configuration sizes N *)
  seeds : int list;  (** one run per (size, seed) *)
  max_rounds : int;  (** convergence budget per run *)
}

val default_params : params
val quick_params : params

val e1_convergence : ?jobs:int -> params -> Table.t
val e2_delicate_replacement : ?jobs:int -> params -> Table.t
val e3_recma_trigger_bound : ?jobs:int -> params -> Table.t
val e4_recma_liveness : ?jobs:int -> params -> Table.t
val e5_joining : ?jobs:int -> params -> Table.t
val e6_label_creations : ?jobs:int -> params -> Table.t
val e7_counter_increments : ?jobs:int -> params -> Table.t
val e8_vs_smr : ?jobs:int -> params -> Table.t
val e9_baseline_comparison : ?jobs:int -> params -> Table.t
val e10_interface_contract : ?jobs:int -> params -> Table.t
val e11_shared_memory : ?jobs:int -> params -> Table.t
val e12_churn : ?jobs:int -> params -> Table.t
val e13_fd_estimate : ?jobs:int -> params -> Table.t
val e14_partitions : ?jobs:int -> params -> Table.t
val e15_message_overhead : ?jobs:int -> params -> Table.t
val e16_register_comparison : ?jobs:int -> params -> Table.t

(** The scale tier (E17): recovery and steady-state throughput at
    N ∈ {16, 32, 64}. The recovered/rounds columns are deterministic per
    seed; the wall-clock throughput columns are not — they are the one
    exception to table byte-identity. *)
val e17_scale : ?jobs:int -> params -> Table.t

(** The sizes the scale tier measures (16, 32, 64). *)
val scale_sizes : int list

(** Fault-plan sweep (E18): stabilization time vs. fault intensity
    (corruption-storm rate x partition duration x churn) at N ∈ {8, 16, 32},
    with p50/p95 reset-recovery latencies from the telemetry histogram.
    Every cell replays one declarative {!Faults.Fault_plan} through
    [Stack.run_plan]. *)
val e18_faults : ?jobs:int -> params -> Table.t

(** The sizes (8, 16, 32) and composite intensity levels E18 sweeps. *)
val fault_sizes : int list

val fault_levels : (string * float * int * bool) list

(** All experiments in order. *)
val all : ?jobs:int -> params -> Table.t list

(** The (id, experiment) pairs behind {!all}, in order — for callers that
    need per-experiment timing or selection. *)
val registry : (string * (?jobs:int -> params -> Table.t)) list

(** [by_id id] — lookup an experiment by its "E<n>" identifier. *)
val by_id : string -> (?jobs:int -> params -> Table.t) option

val ids : string list
