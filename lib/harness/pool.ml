type t = {
  jobs : int;
  lock : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable pending : int; (* tasks submitted but not yet finished *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

(* Workers never see exceptions: [map] wraps every closure so that its
   result (or exception) lands in the caller's result slot. *)
let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.tasks && not t.stop do
    Condition.wait t.work_available t.lock
  done;
  if Queue.is_empty t.tasks then Mutex.unlock t.lock (* stop requested *)
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.lock;
    task ();
    Mutex.lock t.lock;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.lock;
    worker_loop t
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      tasks = Queue.create ();
      pending = 0;
      stop = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.workers = [] -> List.map f xs
  | xs ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let results = Array.make n None in
    Mutex.lock t.lock;
    t.pending <- t.pending + n;
    Array.iteri
      (fun i x ->
        Queue.push
          (fun () ->
            let r =
              try Ok (f x)
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- Some r)
          t.tasks)
      input;
    Condition.broadcast t.work_available;
    while t.pending > 0 do
      Condition.wait t.work_done t.lock
    done;
    Mutex.unlock t.lock;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
