(** A small fixed-size domain pool for embarrassingly parallel experiment
    cells.

    Every (experiment x size x seed) cell of the harness is an independent,
    deterministically-seeded simulation, so the only coordination needed is
    a work queue and order-preserving reassembly of results. The pool is
    hand-rolled on [Domain] + [Mutex]/[Condition] — no dependencies beyond
    the OCaml 5 standard library.

    Determinism contract: [map pool f xs] returns results in the order of
    [xs] regardless of how many domains executed the closures, so table
    output is byte-identical for any job count (provided [f] itself is
    deterministic and shares no mutable state across calls). *)

type t

(** [default_jobs ()] is [Domain.recommended_domain_count ()] — the
    CLI-facing default for [--jobs]. *)
val default_jobs : unit -> int

(** [create ~jobs] spawns [max 1 jobs] worker domains ([jobs <= 1] spawns
    none; [map] then runs inline on the caller). *)
val create : jobs:int -> t

val jobs : t -> int

(** [shutdown t] drains the queue and joins all workers. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on
    return or exception. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [map t f xs] applies [f] to every element of [xs] on the pool's
    workers and returns the results in input order. If any application
    raised, the first (in input order) exception is re-raised after all
    tasks finished. Must be called from a single client at a time, and
    never from within a task running on [t] (the nested map would starve
    the queue). *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list
