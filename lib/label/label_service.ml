open Sim
open Reconfig

type state = { mutable algo : Label_algo.t option }

type msg = {
  lm_sent_max : Label.pair option;
  lm_last_sent : Label.pair option;
}

let ensure_algo ~in_transit_bound (view : Stack.scheme_view) st members =
  match st.algo with
  | Some algo when Pid.Set.equal (Label_algo.members algo) members -> Some algo
  | Some algo ->
    (* confChange: reconfiguration completed — rebuild structures *)
    Label_algo.rebuild algo ~members;
    view.Stack.v_emit "label.rebuild" (Format.asprintf "%a" Pid.pp_set members);
    Some algo
  | None ->
    let algo =
      Label_algo.create ~self:view.Stack.v_self ~members ~in_transit_bound
    in
    st.algo <- Some algo;
    Some algo

let tick ~in_transit_bound (view : Stack.scheme_view) st =
  match Stack.View.current_members view with
  | None -> (st, []) (* reconfiguration taking place: no label traffic *)
  | Some members when not (Pid.Set.mem view.Stack.v_self members) -> (st, [])
  | Some members -> (
    match ensure_algo ~in_transit_bound view st members with
    | None -> (st, [])
    | Some algo ->
      (* make sure a maximal label exists to gossip *)
      if Label_algo.local_max algo = None then
        Label_algo.receipt_action algo ~sent_max:None ~last_sent:None
          ~from:view.Stack.v_self;
      let clean p = Option.bind p (Label_algo.clean_pair algo) in
      let out =
        Pid.Set.fold
          (fun pk acc ->
            if Pid.equal pk view.Stack.v_self then acc
            else
              ( pk,
                {
                  lm_sent_max = clean (Label_algo.local_max algo);
                  lm_last_sent = clean (Label_algo.max_of algo pk);
                } )
              :: acc)
          members []
      in
      (st, out))

let recv ~in_transit_bound (view : Stack.scheme_view) ~from m st =
  match Stack.View.current_members view with
  | None -> (st, [])
  | Some members
    when (not (Pid.Set.mem view.Stack.v_self members))
         || not (Pid.Set.mem from members) ->
    (st, [])
  | Some members -> (
    match ensure_algo ~in_transit_bound view st members with
    | None -> (st, [])
    | Some algo ->
      let clean p = Option.bind p (Label_algo.clean_pair algo) in
      Label_algo.receipt_action algo ~sent_max:(clean m.lm_sent_max)
        ~last_sent:(clean m.lm_last_sent) ~from;
      (st, []))

(* Arbitrary-state injection: conflicting same-creator labels in both the
   max array and the stored queues (the situation Algorithm 4.2's
   cancellation machinery resolves). *)
let corrupt rng st =
  (match st.algo with
  | Some algo ->
    let members = Pid.Set.elements (Label_algo.members algo) in
    let garbage j =
      Label.pair_of
        (Label.make ~creator:j ~sting:(Rng.int rng 1024)
           ~antistings:[ Rng.int rng 1024 ])
    in
    Label_algo.corrupt algo
      ~max_entries:(List.map (fun j -> (j, garbage j)) members)
      ~stored_entries:
        (List.map (fun j -> (j, [ garbage j ])) (Rng.subset rng members))
  | None -> ());
  st

let plugin ~in_transit_bound =
  {
    Stack.p_init = (fun _ -> { algo = None });
    p_tick = (fun view st -> tick ~in_transit_bound view st);
    p_recv = (fun view ~from m st -> recv ~in_transit_bound view ~from m st);
    (* label state is member-local; joiners start fresh *)
    p_merge = (fun ~self:_ st _ -> st);
    p_corrupt = corrupt;
  }

let hooks ~in_transit_bound =
  {
    Stack.eval_conf = (fun ~self:_ ~trusted:_ _ -> false);
    pass_query = (fun ~self:_ ~joiner:_ -> true);
    plugin = plugin ~in_transit_bound;
  }

(* The labeling scheme reports through traces only; nothing to pre-register. *)
let declare_metrics (_ : Telemetry.t) = ()

let local_max st =
  Option.bind st.algo (fun algo ->
      match Label_algo.local_max algo with
      | Some p when Label.legit p -> Some p.Label.ml
      | Some _ | None -> None)

let creations st =
  match st.algo with Some algo -> Label_algo.creations algo | None -> 0

let agreed_max sys =
  let members =
    match Stack.uniform_config sys with Some s -> s | None -> Pid.Set.empty
  in
  let maxes =
    List.filter_map
      (fun (p, n) ->
        if Pid.Set.mem p members then Some (local_max n.Stack.app) else None)
      (Stack.live_nodes sys)
  in
  match maxes with
  | [] -> None
  | first :: rest ->
    if
      List.for_all
        (fun m ->
          match (m, first) with
          | Some a, Some b -> Label.equal a b
          | None, None -> true
          | Some _, None | None, Some _ -> false)
        rest
    then first
    else None

let total_creations sys =
  List.fold_left (fun acc (_, n) -> acc + creations n.Stack.app) 0 (Stack.live_nodes sys)

module Service = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "label"
  let plugin = plugin ~in_transit_bound:8
  let hooks = hooks ~in_transit_bound:8
  let corrupt = corrupt
  let declare_metrics = declare_metrics
end
