(** Self-stabilizing labeling for reconfiguration — Algorithm 4.1.

    A {!Reconfig.Stack} plugin run by configuration members: while no
    reconfiguration is taking place, members exchange their maximal label
    pairs and feed them to Algorithm 4.2's receipt action; after every
    reconfiguration the label storage is rebuilt for the new member set and
    all queues are emptied. Labels created by non-members are voided and
    can never re-enter the system (Lemma 4.1). *)

open Reconfig

type state = {
  mutable algo : Label_algo.t option;  (** [None] until first membership *)
}

type msg = {
  lm_sent_max : Label.pair option;  (** sender's maximal pair, cleaned *)
  lm_last_sent : Label.pair option;  (** echo of receiver's maximal pair *)
}

(** [plugin ~in_transit_bound] — the Stack plugin implementing the
    service. *)
val plugin : in_transit_bound:int -> (state, msg) Stack.plugin

(** [hooks ~in_transit_bound] — [Stack.unit_hooks]-like hooks carrying the
    plugin (never ask for reconfiguration, always pass joiners). *)
val hooks : in_transit_bound:int -> (state, msg) Stack.hooks

(** {2 Observation} *)

(** [local_max st] — the node's current maximal label, if any. *)
val local_max : state -> Label.t option

(** [creations st] — labels created by this node so far. *)
val creations : state -> int

(** [agreed_max sys] — [Some l] iff every live configuration member's
    maximal label is the same legit [l]. *)
val agreed_max : (state, msg) Stack.t -> Label.t option

(** Total label creations across live nodes (Theorem 4.4's quantity). *)
val total_creations : (state, msg) Stack.t -> int

(** {2 Fault injection and packaging} *)

(** Arbitrary-state injection (the plugin's [p_corrupt]): conflicting
    same-creator labels in the max array and stored queues. *)
val corrupt : Sim.Rng.t -> state -> state

(** The labeling scheme reports through traces only; this is a no-op. *)
val declare_metrics : Telemetry.t -> unit

(** Default-configured instance ([in_transit_bound = 8]). *)
module Service : Stack.SERVICE with type state = state and type msg = msg
