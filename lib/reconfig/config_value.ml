open Sim

type t = Not_participant | Reset | Set of Pid.Set.t

let equal a b =
  a == b
  ||
  match (a, b) with
  | Not_participant, Not_participant -> true
  | Reset, Reset -> true
  | Set s1, Set s2 -> Pid.equal_sets s1 s2
  | (Not_participant | Reset | Set _), _ -> false

let rank = function Not_participant -> 0 | Reset -> 1 | Set _ -> 2

let compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Set s1, Set s2 -> Pid.compare_sets_lex s1 s2
    | _ -> Int.compare (rank a) (rank b)

module Table = Intern.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = function
    | Not_participant -> 0x6aa3
    | Reset -> 0x7b51
    | Set s -> Intern.set_hash s
end)

let intern = function
  | (Not_participant | Reset) as v -> v (* immediate constructors *)
  | Set s -> Table.intern (Set (Intern.pid_set s))

let of_set s = Table.intern (Set (Intern.pid_set s))

let pp fmt = function
  | Not_participant -> Format.fprintf fmt "#"
  | Reset -> Format.fprintf fmt "_|_"
  | Set s -> Pid.pp_set fmt s

let is_set = function Set _ -> true | Not_participant | Reset -> false
let is_reset = function Reset -> true | Not_participant | Set _ -> false

let is_not_participant = function
  | Not_participant -> true
  | Reset | Set _ -> false

let to_set = function Set s -> Some s | Not_participant | Reset -> None
