(** The [config] field values of Algorithm 3.1.

    A processor's view of the current quorum configuration is either
    [Not_participant] (the paper's ♯ — the processor has not joined),
    [Reset] (the paper's ⊥ — a configuration reset is in progress), or
    [Set s] — the agreed processor set. The empty set is representable but
    is type-2 stale information and triggers a reset. *)

open Sim

type t =
  | Not_participant  (** ♯ *)
  | Reset  (** ⊥ *)
  | Set of Pid.Set.t

(** [equal]/[compare] take a physical-equality fast path first; interned
    values ({!intern}, {!of_set}) usually decide in one pointer compare. *)

val equal : t -> t -> bool

val compare : t -> t -> int

(** [intern v] is the canonical physically-shared representative of [v]
    (see {!Intern}); [Not_participant] and [Reset] are immediate and are
    returned as-is. *)
val intern : t -> t

(** [of_set s] is the interned [Set s]. *)
val of_set : Pid.Set.t -> t
val pp : Format.formatter -> t -> unit

val is_set : t -> bool
val is_reset : t -> bool
val is_not_participant : t -> bool

(** [to_set v] is [Some s] iff [v = Set s]. *)
val to_set : t -> Pid.Set.t option
