open Sim

(* Hashconsing for the descriptors recSA gossips every round. The tables are
   domain-local (the harness Pool runs experiment cells on several domains; a
   shared table would race and a lock would serialize the hot path) and
   deliberately NOT weak: OCaml 5 processes weak arrays and ephemerons in
   stop-the-world GC phases, which collapses throughput as soon as worker
   domains exist. Instead each table is bounded: when it reaches [cap]
   entries it is reset, which only costs future misses. Interning is a pure
   canonicalization — a missed hit only costs the structural comparison the
   caller would have done anyway — so determinism is unaffected. *)

let cap = 8192

(* In the simulator, messages travel by reference, so the descriptors
   arriving at [intern] are very often the canonical object itself (the
   sender already interned them). A tiny MRU ring of recently returned
   canonical values turns that case into a handful of pointer compares,
   skipping the O(|set|) hash and bucket walk entirely. *)
let mru_size = 8

module Make (H : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (H)

  type state = { tbl : H.t T.t; mru : H.t option array; mutable next : int }

  let key =
    Domain.DLS.new_key (fun () ->
        { tbl = T.create 256; mru = Array.make mru_size None; next = 0 })

  let intern x =
    let st = Domain.DLS.get key in
    let rec hit i =
      if i >= mru_size then false
      else
        match st.mru.(i) with Some y when y == x -> true | _ -> hit (i + 1)
    in
    if hit 0 then x
    else begin
      let y =
        match T.find_opt st.tbl x with
        | Some y -> y
        | None ->
          if T.length st.tbl >= cap then T.reset st.tbl;
          T.add st.tbl x x;
          x
      in
      st.mru.(st.next) <- Some y;
      st.next <- (st.next + 1) mod mru_size;
      y
    end
end

let set_hash s = Pid.Set.fold (fun p h -> (h * 31) + p + 1) s 0

module Pid_set_table = Make (struct
  type t = Pid.Set.t

  let equal = Pid.equal_sets
  let hash = set_hash
end)

let pid_set = Pid_set_table.intern
let set_equal = Pid.equal_sets
