(** Hashconsing for gossiped descriptors.

    recSA carries [Pid.Set.t] configuration descriptors (and values built
    from them) in every gossip message, and the Definition 3.1 conflict
    checks compare them on every one of the O(N²) messages per round. By
    interning each descriptor into a per-domain weak table, repeated values
    share one physical representation and the comparisons reduce to pointer
    equality in the common case.

    Interning is semantics-preserving: a value that misses the table is
    returned unchanged, so callers may rely only on structural equality.
    Tables are domain-local ([Domain.DLS]) because the experiment harness
    runs cells on multiple domains. They are bounded, not weak — OCaml 5
    handles weak arrays in stop-the-world GC phases, which is ruinous with
    worker domains — so a full table simply resets and re-fills. *)

open Sim

(** [Make (H)] is an interning table over [H.t]: [intern x] returns the
    canonical physically-shared representative of [x]. *)
module Make (H : Hashtbl.HashedType) : sig
  val intern : H.t -> H.t
end

(** Deterministic hash of a processor set (fold over its elements);
    suitable for [Make]-style tables keyed by sets. *)
val set_hash : Pid.Set.t -> int

(** [pid_set s] is the canonical representative of [s]. *)
val pid_set : Pid.Set.t -> Pid.Set.t

(** [set_equal] = {!Pid.equal_sets} — pointer-compare fast path. *)
val set_equal : Pid.Set.t -> Pid.Set.t -> bool
