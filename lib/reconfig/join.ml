open Sim

type 'app message =
  | Join_request
  | Join_reply of { pass : bool; app : 'app }

type 'app t = {
  j_self : Pid.t;
  mutable passes : bool Pid.Map.t;
  mutable states : 'app Pid.Map.t;
  mutable fresh : bool; (* resetVars pending for the current join attempt *)
  mutable joins : int;
}

let create ~self =
  { j_self = self; passes = Pid.Map.empty; states = Pid.Map.empty; fresh = true; joins = 0 }

let granted t members trusted =
  Pid.Set.filter
    (fun p -> match Pid.Map.find_opt p t.passes with Some b -> b | None -> false)
    (Pid.Set.inter members trusted)

let tick t ?(quorum = (module Quorum.Majority : Quorum.SYSTEM)) ~trusted ~recsa
    ~reset_vars ~init_vars () =
  let module Q = (val quorum : Quorum.SYSTEM) in
  if Recsa.is_participant recsa then begin
    (* participants run none of the joiner loop; arm resetVars for a
       hypothetical later rejoin-as-transient-fault *)
    t.fresh <- true;
    ([], [])
  end
  else begin
    let events = ref [] in
    if t.fresh then begin
      (* line 5/7: clear passes, reset application variables to defaults *)
      t.passes <- Pid.Map.empty;
      t.states <- Pid.Map.empty;
      reset_vars ();
      t.fresh <- false;
      events := ("join.start", "") :: !events
    end;
    (match Config_value.to_set (Recsa.get_config recsa ~trusted) with
    | Some members
      when Recsa.no_reco recsa ~trusted
           && Q.is_quorum ~config:members (granted t members trusted) ->
      (* line 10–12: a quorum of passes and no reconfiguration *)
      init_vars t.states;
      if Recsa.participate recsa ~trusted then begin
        t.joins <- t.joins + 1;
        t.fresh <- true;
        events := ("join.participate", "") :: !events
      end
    | Some _ | None -> ());
    let out =
      if Recsa.is_participant recsa then []
      else
        Pid.Set.fold
          (fun p acc ->
            if Pid.equal p t.j_self then acc else (p, Join_request) :: acc)
          trusted []
    in
    (out, List.rev !events)
  end

let on_request t ~self_app ~from ~trusted ~recsa ~pass_query =
  ignore from;
  (* line 16: only configuration members reply, and only outside
     reconfigurations *)
  let is_member =
    match Config_value.to_set (Recsa.config recsa) with
    | Some members -> Pid.Set.mem t.j_self members
    | None -> false
  in
  if is_member && Recsa.no_reco recsa ~trusted then
    Some (Join_reply { pass = pass_query from; app = self_app })
  else None

let on_reply t ~from ~participant ~pass ~app =
  (* line 18: participants ignore replies *)
  if not participant then begin
    t.passes <- Pid.Map.add from pass t.passes;
    t.states <- Pid.Map.add from app t.states
  end

let corrupt t ~rng ~pool =
  t.passes <-
    List.fold_left (fun m q -> Pid.Map.add q (Rng.bool rng) m) Pid.Map.empty pool;
  t.states <- Pid.Map.empty;
  t.fresh <- Rng.bool rng

let join_count t = t.joins

let pp fmt t =
  Format.fprintf fmt "join(p%a) passes=%d joins=%d" Pid.pp t.j_self
    (Pid.Map.cardinal (Pid.Map.filter (fun _ b -> b) t.passes))
    t.joins
