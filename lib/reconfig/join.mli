(** Self-stabilizing joining mechanism — Algorithm 3.3.

    A joiner repeatedly sends "Join" requests; configuration members reply
    — when no reconfiguration is taking place and the application's
    [pass_query] allows it — with a pass and their current application
    state. Once passes from a majority of the configuration members are
    collected (and still no reconfiguration is taking place), the joiner
    initializes its application variables from the members' states and
    becomes a participant via recSA's [participate].

    ['app] is the application state carried in replies (the paper's
    [state\[\]]). *)

open Sim

type 'app t

type 'app message =
  | Join_request
  | Join_reply of { pass : bool; app : 'app }

val create : self:Pid.t -> 'app t

(** [tick t ~trusted ~recsa ~reset_vars ~init_vars ()] — the joiner side of
    the do-forever loop; a no-op for participants. [reset_vars] is called
    once when (re)entering the joining state; [init_vars] is called with
    the collected member states just before [participate]; [quorum]
    (default {!Quorum.Majority}) generalizes the quorum-of-passes admission
    test. Returns outgoing messages and trace events. *)
val tick :
  'app t ->
  ?quorum:(module Quorum.SYSTEM) ->
  trusted:Pid.Set.t ->
  recsa:Recsa.t ->
  reset_vars:(unit -> unit) ->
  init_vars:('app Pid.Map.t -> unit) ->
  unit ->
  (Pid.t * 'app message) list * (string * string) list

(** [on_request t ~self_app ~from ~trusted ~recsa ~pass_query] — the
    participant side: the reply to a "Join" request, or [None] when this
    processor is not a configuration member or a reconfiguration is taking
    place. *)
val on_request :
  'app t ->
  self_app:'app ->
  from:Pid.t ->
  trusted:Pid.Set.t ->
  recsa:Recsa.t ->
  pass_query:(Pid.t -> bool) ->
  'app message option

(** [on_reply t ~from ~participant ~pass ~app] stores a member's reply
    (joiners only). *)
val on_reply : 'app t -> from:Pid.t -> participant:bool -> pass:bool -> app:'app -> unit

(** [corrupt t ~rng ~pool] — transient fault: scramble the joiner-side
    bookkeeping (random pass flags over [pool], collected member states
    dropped, the resetVars latch randomized). Convergence must wash it
    out: a stale pass quorum is re-validated against [no_reco] before
    [participate]. *)
val corrupt : 'app t -> rng:Rng.t -> pool:Pid.t list -> unit

(** Number of successful [participate] transitions. *)
val join_count : 'app t -> int

val pp : Format.formatter -> 'app t -> unit
