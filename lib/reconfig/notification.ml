open Sim

type phase = P0 | P1 | P2
type t = { phase : phase; set : Pid.Set.t option }

let default = { phase = P0; set = None }
let make phase set = { phase; set = Some set }
let phase_to_int = function P0 -> 0 | P1 -> 1 | P2 -> 2

let equal a b =
  a == b
  || a.phase = b.phase
     &&
     match (a.set, b.set) with
     | None, None -> true
     | Some s1, Some s2 -> Pid.equal_sets s1 s2
     | None, Some _ | Some _, None -> false

let compare_set a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some s1, Some s2 -> Pid.compare_sets_lex s1 s2

let compare a b =
  if a == b then 0
  else
    let c = Int.compare (phase_to_int a.phase) (phase_to_int b.phase) in
    if c <> 0 then c else compare_set a.set b.set

module Table = Intern.Make (struct
  type nonrec t = t

  let equal = equal
  let hash n =
    (phase_to_int n.phase * 31)
    + match n.set with None -> 0x51f7 | Some s -> Intern.set_hash s
end)

let intern n =
  match n.set with
  | None -> if n.phase = P0 then default else Table.intern n
  | Some s -> Table.intern { n with set = Some (Intern.pid_set s) }

let is_default n = equal n default

let malformed n =
  match (n.phase, n.set) with
  | P0, None -> false
  | P0, Some _ -> true (* type-1: phase 0 must carry no set *)
  | (P1 | P2), None -> true
  | (P1 | P2), Some s -> Pid.Set.is_empty s

let degree n ~all = (2 * phase_to_int n.phase) + if all then 1 else 0

let max_of l =
  List.fold_left
    (fun acc n ->
      if is_default n then acc
      else
        match acc with
        | None -> Some n
        | Some m -> if compare n m > 0 then Some n else acc)
    None l

let pp fmt n =
  let pp_set fmt = function
    | None -> Format.fprintf fmt "_|_"
    | Some s -> Pid.pp_set fmt s
  in
  Format.fprintf fmt "<%d, %a>" (phase_to_int n.phase) pp_set n.set
