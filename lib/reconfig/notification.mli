(** Configuration-replacement notifications — the [prp] pairs of
    Algorithm 3.1.

    A notification is a pair ⟨phase, set⟩ with phase ∈ {0, 1, 2}. The
    default ⟨0, ⊥⟩ encodes "no proposal". The lexicographic order
    prp1 ≤lex prp2 ⟺ phase1 < phase2, or phases equal and set1 ≤lex set2,
    lets every participant select the same maximal proposal
    deterministically. *)

open Sim

type phase = P0 | P1 | P2

type t = {
  phase : phase;
  set : Pid.Set.t option;  (** [None] is the paper's ⊥ *)
}

(** ⟨0, ⊥⟩ — the paper's [dfltNtf]. *)
val default : t

val make : phase -> Pid.Set.t -> t
val phase_to_int : phase -> int

(** [equal]/[compare] take a physical-equality fast path first; interned
    notifications ({!intern}) usually decide in one pointer compare. *)

val equal : t -> t -> bool

val compare : t -> t -> int

(** [intern n] is the canonical physically-shared representative of [n]
    (see {!Intern}); {!default} is its own representative. *)
val intern : t -> t

(** [is_default n] — [n] encodes "no proposal". *)
val is_default : t -> bool

(** Type-1 stale information: phase 0 with a non-⊥ set, or an active phase
    with no set / an empty set. *)
val malformed : t -> bool

(** [degree n ~all] = 2·phase + (1 if [all]) — the paper's [degree(k)]. *)
val degree : t -> all:bool -> int

(** [max_of l] is the lexicographically maximal non-default notification in
    [l], or [None] if all are default — the paper's [maxNtf()]. *)
val max_of : t list -> t option

val pp : Format.formatter -> t -> unit
