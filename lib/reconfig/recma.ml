open Sim

type message = { m_no_maj : bool; m_need_reconf : bool }

type t = {
  ma_self : Pid.t;
  mutable no_maj : bool Pid.Map.t; (* noMaj[] *)
  mutable need_reconf : bool Pid.Map.t; (* needReconf[] *)
  mutable prev_config : Config_value.t option;
  mutable triggers : int;
  mutable attempts : int;
}

let create ~self =
  {
    ma_self = self;
    no_maj = Pid.Map.empty;
    need_reconf = Pid.Map.empty;
    prev_config = None;
    triggers = 0;
    attempts = 0;
  }

let flush_flags t =
  t.no_maj <- Pid.Map.empty;
  t.need_reconf <- Pid.Map.empty

let flag m p = match Pid.Map.find_opt p m with Some b -> b | None -> false

let core t ~trusted ~recsa =
  let part = Recsa.participants recsa ~trusted in
  Pid.Set.fold
    (fun p acc ->
      let fd_p =
        if Pid.equal p t.ma_self then Some trusted else Recsa.peer_fd recsa p
      in
      match fd_p with
      (* interning makes the common steady-state case — every participant's
         fd is the same canonical set — a pointer comparison *)
      | Some s when s == acc -> acc
      | Some s -> Pid.Set.inter acc s
      | None -> Pid.Set.empty)
    part
    (* start from the participant set itself; the intersection can only
       shrink *)
    part

let trigger t ~trusted ~recsa reason events =
  t.attempts <- t.attempts + 1;
  (* the proposed set is FD[i].part — the trusted participants (line 13) *)
  let proposal = Recsa.participants recsa ~trusted in
  if Recsa.estab recsa ~trusted proposal then begin
    t.triggers <- t.triggers + 1;
    events := ("recma.trigger", reason) :: !events
  end;
  flush_flags t

let tick t ?(quorum = (module Quorum.Majority : Quorum.SYSTEM)) ~trusted ~recsa
    ~eval_conf () =
  let module Q = (val quorum : Quorum.SYSTEM) in
  let events = ref [] in
  let part = Recsa.participants recsa ~trusted in
  if not (Pid.Set.mem t.ma_self part) then ([], List.rev !events)
  else begin
    let cur_conf = Recsa.get_config recsa ~trusted in
    (* line 8: own flags restart every iteration *)
    t.no_maj <- Pid.Map.add t.ma_self false t.no_maj;
    t.need_reconf <- Pid.Map.add t.ma_self false t.need_reconf;
    (* line 9: flags are stale after a configuration change *)
    (match t.prev_config with
    | Some prev
      when (not (Config_value.equal prev cur_conf))
           && not (Config_value.is_reset prev) ->
      flush_flags t
    | Some _ | None -> ());
    (if Recsa.no_reco recsa ~trusted then begin
       t.prev_config <- Some cur_conf;
       match Config_value.to_set cur_conf with
       | None -> ()
       | Some members ->
         (* line 12: do we see a quorum of configuration members? (the
            paper uses majorities; any intersecting quorum system works) *)
         if not (Q.is_quorum ~config:members trusted) then
           t.no_maj <- Pid.Map.add t.ma_self true t.no_maj;
         let co = core t ~trusted ~recsa in
         if
           flag t.no_maj t.ma_self
           && Pid.Set.cardinal co > 1
           && Pid.Set.for_all (fun p -> flag t.no_maj p) co
         then trigger t ~trusted ~recsa "majority collapse" events
         else begin
           (* line 16: prediction-function path *)
           let wants = eval_conf members in
           t.need_reconf <- Pid.Map.add t.ma_self wants t.need_reconf;
           let supporters =
             Pid.Set.filter (fun p -> flag t.need_reconf p)
               (Pid.Set.inter members trusted)
           in
           if wants && Q.is_quorum ~config:members supporters then
             trigger t ~trusted ~recsa "majority prediction" events
         end
     end);
    let msg =
      {
        m_no_maj = flag t.no_maj t.ma_self;
        m_need_reconf = flag t.need_reconf t.ma_self;
      }
    in
    let out =
      Pid.Set.fold
        (fun p acc -> if Pid.equal p t.ma_self then acc else (p, msg) :: acc)
        part []
    in
    (out, List.rev !events)
  end

let receive t ~from ~participant m =
  (* line 20: only participants consume recMA exchanges *)
  if participant then begin
    t.no_maj <- Pid.Map.add from m.m_no_maj t.no_maj;
    t.need_reconf <- Pid.Map.add from m.m_need_reconf t.need_reconf
  end

let trigger_count t = t.triggers
let attempt_count t = t.attempts

let corrupt t ~no_maj ~need_reconf =
  List.iter (fun (p, b) -> t.no_maj <- Pid.Map.add p b t.no_maj) no_maj;
  List.iter (fun (p, b) -> t.need_reconf <- Pid.Map.add p b t.need_reconf) need_reconf

let pp fmt t =
  let pp_flags fmt m =
    Pid.Map.iter (fun p b -> Format.fprintf fmt "p%a:%b " Pid.pp p b) m
  in
  Format.fprintf fmt "recMA(p%a) noMaj=[%a] needReconf=[%a]" Pid.pp t.ma_self
    pp_flags t.no_maj pp_flags t.need_reconf
