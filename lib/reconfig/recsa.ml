open Sim

type echo_view = { e_part : Pid.Set.t; e_prp : Notification.t; e_all : bool }

type message = {
  m_fd : Pid.Set.t;
  m_part : Pid.Set.t;
  m_config : Config_value.t;
  m_prp : Notification.t;
  m_all : bool;
  m_echo : echo_view option;
}

type peer_view = {
  p_fd : Pid.Set.t;
  p_part : Pid.Set.t;
  p_config : Config_value.t;
  p_prp : Notification.t;
  p_all : bool;
  p_echo : echo_view option;
}

type t = {
  sa_self : Pid.t;
  mutable sa_config : Config_value.t;
  mutable sa_prp : Notification.t;
  mutable sa_all : bool;
  mutable sa_allseen : Pid.Set.t;
  mutable peers : peer_view Pid.Map.t;
  mutable resets : int;
  mutable installs : int;
}

let create ~self ~participant ?initial_config () =
  let config =
    if not participant then Config_value.Not_participant
    else
      match initial_config with
      | Some s -> Config_value.of_set s
      | None -> Config_value.Reset
  in
  {
    sa_self = self;
    sa_config = config;
    sa_prp = Notification.default;
    sa_all = false;
    sa_allseen = Pid.Set.empty;
    peers = Pid.Map.empty;
    resets = 0;
    installs = 0;
  }

let self t = t.sa_self
let config t = t.sa_config
let prp t = t.sa_prp
let all_flag t = t.sa_all
let all_seen t = t.sa_allseen
let is_participant t = not (Config_value.is_not_participant t.sa_config)
let reset_count t = t.resets
let install_count t = t.installs

(* FD[i].part = {pj in FD[i] : config[j] <> #}; our own entry counts iff we
   are a participant. *)
let participants t ~trusted =
  (* interned: the result is compared against gossiped [part] descriptors on
     every message, and interning makes those comparisons pointer-equality *)
  Intern.pid_set
    (Pid.Set.filter
       (fun p ->
         if Pid.equal p t.sa_self then is_participant t
         else
           match Pid.Map.find_opt p t.peers with
           | Some pv -> not (Config_value.is_not_participant pv.p_config)
           | None -> false)
       trusted)

(* Every (non-#) configuration value visible locally: own + received from
   trusted processors. *)
let visible_configs t ~trusted =
  let received =
    Pid.Map.fold
      (fun p pv acc -> if Pid.Set.mem p trusted then pv.p_config :: acc else acc)
      t.peers []
  in
  t.sa_config :: received

let distinct_sets values =
  List.fold_left
    (fun acc v ->
      match v with
      | Config_value.Set s ->
        if List.exists (Intern.set_equal s) acc then acc else s :: acc
      | Config_value.Not_participant | Config_value.Reset -> acc)
    [] values

let exists_reset values = List.exists Config_value.is_reset values

(* choose({config[k]} \ {#}): deterministically prefer the lexicographically
   smallest proper set; fall back to bot when only resets (or nothing) are
   visible. *)
let chs_config t ~trusted =
  let values = visible_configs t ~trusted in
  match distinct_sets values with
  | [] -> Config_value.Reset
  | sets ->
    let smallest =
      List.fold_left
        (fun acc s ->
          match acc with
          | None -> Some s
          | Some best -> if Pid.compare_sets_lex s best < 0 then Some s else acc)
        None sets
    in
    (match smallest with Some s -> Config_value.Set s | None -> Config_value.Reset)

let peer_views t ~part =
  Pid.Set.fold
    (fun p acc ->
      if Pid.equal p t.sa_self then acc
      else
        match Pid.Map.find_opt p t.peers with
        | Some pv -> (p, pv) :: acc
        | None -> acc)
    part []

(* same(k): pk's most recently received (part, prp) match ours. *)
let same t ~part pv =
  Intern.set_equal pv.p_part part && Notification.equal pv.p_prp t.sa_prp

(* echoNoAll: pk echoed our (part, prp). *)
let echo_no_all t ~part pv =
  match pv.p_echo with
  | None -> false
  | Some e -> Intern.set_equal e.e_part part && Notification.equal e.e_prp t.sa_prp

(* echo(): pk echoed our full (part, prp, all) triple. *)
let echo_full t ~part pv =
  match pv.p_echo with
  | None -> false
  | Some e ->
    Intern.set_equal e.e_part part
    && Notification.equal e.e_prp t.sa_prp
    && Bool.equal e.e_all t.sa_all

let no_reco t ~trusted =
  let part = participants t ~trusted in
  let views = peer_views t ~part in
  (* all participants have reported (they are in part only if their config
     was received, so views covers part \ {self}) *)
  let recognized = List.for_all (fun (_, pv) -> Pid.Set.mem t.sa_self pv.p_fd) views in
  let values = visible_configs t ~trusted in
  let no_conflict = List.length (distinct_sets values) <= 1 in
  let no_reset = not (exists_reset values) in
  let parts_stable =
    List.for_all (fun (_, pv) -> Intern.set_equal pv.p_part part) views
    (* peers can only echo our values if we broadcast, i.e. participate *)
    && ((not (is_participant t))
       || List.for_all
            (fun (_, pv) ->
              match pv.p_echo with
              | Some e -> Intern.set_equal e.e_part part
              | None -> false)
            views)
  in
  let no_notification =
    Notification.is_default t.sa_prp
    && List.for_all (fun (_, pv) -> Notification.is_default pv.p_prp) views
  in
  recognized && no_conflict && no_reset && parts_stable && no_notification

let get_config t ~trusted =
  if no_reco t ~trusted then chs_config t ~trusted else t.sa_config

(* configSet(val): wrapper for the whole local config array; also clears all
   local notifications (line 21 of the pseudocode). *)
let config_set t value =
  let value = Config_value.intern value in
  t.sa_config <- value;
  t.sa_prp <- Notification.default;
  t.sa_all <- false;
  t.sa_allseen <- Pid.Set.empty;
  t.peers <-
    Pid.Map.map
      (fun pv -> { pv with p_config = value; p_prp = Notification.default })
      t.peers

let start_reset t reason events =
  if not (Config_value.is_reset t.sa_config) then begin
    t.resets <- t.resets + 1;
    events := ("recsa.reset", reason) :: !events
  end;
  config_set t Config_value.Reset

(* Entering a notification state: installing happens on entry to phase 2,
   whether by own increment or by adopting a phase-2 notification. *)
let advance_to t (n : Notification.t) events =
  let n = Notification.intern n in
  (match (n.Notification.phase, n.Notification.set) with
  | Notification.P2, Some s ->
    if not (Config_value.equal t.sa_config (Config_value.Set s)) then begin
      t.installs <- t.installs + 1;
      events :=
        ("recsa.install", Format.asprintf "%a" Pid.pp_set s) :: !events
    end;
    t.sa_config <- Config_value.of_set s
  | _ -> ());
  t.sa_prp <- n;
  t.sa_all <- false;
  t.sa_allseen <- Pid.Set.empty

let finish_replacement t events =
  events := ("recsa.phase0", "replacement complete") :: !events;
  t.sa_prp <- Notification.default;
  t.sa_all <- false;
  t.sa_allseen <- Pid.Set.empty

(* Stale-information tests of Definition 3.1 that are valid in every state
   (configuration disagreement, by contrast, is normal while a replacement
   is mid-flight, so the conflict test lives in the no-notification branch,
   as in line 26 of the pseudocode). *)
let stale_check_always t ~part events =
  (* type-2 (own): an empty configuration set is never legal *)
  let own_empty =
    match t.sa_config with
    | Config_value.Set s -> Pid.Set.is_empty s
    | Config_value.Not_participant | Config_value.Reset -> false
  in
  (* type-3: two phase-2 notifications with distinct sets *)
  let phase2_sets =
    let collect acc (n : Notification.t) =
      match (n.phase, n.set) with
      | Notification.P2, Some s ->
        if List.exists (Intern.set_equal s) acc then acc else s :: acc
      | _ -> acc
    in
    let acc = collect [] t.sa_prp in
    List.fold_left (fun acc (_, pv) -> collect acc pv.p_prp) acc (peer_views t ~part)
  in
  let notif_conflict = List.length phase2_sets > 1 in
  if own_empty then begin
    events := ("recsa.stale", "type-2") :: !events;
    start_reset t "empty config" events
  end
  else if notif_conflict then begin
    events := ("recsa.stale", "type-3") :: !events;
    start_reset t "conflicting phase-2 notifications" events
  end

(* Stale-information tests that only apply outside replacements. *)
let stale_check_quiet t ~trusted ~part events =
  let values = visible_configs t ~trusted in
  let conflict = List.length (distinct_sets values) > 1 in
  (* type-4: stable view but the configuration has no live participant *)
  let views = peer_views t ~part in
  let fd_stable =
    (not (Pid.Set.is_empty part))
    && Pid.Set.cardinal part > 1
    && List.length views = Pid.Set.cardinal (Pid.Set.remove t.sa_self part)
    && List.for_all
         (fun (_, pv) ->
           Intern.set_equal pv.p_fd trusted && Intern.set_equal pv.p_part part)
         views
  in
  let dead_config =
    match t.sa_config with
    | Config_value.Set s -> fd_stable && Pid.Set.is_empty (Pid.Set.inter s part)
    | Config_value.Not_participant | Config_value.Reset -> false
  in
  if conflict then begin
    events := ("recsa.stale", "type-2") :: !events;
    start_reset t "config conflict" events
  end
  else if dead_config then begin
    events := ("recsa.stale", "type-4") :: !events;
    start_reset t "config has no live participant" events
  end

let max_notification t ~part =
  let own = if Pid.Set.mem t.sa_self part then [ t.sa_prp ] else [] in
  let received = List.map (fun (_, pv) -> pv.p_prp) (peer_views t ~part) in
  Notification.max_of (own @ received)

(* Brute-force stabilization (line 26): during a reset, wait until every
   trusted processor reports the same failure-detector set, then adopt that
   set as the configuration. *)
let brute_force t ~trusted events =
  if Config_value.is_reset t.sa_config then begin
    let others = Pid.Set.remove t.sa_self trusted in
    let agreement =
      Pid.Set.for_all
        (fun p ->
          match Pid.Map.find_opt p t.peers with
          | Some pv -> Intern.set_equal pv.p_fd trusted
          | None -> false)
        others
    in
    if agreement then begin
      config_set t (Config_value.Set trusted);
      events :=
        ("recsa.brute_force", Format.asprintf "config <- %a" Pid.pp_set trusted)
        :: !events
    end
  end

(* One unison step of the delicate-replacement automaton (line 28). *)
let delicate t ~part max_ntf events =
  (* A lingering phase-2 notification whose set we already installed is the
     tail of a completed replacement, not a new one. *)
  let already_installed =
    Notification.is_default t.sa_prp
    && max_ntf.Notification.phase = Notification.P2
    &&
    match max_ntf.Notification.set with
    | Some s -> Config_value.equal t.sa_config (Config_value.Set s)
    | None -> false
  in
  if already_installed then ()
  else begin
  (* Converge on the lexicographically maximal notification. *)
  if Notification.compare t.sa_prp max_ntf < 0 then begin
    events :=
      ("recsa.adopt", Format.asprintf "%a" Notification.pp max_ntf) :: !events;
    advance_to t max_ntf events
  end;
  (* Follow a completed cycle: a peer already returned to phase 0 with our
     proposed set installed. *)
  (match (t.sa_prp.Notification.phase, t.sa_prp.Notification.set) with
  | (Notification.P1 | Notification.P2), Some s ->
    let completed =
      List.exists
        (fun (_, pv) ->
          Notification.is_default pv.p_prp
          && Config_value.equal pv.p_config (Config_value.Set s))
        (peer_views t ~part)
    in
    if completed then begin
      if not (Config_value.equal t.sa_config (Config_value.Set s)) then begin
        t.installs <- t.installs + 1;
        events := ("recsa.install", Format.asprintf "%a" Pid.pp_set s) :: !events
      end;
      t.sa_config <- Config_value.of_set s;
      finish_replacement t events
    end
  | _ -> ());
  if not (Notification.is_default t.sa_prp) then begin
    let views = peer_views t ~part in
    (* all[i] <- every participant reports and echoes our (part, prp) *)
    let complete_views = List.length views = Pid.Set.cardinal (Pid.Set.remove t.sa_self part) in
    t.sa_all <-
      complete_views
      && List.for_all (fun (_, pv) -> echo_no_all t ~part pv && same t ~part pv) views;
    (* accumulate allSeen: peers that reported all[k] for our notification *)
    List.iter
      (fun (p, pv) ->
        if same t ~part pv && pv.p_all then t.sa_allseen <- Pid.Set.add p t.sa_allseen)
      views;
    let echo_ok = complete_views && List.for_all (fun (_, pv) -> echo_full t ~part pv) views in
    let allseen_ok =
      let seen = if t.sa_all then Pid.Set.add t.sa_self t.sa_allseen else t.sa_allseen in
      Pid.Set.subset part seen
    in
    if echo_ok && allseen_ok then begin
      match t.sa_prp.Notification.phase with
      | Notification.P1 ->
        (match t.sa_prp.Notification.set with
        | Some s ->
          events := ("recsa.phase2", Format.asprintf "%a" Pid.pp_set s) :: !events;
          advance_to t { Notification.phase = Notification.P2; set = Some s } events
        | None -> t.sa_prp <- Notification.default)
      | Notification.P2 -> finish_replacement t events
      | Notification.P0 -> t.sa_prp <- Notification.default
    end
  end
  end

let tick t ~trusted =
  let events = ref [] in
  (* line 25 prologue: clean state about processors we no longer trust *)
  t.peers <- Pid.Map.filter (fun p _ -> Pid.Set.mem p trusted) t.peers;
  (* type-1 cleaning: malformed notifications are normalized, never kept *)
  if Notification.malformed t.sa_prp then begin
    events := ("recsa.stale", "type-1") :: !events;
    t.sa_prp <- Notification.default
  end;
  t.peers <-
    Pid.Map.map
      (fun pv ->
        if Notification.malformed pv.p_prp then begin
          events := ("recsa.stale", "type-1") :: !events;
          { pv with p_prp = Notification.default }
        end
        else pv)
      t.peers;
  (* a non-participant observing a reset joins it (brute force includes all
     active processors) *)
  (if Config_value.is_not_participant t.sa_config then
     let reset_visible =
       Pid.Map.exists
         (fun p pv -> Pid.Set.mem p trusted && Config_value.is_reset pv.p_config)
         t.peers
     in
     if reset_visible then begin
       t.sa_config <- Config_value.Reset;
       events := ("recsa.join_reset", "") :: !events
     end);
  let part = participants t ~trusted in
  stale_check_always t ~part events;
  let part = participants t ~trusted in
  (match max_notification t ~part with
  | None ->
    stale_check_quiet t ~trusted ~part events;
    brute_force t ~trusted events
  | Some max_ntf -> if is_participant t then delicate t ~part max_ntf events);
  List.rev !events

let broadcast t ~trusted =
  if not (is_participant t) then []
  else begin
    let part = participants t ~trusted in
    Pid.Set.fold
      (fun p acc ->
        if Pid.equal p t.sa_self then acc
        else
          let echo =
            match Pid.Map.find_opt p t.peers with
            | Some pv ->
              Some { e_part = pv.p_part; e_prp = pv.p_prp; e_all = pv.p_all }
            | None -> None
          in
          ( p,
            {
              m_fd = trusted;
              m_part = part;
              m_config = t.sa_config;
              m_prp = t.sa_prp;
              m_all = t.sa_all;
              m_echo = echo;
            } )
          :: acc)
      trusted []
  end

let receive t ~from m =
  (* Intern every descriptor as it comes off the wire: this is the single
     choke point that makes all downstream Definition 3.1 comparisons
     pointer-equality in the steady state. *)
  let prp = if Notification.malformed m.m_prp then Notification.default else m.m_prp in
  let echo =
    match m.m_echo with
    | None -> None
    | Some e ->
      Some
        {
          e_part = Intern.pid_set e.e_part;
          e_prp = Notification.intern e.e_prp;
          e_all = e.e_all;
        }
  in
  t.peers <-
    Pid.Map.add from
      {
        p_fd = Intern.pid_set m.m_fd;
        p_part = Intern.pid_set m.m_part;
        p_config = Config_value.intern m.m_config;
        p_prp = Notification.intern prp;
        p_all = m.m_all;
        p_echo = echo;
      }
      t.peers

let estab t ~trusted set =
  if
    no_reco t ~trusted
    && (not (Pid.Set.is_empty set))
    && not (Config_value.equal t.sa_config (Config_value.Set set))
  then begin
    t.sa_prp <- Notification.intern (Notification.make Notification.P1 set);
    t.sa_all <- false;
    t.sa_allseen <- Pid.Set.empty;
    true
  end
  else false

let participate t ~trusted =
  if is_participant t then true
  else if no_reco t ~trusted then begin
    t.sa_config <- Config_value.intern (chs_config t ~trusted);
    is_participant t
  end
  else false

type stale_type = Type1 | Type2 | Type3 | Type4

let pp_stale_type fmt = function
  | Type1 -> Format.fprintf fmt "type-1"
  | Type2 -> Format.fprintf fmt "type-2"
  | Type3 -> Format.fprintf fmt "type-3"
  | Type4 -> Format.fprintf fmt "type-4"

(* Definition 3.1, as a pure classification of the current local state. *)
let stale_types t ~trusted =
  let part = participants t ~trusted in
  let views = peer_views t ~part in
  let type1 =
    Notification.malformed t.sa_prp
    || List.exists (fun (_, pv) -> Notification.malformed pv.p_prp) views
  in
  let values = visible_configs t ~trusted in
  let type2 =
    exists_reset values
    || List.length (distinct_sets values) > 1
    || List.exists
         (function Config_value.Set s -> Pid.Set.is_empty s | _ -> false)
         values
  in
  let phase2_sets =
    let collect acc (n : Notification.t) =
      match (n.phase, n.set) with
      | Notification.P2, Some s ->
        if List.exists (Intern.set_equal s) acc then acc else s :: acc
      | _ -> acc
    in
    List.fold_left (fun acc (_, pv) -> collect acc pv.p_prp) (collect [] t.sa_prp) views
  in
  let type3 = List.length phase2_sets > 1 in
  let fd_stable =
    Pid.Set.cardinal part > 1
    && List.length views = Pid.Set.cardinal (Pid.Set.remove t.sa_self part)
    && List.for_all
         (fun (_, pv) ->
           Intern.set_equal pv.p_fd trusted && Intern.set_equal pv.p_part part)
         views
  in
  let type4 =
    match t.sa_config with
    | Config_value.Set s -> fd_stable && Pid.Set.is_empty (Pid.Set.inter s part)
    | Config_value.Not_participant | Config_value.Reset -> false
  in
  List.filter_map
    (fun (present, ty) -> if present then Some ty else None)
    [ (type1, Type1); (type2, Type2); (type3, Type3); (type4, Type4) ]

let peer_fd t p = Option.map (fun pv -> pv.p_fd) (Pid.Map.find_opt p t.peers)

let peer_config t p =
  Option.map (fun pv -> pv.p_config) (Pid.Map.find_opt p t.peers)

let corrupt t ?config ?prp ?all ?allseen () =
  (match config with Some c -> t.sa_config <- c | None -> ());
  (match prp with Some n -> t.sa_prp <- n | None -> ());
  (match all with Some a -> t.sa_all <- a | None -> ());
  match allseen with Some s -> t.sa_allseen <- s | None -> ()

let clear_peers t = t.peers <- Pid.Map.empty

let pp fmt t =
  Format.fprintf fmt "recSA(p%a) config=%a prp=%a all=%b allSeen=%a" Pid.pp
    t.sa_self Config_value.pp t.sa_config Notification.pp t.sa_prp t.sa_all
    Pid.pp_set t.sa_allseen
