open Sim

type t = {
  sc_name : string;
  sc_members : Pid.t list;
  sc_seed : int;
  sc_capacity : int;
  sc_loss : float;
  sc_theta : int;
  sc_n_bound : int;
  sc_quorum : (module Quorum.SYSTEM);
  sc_plan : Faults.Fault_plan.t option;
  sc_jobs : int option;
  sc_metrics_out : string option;
  sc_metrics_jsonl : string option;
  sc_trace_out : string option;
}

let default_members n = List.init n (fun i -> i + 1)

let make ?(name = "scenario") ?members ?(seed = 42) ?(capacity = 8) ?(loss = 0.02)
    ?(theta = 4) ?n_bound ?(quorum = (module Quorum.Majority : Quorum.SYSTEM)) ?plan
    ?jobs ?metrics_out ?metrics_jsonl ?trace_out ?nodes () =
  let members =
    match (members, nodes) with
    | Some l, _ -> l
    | None, Some n -> default_members n
    | None, None -> invalid_arg "Scenario.make: pass ~nodes or ~members"
  in
  if members = [] then invalid_arg "Scenario.make: empty member list";
  let n_bound = match n_bound with Some b -> b | None -> 2 * List.length members in
  if n_bound <= 0 then invalid_arg "Scenario.make: n_bound must be positive";
  {
    sc_name = name;
    sc_members = members;
    sc_seed = seed;
    sc_capacity = capacity;
    sc_loss = loss;
    sc_theta = theta;
    sc_n_bound = n_bound;
    sc_quorum = quorum;
    sc_plan = plan;
    sc_jobs = jobs;
    sc_metrics_out = metrics_out;
    sc_metrics_jsonl = metrics_jsonl;
    sc_trace_out = trace_out;
  }

let nodes t = List.length t.sc_members
let with_name t name = { t with sc_name = name }

let with_members t members =
  if members = [] then invalid_arg "Scenario.with_members: empty member list";
  { t with sc_members = members }

let with_nodes t n =
  let t = with_members t (default_members n) in
  { t with sc_n_bound = max t.sc_n_bound (2 * n) }

let with_seed t seed = { t with sc_seed = seed }
let with_loss t loss = { t with sc_loss = loss }

let with_n_bound t n_bound =
  if n_bound <= 0 then invalid_arg "Scenario.with_n_bound: must be positive";
  { t with sc_n_bound = n_bound }

let with_quorum t quorum = { t with sc_quorum = quorum }
let with_plan t plan = { t with sc_plan = plan }
let with_jobs t jobs = { t with sc_jobs = jobs }

let pp fmt t =
  Format.fprintf fmt "%s: n=%d seed=%d cap=%d loss=%g theta=%d N=%d%s" t.sc_name
    (nodes t) t.sc_seed t.sc_capacity t.sc_loss t.sc_theta t.sc_n_bound
    (match t.sc_plan with
    | Some p -> Printf.sprintf " plan(%d events)" (List.length p.Faults.Fault_plan.entries)
    | None -> "")
