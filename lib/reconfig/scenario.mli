(** One value that describes a whole run — the unified configuration API.

    Historically every entry point grew its own positional argument list
    (topology here, seed there, sink paths in the CLI only). A
    [Scenario.t] gathers all of it: topology, scheme knobs, the fault
    plan, and metrics/trace sinks. [Stack.of_scenario] and
    [Stack_loop.of_scenario] consume it directly; the [bin/] subcommands
    build one from shared flags ([Cli_common]); the harness derives
    per-cell scenarios from it. The record is deliberately concrete —
    a scenario is configuration data, and pattern matching on it is the
    point — with {!make} and the [with_*] functional updates as the
    builder API. *)

open Sim

type t = {
  sc_name : string;  (** label for traces/exports *)
  sc_members : Pid.t list;  (** initial participants *)
  sc_seed : int;  (** runtime schedule seed *)
  sc_capacity : int;  (** channel capacity (the paper's [cap]) *)
  sc_loss : float;  (** global message-loss probability (simulator) *)
  sc_theta : int;  (** failure-detector threshold *)
  sc_n_bound : int;  (** the paper's [N]: bound on processor count *)
  sc_quorum : (module Quorum.SYSTEM);
  sc_plan : Faults.Fault_plan.t option;  (** fault schedule, if any *)
  sc_jobs : int option;  (** harness parallelism; [None] = all cores *)
  sc_metrics_out : string option;  (** Prometheus text sink *)
  sc_metrics_jsonl : string option;  (** JSONL metrics sink *)
  sc_trace_out : string option;  (** trace sink *)
}

val default_members : int -> Pid.t list
(** [default_members n] — pids [1..n]. *)

val make :
  ?name:string ->
  ?members:Pid.t list ->
  ?seed:int ->
  ?capacity:int ->
  ?loss:float ->
  ?theta:int ->
  ?n_bound:int ->
  ?quorum:(module Quorum.SYSTEM) ->
  ?plan:Faults.Fault_plan.t ->
  ?jobs:int ->
  ?metrics_out:string ->
  ?metrics_jsonl:string ->
  ?trace_out:string ->
  ?nodes:int ->
  unit ->
  t
(** Defaults mirror the historical [Stack.create] defaults: [seed 42],
    [capacity 8], [loss 0.02], [theta 4], [quorum Majority],
    [members = default_members nodes], [n_bound = 2 * nodes]. At least one
    of [nodes] and [members] must be given. Raises [Invalid_argument] when
    neither is, the member list is empty, or [n_bound] is not positive. *)

val nodes : t -> int
(** Number of initial members. *)

(** {2 Functional updates} *)

val with_name : t -> string -> t
val with_members : t -> Pid.t list -> t

val with_nodes : t -> int -> t
(** Re-derives [sc_members] via {!default_members} and scales [sc_n_bound]
    to [2 * n] unless it was large enough already. *)

val with_seed : t -> int -> t
val with_loss : t -> float -> t
val with_n_bound : t -> int -> t
val with_quorum : t -> (module Quorum.SYSTEM) -> t
val with_plan : t -> Faults.Fault_plan.t option -> t
val with_jobs : t -> int option -> t

val pp : Format.formatter -> t -> unit
