open Sim

type ('app, 'msg) message =
  | Heartbeat
  | Snap of Datalink.Snap_link.msg
  | Sa of Recsa.message
  | Ma of Recma.message
  | Join of 'app Join.message
  | App of 'msg

type 'app node_state = {
  fd : Detector.Theta_fd.t;
  sa : Recsa.t;
  ma : Recma.t;
  join : 'app Join.t;
  mutable app : 'app;
  mutable seeds : Pid.Set.t;
  mutable snap : Datalink.Snap_link.t Pid.Map.t;
  joiner : bool;
  mutable tele_phase : Notification.phase;
}

type scheme_view = {
  v_self : Pid.t;
  v_trusted : Pid.Set.t;
  v_recsa : Recsa.t;
  v_emit : string -> string -> unit;
  v_now : float;
  v_rng : Rng.t;
  v_metrics : Metrics.t;
  v_telemetry : Telemetry.t;
}

(* --- derived views of the scheme state (Figure 1's getConfig()/noReco()
   read interfaces), shared by every service plugin --- *)

module View = struct
  let current_members v =
    if Recsa.no_reco v.v_recsa ~trusted:v.v_trusted then
      Config_value.to_set (Recsa.get_config v.v_recsa ~trusted:v.v_trusted)
    else None

  let participants v = Recsa.participants v.v_recsa ~trusted:v.v_trusted
  let config_set v = Config_value.to_set (Recsa.config v.v_recsa)

  let is_member v =
    match current_members v with
    | Some members -> Pid.Set.mem v.v_self members
    | None -> false
end

module Plugin = struct
  type ('app, 'msg) t = {
    p_init : Pid.t -> 'app;
    p_tick : scheme_view -> 'app -> 'app * (Pid.t * 'msg) list;
    p_recv : scheme_view -> from:Pid.t -> 'msg -> 'app -> 'app * (Pid.t * 'msg) list;
    p_merge : self:Pid.t -> 'app -> 'app Pid.Map.t -> 'app;
    p_corrupt : Rng.t -> 'app -> 'app;
  }

  let null =
    {
      p_init = (fun _ -> ());
      p_tick = (fun _ app -> (app, []));
      p_recv = (fun _ ~from:_ _ app -> (app, []));
      p_merge = (fun ~self:_ app _ -> app);
      p_corrupt = (fun _ app -> app);
    }

  let map ~state ~state_back ~msg ~msg_back p =
    let out l = List.map (fun (d, m) -> (d, msg m)) l in
    {
      p_init = (fun pid -> state (p.p_init pid));
      p_tick =
        (fun v app ->
          let a, l = p.p_tick v (state_back app) in
          (state a, out l));
      p_recv =
        (fun v ~from m app ->
          match msg_back m with
          | None -> (app, [])
          | Some m ->
            let a, l = p.p_recv v ~from m (state_back app) in
            (state a, out l));
      p_merge =
        (fun ~self app others ->
          state (p.p_merge ~self (state_back app) (Pid.Map.map state_back others)));
      p_corrupt = (fun rng app -> state (p.p_corrupt rng (state_back app)));
    }

  let pair pa pb =
    let fst_out l = List.map (fun (d, m) -> (d, `Fst m)) l in
    let snd_out l = List.map (fun (d, m) -> (d, `Snd m)) l in
    {
      p_init = (fun pid -> (pa.p_init pid, pb.p_init pid));
      p_tick =
        (fun v (a, b) ->
          let a', la = pa.p_tick v a in
          let b', lb = pb.p_tick v b in
          ((a', b'), fst_out la @ snd_out lb));
      p_recv =
        (fun v ~from m (a, b) ->
          match m with
          | `Fst m ->
            let a', l = pa.p_recv v ~from m a in
            ((a', b), fst_out l)
          | `Snd m ->
            let b', l = pb.p_recv v ~from m b in
            ((a, b'), snd_out l));
      p_merge =
        (fun ~self (a, b) others ->
          ( pa.p_merge ~self a (Pid.Map.map fst others),
            pb.p_merge ~self b (Pid.Map.map snd others) ));
      p_corrupt =
        (fun rng (a, b) ->
          let a = pa.p_corrupt rng a in
          (a, pb.p_corrupt rng b));
    }

  let stack ~lower ~get ~set ~wrap ~unwrap upper =
    let out l = List.map (fun (d, m) -> (d, wrap m)) l in
    {
      p_init = (fun pid -> set (upper.p_init pid) (lower.p_init pid));
      p_tick =
        (fun v st ->
          let a, la = lower.p_tick v (get st) in
          let st = set st a in
          let st, ua = upper.p_tick v st in
          (st, out la @ ua));
      p_recv =
        (fun v ~from m st ->
          match unwrap m with
          | Some lm ->
            let a, l = lower.p_recv v ~from lm (get st) in
            (set st a, out l)
          | None -> upper.p_recv v ~from m st);
      p_merge =
        (fun ~self st others ->
          let a = lower.p_merge ~self (get st) (Pid.Map.map get others) in
          upper.p_merge ~self (set st a) others);
      p_corrupt =
        (fun rng st ->
          let st = set st (lower.p_corrupt rng (get st)) in
          upper.p_corrupt rng st);
    }
end

type ('app, 'msg) plugin = ('app, 'msg) Plugin.t = {
  p_init : Pid.t -> 'app;
  p_tick : scheme_view -> 'app -> 'app * (Pid.t * 'msg) list;
  p_recv : scheme_view -> from:Pid.t -> 'msg -> 'app -> 'app * (Pid.t * 'msg) list;
  p_merge : self:Pid.t -> 'app -> 'app Pid.Map.t -> 'app;
  p_corrupt : Rng.t -> 'app -> 'app;
}

type ('app, 'msg) hooks = {
  eval_conf : self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool;
  pass_query : self:Pid.t -> joiner:Pid.t -> bool;
  plugin : ('app, 'msg) plugin;
}

let null_plugin = Plugin.null

let unit_hooks =
  {
    eval_conf = (fun ~self:_ ~trusted:_ _ -> false);
    pass_query = (fun ~self:_ ~joiner:_ -> true);
    plugin = null_plugin;
  }

(* The uniform shape every Section-4 service module exposes; see the
   matching module type in stack.mli. *)
module type SERVICE = sig
  type state
  type msg

  val name : string
  val plugin : (state, msg) Plugin.t
  val hooks : (state, msg) hooks
  val corrupt : Rng.t -> state -> state
  val declare_metrics : Telemetry.t -> unit
end

let default_eval_conf ?(fraction = 0.25) () ~self:_ ~trusted members =
  let total = Pid.Set.cardinal members in
  if total = 0 then false
  else
    let missing = total - Pid.Set.cardinal (Pid.Set.inter members trusted) in
    float_of_int missing >= fraction *. float_of_int total

(* A joiner uses a link only once its cleaning handshake completed
   (Section 2: every established data link is initialized and cleaned
   straight after it is established). Gating is per link: a handshake with
   a processor that crashed mid-join simply never completes and that link
   is never used. Established members' links predate the run and need no
   handshake. *)
let link_clean n peer =
  (not n.joiner)
  ||
  match Pid.Map.find_opt peer n.snap with
  | Some s -> Datalink.Snap_link.phase s = Datalink.Snap_link.Clean_done
  | None -> false

(* a deterministic handshake instance identifier for the pair: the two pids
   packed side by side ([Pid.key_bits] each), collision-free over the whole
   pid range — a multiplicative mix would collide once pids reach the
   multiplier *)
let snap_nonce ~self ~peer = (self lsl Pid.key_bits) lor peer

(* Pre-register every telemetry family the scheme can emit, so exporters
   list a stable schema even for runs where an event never fires. *)
let declare_metrics tele =
  List.iter
    (fun ty -> Telemetry.declare_counter tele ~labels:[ ("type", ty) ] "recsa.conflicts")
    [ "1"; "2"; "3"; "4" ];
  Telemetry.declare_counter tele "recsa.resets";
  Telemetry.declare_counter tele "recsa.brute_force";
  Telemetry.declare_counter tele "recsa.installs";
  List.iter
    (fun r -> Telemetry.declare_counter tele ~labels:[ ("reason", r) ] "recma.triggers")
    [ "collapse"; "prediction" ];
  Telemetry.declare_counter tele "join.completed";
  Telemetry.declare_counter tele "counter.aborts";
  Telemetry.declare_counter tele "vs.proposals";
  Telemetry.declare_counter tele "vs.installs";
  Telemetry.declare_histogram tele "recsa.replacement_seconds";
  Telemetry.declare_histogram tele "recsa.reset_recovery_seconds";
  Telemetry.declare_histogram tele "join.handshake_seconds";
  List.iter
    (fun op ->
      Telemetry.declare_histogram tele ~labels:[ ("op", op) ] "counter.op_seconds")
    [ "increment"; "read" ];
  Telemetry.declare_histogram tele "vs.view_change_seconds"

(* Fold a scheme trace event into the telemetry registry: the stale types
   of Definition 3.1 as labeled conflict counters, reset -> brute-force
   recovery as a span, the joiner handshake as a span. *)
let note_event tele ~self ~now (tag, detail) =
  match tag with
  | "recsa.stale" ->
    (* detail is "type-N"; label just the N *)
    let ty =
      match String.index_opt detail '-' with
      | Some i -> String.sub detail (i + 1) (String.length detail - i - 1)
      | None -> detail
    in
    Telemetry.inc tele ~labels:[ ("type", ty) ] "recsa.conflicts"
  | "recsa.reset" ->
    Telemetry.inc tele "recsa.resets";
    Telemetry.span_begin tele ~name:"recsa.reset_recovery_seconds" ~key:self ~now
  | "recsa.join_reset" ->
    Telemetry.span_begin tele ~name:"recsa.reset_recovery_seconds" ~key:self ~now
  | "recsa.brute_force" ->
    Telemetry.inc tele "recsa.brute_force";
    (* a node corrupted straight into a reset never saw the reset event;
       only close spans we actually opened *)
    if Telemetry.span_open tele ~name:"recsa.reset_recovery_seconds" ~key:self then
      Telemetry.span_end tele ~name:"recsa.reset_recovery_seconds" ~key:self ~now
  | "recsa.install" ->
    Telemetry.inc tele "recsa.installs";
    (* a resetting node can also recover by adopting a peer's phase-2
       notification; that install ends its recovery too *)
    if Telemetry.span_open tele ~name:"recsa.reset_recovery_seconds" ~key:self then
      Telemetry.span_end tele ~name:"recsa.reset_recovery_seconds" ~key:self ~now
  | "recma.trigger" ->
    let reason =
      if String.equal detail "majority collapse" then "collapse" else "prediction"
    in
    Telemetry.inc tele ~labels:[ ("reason", reason) ] "recma.triggers"
  | "join.start" ->
    Telemetry.span_begin tele ~name:"join.handshake_seconds" ~key:self ~now
  | "join.participate" ->
    Telemetry.inc tele "join.completed";
    if Telemetry.span_open tele ~name:"join.handshake_seconds" ~key:self then
      Telemetry.span_end tele ~name:"join.handshake_seconds" ~key:self ~now
  | _ -> ()

let snap_instance ~capacity n ~self ~peer =
  match Pid.Map.find_opt peer n.snap with
  | Some s -> s
  | None ->
    let s =
      Datalink.Snap_link.create ~capacity ~self ~peer
        ~nonce:(snap_nonce ~self ~peer)
    in
    n.snap <- Pid.Map.add peer s n.snap;
    s

(* --- the protocol core, written once against the RUNTIME signature --- *)

module Core (R : Runtime.S) = struct
  let send_counted ctx kind dst m =
    Metrics.incr (R.metrics ctx) ("sent." ^ kind);
    Telemetry.inc (R.telemetry ctx) ~labels:[ ("kind", kind) ] "stack.sent";
    R.send ctx dst m

  (* protocol traffic is held back until the link's handshake completed *)
  let send_gated ctx n kind dst m =
    if link_clean n dst then send_counted ctx kind dst m

  let view_of ctx n =
    {
      v_self = R.self ctx;
      v_trusted = Intern.pid_set (Detector.Theta_fd.trusted n.fd);
      v_recsa = n.sa;
      v_emit = R.emit ctx;
      v_now = R.now ctx;
      v_rng = R.rng ctx;
      v_metrics = R.metrics ctx;
      v_telemetry = R.telemetry ctx;
    }

  let driver ~capacity ~n_bound ~theta ~quorum ~hooks ~members_set ~directory =
    let init p =
      let participant = Pid.Set.mem p members_set in
      let joiner = not participant in
      let n =
        {
          fd = Detector.Theta_fd.create ~n_bound ~theta ~self:p ();
          sa =
            Recsa.create ~self:p ~participant
              ?initial_config:(if participant then Some members_set else None)
              ();
          ma = Recma.create ~self:p;
          join = Join.create ~self:p;
          app = hooks.plugin.p_init p;
          seeds = Pid.Set.remove p !directory;
          snap = Pid.Map.empty;
          joiner;
          tele_phase = Notification.P0;
        }
      in
      if joiner then
        Pid.Set.iter (fun peer -> ignore (snap_instance ~capacity n ~self:p ~peer)) n.seeds;
      n
    in
    let on_timer ctx n =
      let self = R.self ctx in
      (* flood pending cleaning handshakes *)
      Pid.Map.iter
        (fun peer s ->
          match Datalink.Snap_link.on_tick s with
          | Some m ->
            (* keep the channel's pipe full: the handshake needs more than
               the round-trip capacity of acknowledgments *)
            for _ = 1 to max 1 (capacity / 2) do
              send_counted ctx "snap" peer (Snap m)
            done
          | None -> ())
        n.snap;
      (* interned: this set rides in every broadcast's [m_fd] and seeds every
         participants-filter this tick, so canonicalize it once here *)
      let trusted = Intern.pid_set (Detector.Theta_fd.trusted n.fd) in
      let tele = R.telemetry ctx in
      let now = R.now ctx in
      let emit_all =
        List.iter (fun (tag, detail) ->
            R.emit ctx tag detail;
            note_event tele ~self ~now (tag, detail))
      in
      (* recSA: one do-forever iteration, then the line-29 broadcast *)
      emit_all (Recsa.tick n.sa ~trusted);
      (* time the delicate-replacement automaton: a span opens when this
         node's notification leaves phase 0 and closes when it returns
         (Figure 2's 0 -> 1 -> 2 -> 0 cycle) *)
      let phase = (Recsa.prp n.sa).Notification.phase in
      if phase <> n.tele_phase then begin
        (match (n.tele_phase, phase) with
        | Notification.P0, (Notification.P1 | Notification.P2) ->
          Telemetry.span_begin tele ~name:"recsa.replacement_seconds" ~key:self ~now
        | (Notification.P1 | Notification.P2), Notification.P0 ->
          if Telemetry.span_open tele ~name:"recsa.replacement_seconds" ~key:self
          then
            Telemetry.span_end tele ~name:"recsa.replacement_seconds" ~key:self ~now
        | _ -> ());
        n.tele_phase <- phase
      end;
      let sa_msgs = Recsa.broadcast n.sa ~trusted in
      List.iter (fun (dst, m) -> send_gated ctx n "sa" dst (Sa m)) sa_msgs;
      (* recMA *)
      let ma_msgs, ma_events =
        Recma.tick n.ma ~quorum ~trusted ~recsa:n.sa
          ~eval_conf:(fun members -> hooks.eval_conf ~self ~trusted members)
          ()
      in
      emit_all ma_events;
      List.iter (fun (dst, m) -> send_gated ctx n "ma" dst (Ma m)) ma_msgs;
      (* joining mechanism (joiner side) *)
      let join_msgs, join_events =
        Join.tick n.join ~quorum ~trusted ~recsa:n.sa
          ~reset_vars:(fun () -> n.app <- hooks.plugin.p_init self)
          ~init_vars:(fun states ->
            n.app <- hooks.plugin.p_merge ~self n.app states)
          ()
      in
      emit_all join_events;
      List.iter (fun (dst, m) -> send_gated ctx n "join" dst (Join m)) join_msgs;
      (* application plugin *)
      let app', app_msgs = hooks.plugin.p_tick (view_of ctx n) n.app in
      n.app <- app';
      List.iter (fun (dst, m) -> send_gated ctx n "app" dst (App m)) app_msgs;
      (* heartbeats (the data-link token) to every known processor not already
         covered by a recSA broadcast *)
      let covered = List.fold_left (fun acc (dst, _) -> Pid.Set.add dst acc) Pid.Set.empty sa_msgs in
      let targets =
        Pid.Set.union n.seeds (Detector.Theta_fd.known n.fd)
        |> Pid.Set.remove self
      in
      Pid.Set.iter
        (fun dst ->
          if not (Pid.Set.mem dst covered) then send_gated ctx n "heartbeat" dst Heartbeat)
        targets;
      n
    in
    let on_message ctx from msg n =
      (match msg with
      | Snap m ->
        let s = snap_instance ~capacity n ~self:(R.self ctx) ~peer:from in
        let reply, completed = Datalink.Snap_link.on_msg s m in
        (match reply with
        | Some r -> send_counted ctx "snap" from (Snap r)
        | None -> ());
        (match completed with
        | `Completed -> R.emit ctx "snap.clean" (Pid.to_string from)
        | `Pending -> ())
      | Heartbeat | Sa _ | Ma _ | Join _ | App _ ->
        if link_clean n from then Detector.Theta_fd.heartbeat n.fd from);
      (match msg with
      | _ when not (link_clean n from) -> () (* link not yet cleaned *)
      | Snap _ -> ()
      | Heartbeat -> ()
      | Sa m -> Recsa.receive n.sa ~from m
      | Ma m -> Recma.receive n.ma ~from ~participant:(Recsa.is_participant n.sa) m
      | Join (Join.Join_request) ->
        let trusted = Detector.Theta_fd.trusted n.fd in
        (match
           Join.on_request n.join ~self_app:n.app ~from ~trusted ~recsa:n.sa
             ~pass_query:(fun joiner ->
               hooks.pass_query ~self:(R.self ctx) ~joiner)
         with
        | Some reply -> send_gated ctx n "join" from (Join reply)
        | None -> ())
      | Join (Join.Join_reply { pass; app }) ->
        Join.on_reply n.join ~from ~participant:(Recsa.is_participant n.sa) ~pass ~app
      | App m ->
        let app', out = hooks.plugin.p_recv (view_of ctx n) ~from m n.app in
        n.app <- app';
        List.iter (fun (dst, m) -> send_gated ctx n "app" dst (App m)) out);
      n
    in
    { Runtime.d_init = init; d_timer = on_timer; d_recv = on_message }
end

(* --- runtime-agnostic observation over collections of node states --- *)

let config_views_of nodes = List.map (fun (p, n) -> (p, Recsa.config n.sa)) nodes

let uniform_config_of nodes =
  let participant_configs =
    List.filter_map
      (fun (_, n) ->
        match Recsa.config n.sa with
        | Config_value.Not_participant -> None
        | v -> Some v)
      nodes
  in
  match participant_configs with
  | [] -> None
  | first :: rest ->
    if List.for_all (Config_value.equal first) rest then Config_value.to_set first
    else None

let quiescent_of nodes =
  match uniform_config_of nodes with
  | None -> false
  | Some _ ->
    List.for_all
      (fun (_, n) ->
        (not (Recsa.is_participant n.sa))
        || Recsa.no_reco n.sa ~trusted:(Detector.Theta_fd.trusted n.fd))
      nodes

(* --- the simulated system: the core driven by Sim.Engine --- *)

module Sim_core = Core (Runtime.Sim_engine)

type ('app, 'msg) t = {
  eng : ('app node_state, ('app, 'msg) message) Engine.t;
  hooks : ('app, 'msg) hooks;
  directory : Pid.Set.t ref;
}

(* --- seeded garbage: the raw material of transient faults --- *)

let random_pid_set rng pool =
  match Rng.subset rng pool with [] -> Pid.set_of_list [ List.hd pool ] | l -> Pid.set_of_list l

let random_config rng pool =
  match Rng.int rng 4 with
  | 0 -> Config_value.Reset
  | 1 -> Config_value.Set (random_pid_set rng pool)
  | 2 -> Config_value.Set Pid.Set.empty
  | _ -> Config_value.Set (random_pid_set rng pool)

let random_notification rng pool =
  match Rng.int rng 4 with
  | 0 -> Notification.default
  | 1 -> { Notification.phase = Notification.P0; set = Some (random_pid_set rng pool) }
  | 2 -> Notification.make Notification.P1 (random_pid_set rng pool)
  | _ -> Notification.make Notification.P2 (random_pid_set rng pool)

(* A stale recSA packet, as left behind by an arbitrary transient fault. *)
let stale_sa rng pool =
  let trusted = random_pid_set rng pool in
  Sa
    {
      Recsa.m_fd = trusted;
      m_part = random_pid_set rng pool;
      m_config = random_config rng pool;
      m_prp = random_notification rng pool;
      m_all = Rng.bool rng;
      m_echo = None;
    }

let of_scenario ~hooks (sc : Scenario.t) =
  let members = sc.Scenario.sc_members in
  let members_set = Pid.set_of_list members in
  let directory = ref members_set in
  let driver =
    Sim_core.driver ~capacity:sc.sc_capacity ~n_bound:sc.sc_n_bound ~theta:sc.sc_theta
      ~quorum:sc.sc_quorum ~hooks ~members_set ~directory
  in
  let eng =
    Engine.create ~seed:sc.sc_seed ~capacity:sc.sc_capacity ~loss:sc.sc_loss
      ~behavior:(Runtime.sim_behavior driver) ~pids:members ()
  in
  declare_metrics (Engine.telemetry eng);
  Faults.Injector.declare_metrics (Engine.telemetry eng);
  (* "bit flips" on profiled links: a typed message has no bits to flip, so
     a mangled packet re-parses as garbage — a heartbeat or a stale recSA
     packet *)
  Engine.set_mangler eng
    (Some
       (fun rng _msg ->
         if Rng.bool rng then Heartbeat else stale_sa rng (Engine.pids eng)));
  { eng; hooks; directory }

let create ?(seed = 42) ?(capacity = 8) ?(loss = 0.02) ?(theta = 4)
    ?(quorum = (module Quorum.Majority : Quorum.SYSTEM)) ~n_bound ~hooks ~members () =
  of_scenario ~hooks
    (Scenario.make ~members ~seed ~capacity ~loss ~theta ~n_bound ~quorum
       ~nodes:(List.length members) ())

let engine t = t.eng

let add_joiner t p =
  t.directory := Pid.Set.add p !(t.directory);
  Engine.add_node t.eng p

let node t p = Engine.state t.eng p

let live_nodes t =
  List.map (fun p -> (p, Engine.state t.eng p)) (Engine.live_pids t.eng)

let trusted_of t p = Detector.Theta_fd.trusted (node t p).fd
let config_views t = config_views_of (live_nodes t)
let uniform_config t = uniform_config_of (live_nodes t)
let quiescent t = quiescent_of (live_nodes t)
let sum_over t f = List.fold_left (fun acc (_, n) -> acc + f n) 0 (live_nodes t)
let total_resets t = sum_over t (fun n -> Recsa.reset_count n.sa)
let total_installs t = sum_over t (fun n -> Recsa.install_count n.sa)
let total_triggers t = sum_over t (fun n -> Recma.trigger_count n.ma)
let run_rounds t n = Engine.run_rounds t.eng n
let run_until t ~max_steps pred = Engine.run_until t.eng ~max_steps (fun _ -> pred t)

let run_until_quiescent t ~max_rounds =
  let start = Engine.rounds t.eng in
  let rec go () =
    if quiescent t then Some (Engine.rounds t.eng - start)
    else if Engine.rounds t.eng - start >= max_rounds then None
    else begin
      Engine.run_rounds t.eng 1;
      go ()
    end
  in
  go ()

let crash t p = Engine.crash t.eng p
let estab t p set = Recsa.estab (node t p).sa ~trusted:(trusted_of t p) set

(* --- transient-fault injection --- *)

let corrupt_node t p ~rng =
  let pool = Engine.pids t.eng in
  let n = node t p in
  Recsa.corrupt n.sa ~config:(random_config rng pool)
    ~prp:(random_notification rng pool) ~all:(Rng.bool rng)
    ~allseen:(random_pid_set rng pool) ();
  Recsa.clear_peers n.sa;
  let random_flags () = List.map (fun q -> (q, Rng.bool rng)) pool in
  Recma.corrupt n.ma ~no_maj:(random_flags ()) ~need_reconf:(random_flags ());
  Join.corrupt n.join ~rng ~pool;
  n.app <- t.hooks.plugin.p_corrupt rng n.app

let corrupt_link t ~src ~dst ~rng =
  let pool = Engine.pids t.eng in
  let k = Rng.int rng 4 in
  let pkts = List.init k (fun _ -> stale_sa rng pool) in
  Engine.corrupt_channel t.eng ~src ~dst pkts

let corrupt_everything t ~rng =
  let live = Engine.live_pids t.eng in
  List.iter (fun p -> corrupt_node t p ~rng) live;
  List.iter
    (fun src ->
      List.iter
        (fun dst -> if not (Pid.equal src dst) then corrupt_link t ~src ~dst ~rng)
        live)
    live

(* --- fault plans: the injector capabilities of the simulator runtime --- *)

let to_engine_profile p =
  {
    Engine.lp_drop = p.Faults.Fault_plan.fp_drop;
    lp_dup = p.Faults.Fault_plan.fp_dup;
    lp_flip = p.Faults.Fault_plan.fp_flip;
  }

let fault_ops t =
  {
    Faults.Injector.o_live = (fun () -> Engine.live_pids t.eng);
    o_pids = (fun () -> Engine.pids t.eng);
    o_rounds = (fun () -> Engine.rounds t.eng);
    o_crash = (fun p -> Engine.crash t.eng p);
    o_join = (fun p -> add_joiner t p);
    o_corrupt_node = (fun rng p -> corrupt_node t p ~rng);
    o_corrupt_link = Some (fun rng ~src ~dst -> corrupt_link t ~src ~dst ~rng);
    o_set_link_profile =
      Some
        (fun ~src ~dst profile ->
          Engine.set_link_profile t.eng ~src ~dst (Option.map to_engine_profile profile));
    o_partition = (fun group -> Engine.partition t.eng group);
    o_heal =
      (fun () ->
        Engine.heal t.eng;
        Engine.clear_link_profiles t.eng);
    o_telemetry = Engine.telemetry t.eng;
    o_emit =
      (fun ~tag ~detail ->
        Trace.record (Engine.trace t.eng) ~time:(Engine.time t.eng) ~tag detail);
  }

let run_plan t ~plan ~max_rounds =
  let inj = Faults.Injector.create ~plan ~ops:(fault_ops t) in
  Faults.Injector.step inj;
  while not (Faults.Injector.finished inj) do
    run_rounds t 1;
    Faults.Injector.step inj
  done;
  run_until_quiescent t ~max_rounds
