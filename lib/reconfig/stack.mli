(** The full reconfiguration scheme as a single "black box" (Figure 1):
    (N,Θ)-failure detector + recSA + recMA + joining mechanism, with a
    pluggable application on top.

    The protocol core is engine-agnostic: {!Core} builds the node automaton
    against any runtime implementing the RUNTIME signature
    ({!Runtime.S}) — the discrete-event simulator ({!Runtime.Sim_engine})
    or the real-time event loop ({!Runtime.Loop}, see [Stack_loop]). The
    [('app, 'msg) t] API below is the simulator-backed system used by the
    tests and the experiment harness.

    ['app] is the application state (replicated to joiners by the joining
    mechanism); ['msg] is the application's own message type. The services
    of Section 4 (labeling, counters, virtual synchrony) are plugins,
    composed with the {!Plugin} combinators. *)

open Sim

type ('app, 'msg) message =
  | Heartbeat  (** the data-link token; keeps failure detectors fed *)
  | Snap of Datalink.Snap_link.msg
      (** snap-stabilizing link cleaning on new connections (Section 2) *)
  | Sa of Recsa.message
  | Ma of Recma.message
  | Join of 'app Join.message
  | App of 'msg

type 'app node_state = {
  fd : Detector.Theta_fd.t;
  sa : Recsa.t;
  ma : Recma.t;
  join : 'app Join.t;
  mutable app : 'app;
  mutable seeds : Pid.Set.t;  (** initially-known processors *)
  mutable snap : Datalink.Snap_link.t Pid.Map.t;
      (** per-peer cleaning handshakes; a joiner participates in the
          protocols over a link only once its handshake completed *)
  joiner : bool;  (** joined after system start (runs the handshake) *)
  mutable tele_phase : Notification.phase;
      (** last notification phase observed by the telemetry layer, for
          timing the delicate-replacement 0 -> 1 -> 2 -> 0 cycle *)
}

(** Read-only view of the scheme handed to the application plugin — the
    [getConfig()] / [noReco()] interfaces of Figure 1, enriched with the
    executing runtime's clock, randomness and metrics. *)
type scheme_view = {
  v_self : Pid.t;
  v_trusted : Pid.Set.t;
  v_recsa : Recsa.t;
  v_emit : string -> string -> unit;  (** trace emission *)
  v_now : float;  (** the runtime's current time *)
  v_rng : Rng.t;  (** the runtime's random source *)
  v_metrics : Metrics.t;  (** shared metrics registry *)
  v_telemetry : Telemetry.t;  (** shared telemetry registry *)
}

(** Derived read-only views of the scheme state, shared by all service
    plugins (previously duplicated per service). *)
module View : sig
  (** [current_members v] — the configuration member set while no
      reconfiguration is taking place, [None] during reconfigurations. *)
  val current_members : scheme_view -> Pid.Set.t option

  (** The trusted participants (getConfig ∪ prospective members ∩ FD). *)
  val participants : scheme_view -> Pid.Set.t

  (** The raw configuration value as a set, reconfiguring or not. *)
  val config_set : scheme_view -> Pid.Set.t option

  (** [is_member v] — is this node a member of the stable configuration? *)
  val is_member : scheme_view -> bool
end

(** Application plugins: ticked after the scheme layers on every timer
    step; receive every [App] message. Both return messages to send. *)
module Plugin : sig
  type ('app, 'msg) t = {
    p_init : Pid.t -> 'app;
    p_tick : scheme_view -> 'app -> 'app * (Pid.t * 'msg) list;
    p_recv : scheme_view -> from:Pid.t -> 'msg -> 'app -> 'app * (Pid.t * 'msg) list;
    p_merge : self:Pid.t -> 'app -> 'app Pid.Map.t -> 'app;
        (** [initVars]: combine members' states into a fresh participant's
            state when joining completes *)
    p_corrupt : Rng.t -> 'app -> 'app;
        (** transient fault: rewrite the application state with seeded
            garbage. Self-stabilization demands the plugin converge from
            whatever this returns; [corrupt_node] and fault plans call it
            alongside the scheme-layer corruptors. *)
  }

  (** A do-nothing plugin for running the bare reconfiguration scheme. *)
  val null : (unit, unit) t

  (** [map ~state ~state_back ~msg ~msg_back p] transports [p] across a
      state isomorphism and a message embedding. [msg_back] is a partial
      inverse: messages it maps to [None] are dropped on receipt. With
      identity functions, [map] is the identity (the functor law tested in
      the suite). [p_corrupt] is transported through the isomorphism;
      [pair] corrupts both components; [stack] corrupts the lower layer
      through the lens, then the upper. *)
  val map :
    state:('a -> 'b) ->
    state_back:('b -> 'a) ->
    msg:('ma -> 'mb) ->
    msg_back:('mb -> 'ma option) ->
    ('a, 'ma) t ->
    ('b, 'mb) t

  (** [pair pa pb] runs two independent plugins side by side: [pa] ticks
      first and its messages precede [pb]'s; receipts are routed by the
      [`Fst]/[`Snd] tag. *)
  val pair :
    ('a, 'ma) t -> ('b, 'mb) t -> ('a * 'b, [ `Fst of 'ma | `Snd of 'mb ]) t

  (** [stack ~lower ~get ~set ~wrap ~unwrap upper] layers [upper] over
      [lower], with [lower]'s state embedded in [upper]'s through the
      [get]/[set] lens and its messages embedded through [wrap]/[unwrap].
      Each tick runs [lower] first (its messages precede [upper]'s, and
      [upper] observes the post-tick lower state); receipts that [unwrap]
      recognizes go to [lower] alone, all others to [upper]. This is how
      the register and virtual-synchrony services embed the counter
      service. *)
  val stack :
    lower:('a, 'ma) t ->
    get:('b -> 'a) ->
    set:('b -> 'a -> 'b) ->
    wrap:('ma -> 'mb) ->
    unwrap:('mb -> 'ma option) ->
    ('b, 'mb) t ->
    ('b, 'mb) t
end

type ('app, 'msg) plugin = ('app, 'msg) Plugin.t = {
  p_init : Pid.t -> 'app;
  p_tick : scheme_view -> 'app -> 'app * (Pid.t * 'msg) list;
  p_recv : scheme_view -> from:Pid.t -> 'msg -> 'app -> 'app * (Pid.t * 'msg) list;
  p_merge : self:Pid.t -> 'app -> 'app Pid.Map.t -> 'app;
  p_corrupt : Rng.t -> 'app -> 'app;
}

type ('app, 'msg) hooks = {
  eval_conf : self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool;
      (** prediction function: should the given configuration be replaced? *)
  pass_query : self:Pid.t -> joiner:Pid.t -> bool;
      (** may this joiner enter the computation? *)
  plugin : ('app, 'msg) plugin;
}

(** The uniform shape of a Section-4 service ([Counter_service],
    [Label_service], [Register_service], [Vs_service]): default plugin and
    hooks (init/step), a state corruptor for fault injection, and telemetry
    schema declaration. Polymorphic services (virtual synchrony over an
    arbitrary state machine) instantiate it at a canonical type. *)
module type SERVICE = sig
  type state
  type msg

  val name : string

  val plugin : (state, msg) Plugin.t
  (** Default-configured plugin; [plugin.p_corrupt] equals {!corrupt}. *)

  val hooks : (state, msg) hooks
  (** Default-configured hooks wrapping {!plugin}. *)

  val corrupt : Rng.t -> state -> state
  (** Transient fault: seeded garbage into the service state. *)

  val declare_metrics : Telemetry.t -> unit
  (** Pre-register the service's telemetry families (a subset of
      {!declare_metrics}, for harnesses running the service alone). *)
end

(** Alias of {!Plugin.null}. *)
val null_plugin : (unit, unit) plugin

(** Never asks for reconfiguration; always passes joiners; null plugin. *)
val unit_hooks : (unit, unit) hooks

(** [default_eval_conf ~fraction ()] — the paper's example predictor:
    replace when at least [fraction] (default 1/4) of the members are
    untrusted. *)
val default_eval_conf :
  ?fraction:float -> unit -> self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool

(** [snap_nonce ~self ~peer] — deterministic handshake instance identifier
    for the directed link [self → peer]: the two pids packed side by side
    ({!Sim.Pid.key_bits} bits each), so distinct pairs always get distinct
    nonces. *)
val snap_nonce : self:Pid.t -> peer:Pid.t -> int

(** [declare_metrics tele] pre-registers every telemetry family the scheme
    emits (conflict counters per stale type, reset/install counters, the
    replacement/recovery/join/counter-op/view-change histograms), so
    exports list a stable schema even before any event fires. Called by
    the system constructors ([create] here and [Stack_loop.create]). *)
val declare_metrics : Telemetry.t -> unit

(** [note_event tele ~self ~now (tag, detail)] folds one scheme trace
    event into the telemetry registry (used by {!Core}; exposed for
    runtimes that drive the layers directly). *)
val note_event : Telemetry.t -> self:Pid.t -> now:float -> string * string -> unit

(** {2 The engine-agnostic protocol core} *)

(** [Core (R)] builds the scheme's node automaton for any runtime [R]
    implementing the RUNTIME signature. *)
module Core (R : Runtime.S) : sig
  val driver :
    capacity:int ->
    n_bound:int ->
    theta:int ->
    quorum:(module Quorum.SYSTEM) ->
    hooks:('app, 'msg) hooks ->
    members_set:Pid.Set.t ->
    directory:Pid.Set.t ref ->
    ('app node_state, ('app, 'msg) message, ('app, 'msg) message R.ctx)
    Runtime.driver
  (** [directory] is read at node-init time: a node created after system
      start treats the processors then present as its seeds and runs the
      cleaning handshake against them. *)
end

(** {2 Runtime-agnostic observation}

    These fold over any [(pid, node_state)] collection, so every runtime's
    harness can share them. *)

val config_views_of : (Pid.t * 'app node_state) list -> (Pid.t * Config_value.t) list
val uniform_config_of : (Pid.t * 'app node_state) list -> Pid.Set.t option
val quiescent_of : (Pid.t * 'app node_state) list -> bool

(** {2 The simulator-backed system} *)

type ('app, 'msg) t
(** A simulated system running the scheme on every node. *)

val of_scenario : hooks:('app, 'msg) hooks -> Scenario.t -> ('app, 'msg) t
(** The primary constructor. The initial participants [sc_members] start
    with the agreed configuration [sc_members] (a steady config state);
    other processors enter later via [add_joiner] or a plan's [Join]
    events. [sc_quorum] generalizes recMA's collapse / prediction tests
    and the joining admission test to any intersecting quorum system — the
    generalization the paper claims in Related Work. The scenario's fault
    plan is {e not} applied here; pass it to {!run_plan}. *)

val create :
  ?seed:int ->
  ?capacity:int ->
  ?loss:float ->
  ?theta:int ->
  ?quorum:(module Quorum.SYSTEM) ->
  n_bound:int ->
  hooks:('app, 'msg) hooks ->
  members:Pid.t list ->
  unit ->
  ('app, 'msg) t
  [@@ocaml.deprecated "use Stack.of_scenario with a Scenario.t"]
(** @deprecated Compatibility shim over {!of_scenario} (one release);
    equivalent to [of_scenario ~hooks (Scenario.make ~members ...)]. *)

val engine : ('app, 'msg) t -> ('app node_state, ('app, 'msg) message) Engine.t

(** [add_joiner t p] introduces a new processor over snap-stabilized (clean)
    links; it knows the processors present at its join time. *)
val add_joiner : ('app, 'msg) t -> Pid.t -> unit

(** {2 Observation} *)

val node : ('app, 'msg) t -> Pid.t -> 'app node_state
val live_nodes : ('app, 'msg) t -> (Pid.t * 'app node_state) list
val trusted_of : ('app, 'msg) t -> Pid.t -> Pid.Set.t

(** [config_views t] — every live node's configuration value. *)
val config_views : ('app, 'msg) t -> (Pid.t * Config_value.t) list

(** [uniform_config t] is [Some s] iff every live {e participant} holds
    exactly [Set s] — the paper's conflict-free condition. [None] while any
    participant disagrees, is resetting, or no participant exists. *)
val uniform_config : ('app, 'msg) t -> Pid.Set.t option

(** [quiescent t] — uniform configuration and [no_reco] holds at every live
    participant (steady config state). *)
val quiescent : ('app, 'msg) t -> bool

(** Sums over all nodes: recSA brute-force resets, delicate installs,
    recMA accepted triggerings. *)
val total_resets : ('app, 'msg) t -> int

val total_installs : ('app, 'msg) t -> int
val total_triggers : ('app, 'msg) t -> int

(** {2 Driving} *)

val run_rounds : ('app, 'msg) t -> int -> unit
val run_until : ('app, 'msg) t -> max_steps:int -> (('app, 'msg) t -> bool) -> bool

(** [run_until_quiescent t ~max_rounds] runs until {!quiescent}; returns
    the number of rounds consumed, or [None] on timeout. *)
val run_until_quiescent : ('app, 'msg) t -> max_rounds:int -> int option

val crash : ('app, 'msg) t -> Pid.t -> unit

(** [estab t p set] — request a delicate replacement at node [p] (test
    hook; normally recMA decides). *)
val estab : ('app, 'msg) t -> Pid.t -> Pid.Set.t -> bool

(** {2 Transient faults} *)

(** Garbage generators shared by both runtimes' injectors: a random
    subset of [pool], a random configuration over it, and a random
    reconfiguration notification. *)

val random_pid_set : Rng.t -> Pid.t list -> Pid.Set.t
val random_config : Rng.t -> Pid.t list -> Config_value.t
val random_notification : Rng.t -> Pid.t list -> Notification.t

(** [corrupt_node t p ~rng] writes pseudo-random garbage into [p]'s recSA
    and recMA state. *)
val corrupt_node : ('app, 'msg) t -> Pid.t -> rng:Rng.t -> unit

(** [corrupt_everything t ~rng] corrupts every live node and fills every
    channel between live nodes with stale protocol packets. *)
val corrupt_everything : ('app, 'msg) t -> rng:Rng.t -> unit

(** {2 Fault plans}

    Declarative adversaries ({!Faults.Fault_plan}) act on the system
    through the injector capability record. The simulator supplies every
    capability: state corruption (scheme layers, join bookkeeping and the
    plugin's [p_corrupt]), channel corruption, per-link fault profiles
    (with "bit flips" mangled into stale protocol packets), partitions,
    crashes and join churn. *)

(** [fault_ops t] — the full capability record for {!Faults.Injector}. *)
val fault_ops : ('app, 'msg) t -> Faults.Injector.ops

(** [run_plan t ~plan ~max_rounds] drives the system round by round,
    applying [plan]'s events at their scheduled rounds, then runs on until
    quiescence. Returns the number of rounds between the last plan action
    and quiescence ([None] if the [max_rounds] budget expires first) —
    the measured stabilization time. *)
val run_plan :
  ('app, 'msg) t -> plan:Faults.Fault_plan.t -> max_rounds:int -> int option
