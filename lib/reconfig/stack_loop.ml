open Sim
module Loop = Runtime.Loop

module Loop_core = Stack.Core (Loop.Ctx)

type ('app, 'msg) t = {
  loop : ('app Stack.node_state, ('app, 'msg) Stack.message) Loop.t;
  directory : Pid.Set.t ref;
}

let create ?(seed = 42) ?(capacity = 8) ?(theta = 4)
    ?(quorum = (module Quorum.Majority : Quorum.SYSTEM)) ?clock ~n_bound ~hooks
    ~members () =
  let members_set = Pid.set_of_list members in
  let directory = ref members_set in
  let driver =
    Loop_core.driver ~capacity ~n_bound ~theta ~quorum ~hooks ~members_set
      ~directory
  in
  let loop = Loop.create ~seed ?clock ~driver ~pids:members () in
  Stack.declare_metrics (Loop.telemetry loop);
  { loop; directory }

let loop t = t.loop

let add_joiner t p =
  t.directory := Pid.Set.add p !(t.directory);
  Loop.add_node t.loop p

let node t p = Loop.state t.loop p

let live_nodes t =
  List.map (fun p -> (p, Loop.state t.loop p)) (Loop.live_pids t.loop)

let trusted_of t p = Detector.Theta_fd.trusted (node t p).Stack.fd
let config_views t = Stack.config_views_of (live_nodes t)
let uniform_config t = Stack.uniform_config_of (live_nodes t)
let quiescent t = Stack.quiescent_of (live_nodes t)
let run_rounds t n = Loop.run_rounds t.loop n

let run_until_quiescent t ~max_rounds =
  let start = Loop.rounds t.loop in
  if Loop.run_until t.loop ~max_rounds (fun _ -> quiescent t) then
    Some (Loop.rounds t.loop - start)
  else None

let crash t p = Loop.crash t.loop p
