open Sim
module Loop = Runtime.Loop

module Loop_core = Stack.Core (Loop.Ctx)

type ('app, 'msg) t = {
  loop : ('app Stack.node_state, ('app, 'msg) Stack.message) Loop.t;
  hooks : ('app, 'msg) Stack.hooks;
  directory : Pid.Set.t ref;
}

let of_scenario ?clock ~hooks (sc : Scenario.t) =
  let members = sc.Scenario.sc_members in
  let members_set = Pid.set_of_list members in
  let directory = ref members_set in
  let driver =
    Loop_core.driver ~capacity:sc.sc_capacity ~n_bound:sc.sc_n_bound
      ~theta:sc.sc_theta ~quorum:sc.sc_quorum ~hooks ~members_set ~directory
  in
  let loop = Loop.create ~seed:sc.sc_seed ?clock ~driver ~pids:members () in
  Stack.declare_metrics (Loop.telemetry loop);
  Faults.Injector.declare_metrics (Loop.telemetry loop);
  { loop; hooks; directory }

let create ?(seed = 42) ?(capacity = 8) ?(theta = 4)
    ?(quorum = (module Quorum.Majority : Quorum.SYSTEM)) ?clock ~n_bound ~hooks
    ~members () =
  of_scenario ?clock ~hooks
    (Scenario.make ~members ~seed ~capacity ~theta ~n_bound ~quorum
       ~nodes:(List.length members) ())

let loop t = t.loop

let add_joiner t p =
  t.directory := Pid.Set.add p !(t.directory);
  Loop.add_node t.loop p

let node t p = Loop.state t.loop p

let live_nodes t =
  List.map (fun p -> (p, Loop.state t.loop p)) (Loop.live_pids t.loop)

let trusted_of t p = Detector.Theta_fd.trusted (node t p).Stack.fd
let config_views t = Stack.config_views_of (live_nodes t)
let uniform_config t = Stack.uniform_config_of (live_nodes t)
let quiescent t = Stack.quiescent_of (live_nodes t)
let run_rounds t n = Loop.run_rounds t.loop n

let run_until_quiescent t ~max_rounds =
  let start = Loop.rounds t.loop in
  if Loop.run_until t.loop ~max_rounds (fun _ -> quiescent t) then
    Some (Loop.rounds t.loop - start)
  else None

let crash t p = Loop.crash t.loop p

(* --- fault plans: the loop's (partial) injector capabilities --- *)

let fault_ops t =
  let hooks = t.hooks in
  {
    Faults.Injector.o_live = (fun () -> Loop.live_pids t.loop);
    o_pids = (fun () -> Loop.pids t.loop);
    o_rounds = (fun () -> Loop.rounds t.loop);
    o_crash = (fun p -> Loop.crash t.loop p);
    o_join = (fun p -> add_joiner t p);
    o_corrupt_node =
      (fun rng p ->
        let pool = Loop.pids t.loop in
        let n = node t p in
        Recsa.corrupt n.Stack.sa ~config:(Stack.random_config rng pool)
          ~prp:(Stack.random_notification rng pool) ~all:(Rng.bool rng)
          ~allseen:(Stack.random_pid_set rng pool) ();
        Recsa.clear_peers n.Stack.sa;
        let random_flags () = List.map (fun q -> (q, Rng.bool rng)) pool in
        Recma.corrupt n.Stack.ma ~no_maj:(random_flags ())
          ~need_reconf:(random_flags ());
        Join.corrupt n.Stack.join ~rng ~pool;
        n.Stack.app <- hooks.Stack.plugin.Stack.p_corrupt rng n.Stack.app);
    (* mailboxes hold typed values a transient fault cannot fabricate, and
       per-link profiles are installed on the loop runtime itself *)
    o_corrupt_link = None;
    o_set_link_profile =
      Some
        (fun ~src ~dst profile ->
          Loop.set_link_profile t.loop ~src ~dst
            (Option.map
               (fun p ->
                 {
                   Engine.lp_drop = p.Faults.Fault_plan.fp_drop;
                   lp_dup = p.Faults.Fault_plan.fp_dup;
                   lp_flip = p.Faults.Fault_plan.fp_flip;
                 })
               profile));
    o_partition = (fun group -> Loop.partition t.loop group);
    o_heal =
      (fun () ->
        Loop.heal t.loop;
        Loop.clear_link_profiles t.loop);
    o_telemetry = Loop.telemetry t.loop;
    o_emit =
      (fun ~tag ~detail ->
        Trace.record (Loop.trace t.loop) ~time:(Loop.now t.loop) ~tag detail);
  }

let run_plan t ~plan ~max_rounds =
  let inj = Faults.Injector.create ~plan ~ops:(fault_ops t) in
  Faults.Injector.step inj;
  while not (Faults.Injector.finished inj) do
    run_rounds t 1;
    Faults.Injector.step inj
  done;
  run_until_quiescent t ~max_rounds
