(** The identical protocol stack ({!Stack.Core}) executed by the real-time
    event loop runtime ({!Runtime.Loop}) instead of the simulator — the
    proof that the core is engine-agnostic, and the stepping stone toward a
    socket-backed runtime.

    The API mirrors the observation/driving subset of {!Stack}, including
    fault plans: the same serialized {!Faults.Fault_plan} drives either
    runtime, with the loop declining the simulator-only channel-corruption
    capability (those events are counted as skipped). *)

open Sim

type ('app, 'msg) t

val of_scenario :
  ?clock:(unit -> float) ->
  hooks:('app, 'msg) Stack.hooks ->
  Scenario.t ->
  ('app, 'msg) t
(** Build a loop-backed stack from a {!Scenario.t}. The scenario's
    simulator-only channel knobs ([sc_loss]) are ignored; its fault plan is
    {e not} applied here — pass it to {!run_plan}. [clock] is forwarded to
    {!Runtime.Loop.create}. *)

val create :
  ?seed:int ->
  ?capacity:int ->
  ?theta:int ->
  ?quorum:(module Quorum.SYSTEM) ->
  ?clock:(unit -> float) ->
  n_bound:int ->
  hooks:('app, 'msg) Stack.hooks ->
  members:Pid.t list ->
  unit ->
  ('app, 'msg) t
  [@@ocaml.deprecated "use Stack_loop.of_scenario with a Scenario.t"]
(** @deprecated Compatibility shim over {!of_scenario} (one release);
    equivalent to [of_scenario ~hooks (Scenario.make ~members ...)]. *)

(** The underlying loop runtime (for trace/metrics/round access). *)
val loop :
  ('app, 'msg) t -> ('app Stack.node_state, ('app, 'msg) Stack.message) Runtime.Loop.t

val add_joiner : ('app, 'msg) t -> Pid.t -> unit

(** {2 Observation} *)

val node : ('app, 'msg) t -> Pid.t -> 'app Stack.node_state
val live_nodes : ('app, 'msg) t -> (Pid.t * 'app Stack.node_state) list
val trusted_of : ('app, 'msg) t -> Pid.t -> Pid.Set.t
val config_views : ('app, 'msg) t -> (Pid.t * Config_value.t) list
val uniform_config : ('app, 'msg) t -> Pid.Set.t option
val quiescent : ('app, 'msg) t -> bool

(** {2 Driving} *)

val run_rounds : ('app, 'msg) t -> int -> unit

(** [run_until_quiescent t ~max_rounds] — rounds consumed until
    {!quiescent}, or [None] on timeout. *)
val run_until_quiescent : ('app, 'msg) t -> max_rounds:int -> int option

val crash : ('app, 'msg) t -> Pid.t -> unit

(** {2 Fault plans}

    The loop supplies every injector capability except channel corruption
    (its mailboxes hold typed values a transient fault cannot fabricate);
    [Corrupt_channels] events are counted under
    [fault.injected{kind="skipped"}], and link "bit flips" degrade to
    drops. Everything else — state corruption, per-link loss profiles,
    partitions, crashes, join churn — behaves as on the simulator. *)

(** [fault_ops t] — the loop's capability record for {!Faults.Injector}. *)
val fault_ops : ('app, 'msg) t -> Faults.Injector.ops

(** [run_plan t ~plan ~max_rounds] — apply [plan] round by round, then run
    on until quiescence; rounds from last fault to quiescence, or [None]
    on timeout. *)
val run_plan :
  ('app, 'msg) t -> plan:Faults.Fault_plan.t -> max_rounds:int -> int option
