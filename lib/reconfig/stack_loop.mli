(** The identical protocol stack ({!Stack.Core}) executed by the real-time
    event loop runtime ({!Runtime.Loop}) instead of the simulator — the
    proof that the core is engine-agnostic, and the stepping stone toward a
    socket-backed runtime.

    The API mirrors the observation/driving subset of {!Stack}; fault
    injection is simulator-only. *)

open Sim

type ('app, 'msg) t

val create :
  ?seed:int ->
  ?capacity:int ->
  ?theta:int ->
  ?quorum:(module Quorum.SYSTEM) ->
  ?clock:(unit -> float) ->
  n_bound:int ->
  hooks:('app, 'msg) Stack.hooks ->
  members:Pid.t list ->
  unit ->
  ('app, 'msg) t
(** Same configuration surface as {!Stack.create} minus the simulator-only
    channel knobs ([loss]); [clock] is forwarded to {!Runtime.Loop.create}. *)

(** The underlying loop runtime (for trace/metrics/round access). *)
val loop :
  ('app, 'msg) t -> ('app Stack.node_state, ('app, 'msg) Stack.message) Runtime.Loop.t

val add_joiner : ('app, 'msg) t -> Pid.t -> unit

(** {2 Observation} *)

val node : ('app, 'msg) t -> Pid.t -> 'app Stack.node_state
val live_nodes : ('app, 'msg) t -> (Pid.t * 'app Stack.node_state) list
val trusted_of : ('app, 'msg) t -> Pid.t -> Pid.Set.t
val config_views : ('app, 'msg) t -> (Pid.t * Config_value.t) list
val uniform_config : ('app, 'msg) t -> Pid.Set.t option
val quiescent : ('app, 'msg) t -> bool

(** {2 Driving} *)

val run_rounds : ('app, 'msg) t -> int -> unit

(** [run_until_quiescent t ~max_rounds] — rounds consumed until
    {!quiescent}, or [None] on timeout. *)
val run_until_quiescent : ('app, 'msg) t -> max_rounds:int -> int option

val crash : ('app, 'msg) t -> Pid.t -> unit
