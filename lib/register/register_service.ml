open Sim
open Reconfig
open Counters

type reg = string
type value = int
type tagged = { tag : Counter.t; tv : value }

module Reg_map = Map.Make (String)

type outcome =
  | Wrote of { rid : int; reg : reg }
  | Read of { rid : int; reg : reg; result : value option }

type request = Wreq of int * reg * value | Rreq of int * reg

type op =
  | Idle
  | Get_tag of { rid : int; reg : reg; value : value; baseline : int }
  | Updating of {
      rid : int;
      reg : reg;
      entry : tagged;
      conf : Pid.Set.t;
      mid : int;
      mutable acks : Pid.Set.t;
      kind : [ `Write | `Read_back of value option ];
    }
  | Querying of {
      rid : int;
      reg : reg;
      conf : Pid.Set.t;
      mid : int;
      mutable resps : tagged option Pid.Map.t;
    }

type state = {
  mutable cnt : Counter_service.state;
  mutable store : tagged Reg_map.t;
  mutable op : op;
  mutable queue : request list;
  mutable outcomes_rev : outcome list;
  mutable abort_count : int;
  mutable next_mid : int;
}

type msg =
  | Cnt of Counter_service.msg
  | Query of { mid : int; reg : reg }
  | Query_resp of { mid : int; entry : tagged option }
  | Update of { mid : int; reg : reg; entry : tagged }
  | Update_ack of { mid : int }
  | Op_abort of { mid : int }

let write st ~rid reg v = st.queue <- st.queue @ [ Wreq (rid, reg, v) ]
let read st ~rid reg = st.queue <- st.queue @ [ Rreq (rid, reg) ]
let outcomes st = List.rev st.outcomes_rev

let find_read st ~rid =
  List.find_map
    (function
      | Read { rid = r; result; _ } when r = rid -> Some result
      | Read _ | Wrote _ -> None)
    st.outcomes_rev

let write_done st ~rid =
  List.exists
    (function Wrote { rid = r; _ } -> r = rid | Read _ -> false)
    st.outcomes_rev

let stored st reg = Reg_map.find_opt reg st.store
let aborts st = st.abort_count

let merge_entry st reg (entry : tagged) =
  match Reg_map.find_opt reg st.store with
  | Some existing
    when Counter.equal existing.tag entry.tag
         || Counter.precedes entry.tag existing.tag ->
    ()
  | Some _ | None -> st.store <- Reg_map.add reg entry st.store

let majority conf = Quorum.majority_threshold (Pid.Set.cardinal conf)

let abort_op st =
  (* re-queue the client request: operations retry after reconfigurations *)
  (match st.op with
  | Idle -> ()
  | Get_tag { rid; reg; value; _ } -> st.queue <- Wreq (rid, reg, value) :: st.queue
  | Updating { rid; reg; entry; kind; _ } -> (
    match kind with
    | `Write -> st.queue <- Wreq (rid, reg, entry.tv) :: st.queue
    | `Read_back _ -> st.queue <- Rreq (rid, reg) :: st.queue)
  | Querying { rid; reg; _ } -> st.queue <- Rreq (rid, reg) :: st.queue);
  st.op <- Idle;
  st.abort_count <- st.abort_count + 1

let finish st outcome =
  st.op <- Idle;
  st.outcomes_rev <- outcome :: st.outcomes_rev

(* Send the current phase's requests to the processors that have not yet
   answered (also serves as per-tick retransmission). *)
let outstanding_messages (view : Stack.scheme_view) st =
  let self = view.Stack.v_self in
  let to_others conf covered m =
    Pid.Set.fold
      (fun p acc ->
        if Pid.equal p self || Pid.Set.mem p covered then acc else (p, m) :: acc)
      conf []
  in
  match st.op with
  | Idle | Get_tag _ -> []
  | Querying q ->
    let covered =
      Pid.Map.fold (fun p _ acc -> Pid.Set.add p acc) q.resps Pid.Set.empty
    in
    to_others q.conf covered (Query { mid = q.mid; reg = q.reg })
  | Updating u ->
    (* updates also refresh every trusted participant's copy so prospective
       members carry the state into the next configuration *)
    let part = Stack.View.participants view in
    let targets = Pid.Set.union u.conf part in
    to_others targets u.acks (Update { mid = u.mid; reg = u.reg; entry = u.entry })

let start_update (view : Stack.scheme_view) st ~rid ~reg ~entry ~conf ~kind =
  let mid = st.next_mid in
  st.next_mid <- st.next_mid + 1;
  let self = view.Stack.v_self in
  let op = Updating { rid; reg; entry; conf; mid; acks = Pid.Set.empty; kind } in
  st.op <- op;
  merge_entry st reg entry;
  (match op with
  | Updating u when Pid.Set.mem self conf -> u.acks <- Pid.Set.add self u.acks
  | _ -> ());
  ()

let maybe_finish (view : Stack.scheme_view) st =
  match st.op with
  | Idle | Get_tag _ -> ()
  | Querying q when Pid.Map.cardinal q.resps >= majority q.conf ->
    let best =
      Pid.Map.fold
        (fun _ entry best ->
          match (entry, best) with
          | None, b -> b
          | Some e, None -> Some e
          | Some e, Some b -> if Counter.precedes b.tag e.tag then Some e else Some b)
        q.resps None
    in
    (match best with
    | None -> finish st (Read { rid = q.rid; reg = q.reg; result = None })
    | Some e ->
      (* write-back before returning (atomicity) *)
      start_update view st ~rid:q.rid ~reg:q.reg ~entry:e ~conf:q.conf
        ~kind:(`Read_back (Some e.tv)))
  | Querying _ -> ()
  | Updating u when Pid.Set.cardinal u.acks >= majority u.conf -> (
    match u.kind with
    | `Write ->
      view.Stack.v_emit "register.write" u.reg;
      finish st (Wrote { rid = u.rid; reg = u.reg })
    | `Read_back result ->
      view.Stack.v_emit "register.read" u.reg;
      finish st (Read { rid = u.rid; reg = u.reg; result }))
  | Updating _ -> ()

(* The register logic alone; the embedded counter service (write-tag
   provider) is layered underneath via {!Stack.Plugin.stack}, which runs
   its tick first — so [st.cnt] is already up to date here — and routes
   every [Cnt] message to it. *)
let tick (view : Stack.scheme_view) st =
  (match Stack.View.current_members view with
  | None -> () (* reconfiguration in progress: hold *)
  | Some conf -> (
    (* start the next queued operation *)
    (match (st.op, st.queue) with
    | Idle, Wreq (rid, reg, value) :: rest ->
      st.queue <- rest;
      st.op <-
        Get_tag
          { rid; reg; value; baseline = List.length (Counter_service.results st.cnt) };
      Counter_service.request_increment st.cnt
    | Idle, Rreq (rid, reg) :: rest ->
      st.queue <- rest;
      let mid = st.next_mid in
      st.next_mid <- st.next_mid + 1;
      let q = Querying { rid; reg; conf; mid; resps = Pid.Map.empty } in
      st.op <- q;
      (* a member answers its own query locally *)
      if Pid.Set.mem view.Stack.v_self conf then begin
        match st.op with
        | Querying qq ->
          qq.resps <-
            Pid.Map.add view.Stack.v_self (Reg_map.find_opt reg st.store) qq.resps
        | _ -> ()
      end
    | _ -> ());
    (* a write waiting for its tag *)
    match st.op with
    | Get_tag g ->
      let results = Counter_service.results st.cnt in
      if List.length results > g.baseline then begin
        let tag = List.nth results (List.length results - 1) in
        start_update view st ~rid:g.rid ~reg:g.reg ~entry:{ tag; tv = g.value } ~conf
          ~kind:`Write
      end
    | Idle | Querying _ | Updating _ -> ()));
  maybe_finish view st;
  (st, outstanding_messages view st)

let recv (view : Stack.scheme_view) ~from m st =
  let members_opt = Stack.View.current_members view in
  let is_member =
    match members_opt with
    | Some c -> Pid.Set.mem view.Stack.v_self c
    | None -> false
  in
  match m with
  | Cnt _ -> (st, []) (* routed to the counter layer by Plugin.stack *)
  | Query { mid; reg } ->
    if is_member then (st, [ (from, Query_resp { mid; entry = Reg_map.find_opt reg st.store }) ])
    else (st, [ (from, Op_abort { mid }) ])
  | Update { mid; reg; entry } ->
    (* every participant keeps a copy; only members acknowledge quorum
       membership, but acks are harmless either way *)
    if members_opt <> None || Recsa.is_participant view.Stack.v_recsa then begin
      merge_entry st reg entry;
      (st, [ (from, Update_ack { mid }) ])
    end
    else (st, [ (from, Op_abort { mid }) ])
  | Query_resp { mid; entry } ->
    (match st.op with
    | Querying q when q.mid = mid ->
      q.resps <- Pid.Map.add from entry q.resps;
      maybe_finish view st
    | _ -> ());
    (st, [])
  | Update_ack { mid } ->
    (match st.op with
    | Updating u when u.mid = mid ->
      u.acks <- Pid.Set.add from u.acks;
      maybe_finish view st
    | _ -> ());
    (st, [])
  | Op_abort { mid } ->
    (match st.op with
    | Querying { mid = m'; _ } when m' = mid -> abort_op st
    | Updating { mid = m'; _ } when m' = mid -> abort_op st
    | _ -> ());
    (st, [])

let merge_states ~self:_ st others =
  (* joining state transfer (initVars): adopt the freshest copy of every
     register across the members' states *)
  Pid.Map.iter
    (fun _ (other : state) ->
      Reg_map.iter (fun reg entry -> merge_entry st reg entry) other.store)
    others;
  st

(* Arbitrary-state injection for the register layer: forget a random subset
   of stored entries and abort the in-flight operation (which re-queues the
   client request, so liveness is preserved). The embedded counter state is
   corrupted separately through the plugin composition. *)
let corrupt_upper rng st =
  let keys = Reg_map.fold (fun k _ acc -> k :: acc) st.store [] in
  List.iter
    (fun k -> if Rng.bool rng then st.store <- Reg_map.remove k st.store)
    keys;
  abort_op st;
  st.next_mid <- Rng.int rng 1024;
  st

let plugin ?(in_transit_bound = 8) ?(exhaust_bound = 1 lsl 30) () =
  let counter_plugin = Counter_service.plugin ~in_transit_bound ~exhaust_bound in
  let upper =
    {
      Stack.p_init =
        (fun p ->
          {
            cnt = counter_plugin.Stack.p_init p;
            store = Reg_map.empty;
            op = Idle;
            queue = [];
            outcomes_rev = [];
            abort_count = 0;
            next_mid = 0;
          });
      p_tick = tick;
      p_recv = recv;
      p_merge = merge_states;
      p_corrupt = corrupt_upper;
    }
  in
  Stack.Plugin.stack ~lower:counter_plugin
    ~get:(fun st -> st.cnt)
    ~set:(fun st c ->
      st.cnt <- c;
      st)
    ~wrap:(fun m -> Cnt m)
    ~unwrap:(function Cnt m -> Some m | _ -> None)
    upper

let hooks ?in_transit_bound ?exhaust_bound () =
  {
    Stack.eval_conf = (fun ~self:_ ~trusted:_ _ -> false);
    pass_query = (fun ~self:_ ~joiner:_ -> true);
    plugin = plugin ?in_transit_bound ?exhaust_bound ();
  }

(* The register layer itself reports nothing; its embedded counter does. *)
let declare_metrics = Counter_service.declare_metrics

module Service = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "register"
  let plugin = plugin ()
  let hooks = hooks ()
  let corrupt rng st = plugin.Stack.p_corrupt rng st
  let declare_metrics = declare_metrics
end
