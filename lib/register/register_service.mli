(** Quorum-based MWMR register emulation — the paper's "typical two-phase
    read and write protocol" over the reconfiguration service (Sections 1
    and 4.3), with counters from the increment scheme as bounded tags
    ("tag numbers for distributed shared memory emulation", Section 4.1).

    This is the ABD-style alternative to {!Vs.Shared_memory} (which routes
    operations through the replicated state machine): here configuration
    members store per-register ⟨tag, value⟩ copies, and clients run
    two-phase operations against majorities:

    - {b write}: obtain a fresh tag from the counter-increment scheme
      (totally ordered, bounded), then update a majority.
    - {b read}: query a majority for the maximal ⟨tag, value⟩, write it
      back to a majority (so later reads cannot see older values), then
      return it.

    Operations issued during a reconfiguration are answered with Abort and
    retried. Values survive delicate reconfigurations because every
    {e participant} keeps a register copy refreshed by update messages (so
    a participant promoted into the new configuration already carries the
    state), and joiners adopt the freshest copies through the joining
    mechanism's state transfer ([initVars]). *)

open Counters

type reg = string
type value = int

type tagged = {
  tag : Counter.t;
  tv : value;
}

type state
type msg

(** Client-visible results of completed operations, oldest first. *)
type outcome =
  | Wrote of { rid : int; reg : reg }
  | Read of { rid : int; reg : reg; result : value option }

val plugin :
  ?in_transit_bound:int ->
  ?exhaust_bound:int ->
  unit ->
  (state, msg) Reconfig.Stack.plugin

val hooks :
  ?in_transit_bound:int ->
  ?exhaust_bound:int ->
  unit ->
  (state, msg) Reconfig.Stack.hooks

(** [write st ~rid reg v] — begin a write; [rid] fresh per node. *)
val write : state -> rid:int -> reg -> value -> unit

(** [read st ~rid reg] — begin a read. *)
val read : state -> rid:int -> reg -> unit

(** Completed operations at this node, oldest first. *)
val outcomes : state -> outcome list

(** [find_read st ~rid] — result of read [rid] once completed:
    [Some None] = register unwritten, [None] = still in flight. *)
val find_read : state -> rid:int -> value option option

(** [write_done st ~rid] — has write [rid] completed? *)
val write_done : state -> rid:int -> bool

(** [stored st reg] — this member's local copy (tests/monitoring). *)
val stored : state -> reg -> tagged option

(** Aborted attempts (operations retried after a reconfiguration). *)
val aborts : state -> int

(** {2 Fault injection and packaging} *)

(** Pre-register the service's telemetry families (those of the embedded
    counter scheme; the register layer itself reports nothing). *)
val declare_metrics : Telemetry.t -> unit

(** Default-configured instance; [corrupt] composes the register-layer
    injection (forget stored entries, abort the in-flight operation) with
    the embedded counter scheme's. *)
module Service :
  Reconfig.Stack.SERVICE with type state = state and type msg = msg
