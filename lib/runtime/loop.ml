open Sim

type 'm ctx = {
  c_self : Pid.t;
  c_now : float;
  c_rng : Rng.t;
  mutable c_out : (Pid.t * 'm) list; (* reversed *)
  c_trace : Trace.t;
  c_metrics : Metrics.t;
  c_telemetry : Telemetry.t;
}

module Ctx = struct
  type nonrec 'm ctx = 'm ctx

  let self c = c.c_self
  let now c = c.c_now
  let rng c = c.c_rng
  let send c dst msg = c.c_out <- (dst, msg) :: c.c_out

  let emit c tag detail =
    Trace.record c.c_trace ~time:c.c_now ~node:c.c_self ~tag detail

  let metrics c = c.c_metrics
  let telemetry c = c.c_telemetry
end

type ('s, 'm) node = {
  mutable n_state : 's;
  mutable n_crashed : bool;
  n_mailbox : (Pid.t * 'm) Queue.t;
}

type ('s, 'm) t = {
  driver : ('s, 'm, 'm ctx) Runtime_intf.driver;
  l_rng : Rng.t;
  clock : unit -> float;
  nodes : (Pid.t, ('s, 'm) node) Hashtbl.t;
  l_trace : Trace.t;
  l_metrics : Metrics.t;
  l_telemetry : Telemetry.t;
  mutable l_rounds : int;
  (* adversarial link state (fault plans): a blocked directed link drops
     every message; an installed profile drops/duplicates probabilistically.
     Both tables are empty by default, and the profile-free path draws no
     randomness — existing runs are unaffected. *)
  l_blocked : (Pid.t * Pid.t, unit) Hashtbl.t;
  l_profiles : (Pid.t * Pid.t, Engine.link_profile) Hashtbl.t;
}

let monotonic_clock () =
  (* gettimeofday can step backwards under clock adjustment; clamping makes
     the runtime's notion of time monotone regardless *)
  let start = Unix.gettimeofday () in
  let high = ref 0.0 in
  fun () ->
    let d = Unix.gettimeofday () -. start in
    if d > !high then high := d;
    !high

let create ?(seed = 42) ?clock ~driver ~pids () =
  let clock = match clock with Some c -> c | None -> monotonic_clock () in
  let t =
    {
      driver;
      l_rng = Rng.create seed;
      clock;
      nodes = Hashtbl.create 16;
      l_trace = Trace.create ();
      l_metrics = Metrics.create ();
      l_telemetry = Telemetry.create ();
      l_rounds = 0;
      l_blocked = Hashtbl.create 16;
      l_profiles = Hashtbl.create 16;
    }
  in
  List.iter
    (fun p ->
      if Hashtbl.mem t.nodes p then invalid_arg "Loop.create: duplicate pid";
      Hashtbl.add t.nodes p
        { n_state = driver.Runtime_intf.d_init p; n_crashed = false; n_mailbox = Queue.create () })
    pids;
  t

let now t = t.clock ()
let trace t = t.l_trace
let metrics t = t.l_metrics
let telemetry t = t.l_telemetry

let pids t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.nodes [] |> List.sort Pid.compare

let live_pids t =
  Hashtbl.fold (fun p n acc -> if n.n_crashed then acc else p :: acc) t.nodes []
  |> List.sort Pid.compare

let node t p =
  match Hashtbl.find_opt t.nodes p with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Loop: unknown node %d" p)

let state t p = (node t p).n_state
let rounds t = t.l_rounds

let pending t =
  Hashtbl.fold (fun _ n acc -> acc + Queue.length n.n_mailbox) t.nodes 0

let add_node t p =
  if Hashtbl.mem t.nodes p then invalid_arg "Loop.add_node: pid exists";
  Hashtbl.add t.nodes p
    { n_state = t.driver.Runtime_intf.d_init p; n_crashed = false; n_mailbox = Queue.create () };
  Trace.record t.l_trace ~time:(t.clock ()) ~node:p ~tag:"join" ""

let crash t p =
  let n = node t p in
  n.n_crashed <- true;
  Queue.clear n.n_mailbox;
  Trace.record t.l_trace ~time:(t.clock ()) ~node:p ~tag:"crash" ""

(* --- adversarial link state (fault plans) --- *)

let block_link t ~src ~dst = Hashtbl.replace t.l_blocked (src, dst) ()
let unblock_link t ~src ~dst = Hashtbl.remove t.l_blocked (src, dst)
let link_blocked t ~src ~dst = Hashtbl.mem t.l_blocked (src, dst)

let partition t group =
  let all = pids t in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if Pid.Set.mem p group <> Pid.Set.mem q group then begin
            block_link t ~src:p ~dst:q;
            block_link t ~src:q ~dst:p
          end)
        all)
    all;
  Trace.record t.l_trace ~time:(t.clock ()) ~tag:"partition"
    (Format.asprintf "%a" Pid.pp_set group)

let heal t =
  Hashtbl.reset t.l_blocked;
  Trace.record t.l_trace ~time:(t.clock ()) ~tag:"heal" ""

let set_link_profile t ~src ~dst = function
  | Some p -> Hashtbl.replace t.l_profiles (src, dst) p
  | None -> Hashtbl.remove t.l_profiles (src, dst)

let clear_link_profiles t = Hashtbl.reset t.l_profiles

let make_ctx t p =
  {
    c_self = p;
    c_now = t.clock ();
    c_rng = t.l_rng;
    c_out = [];
    c_trace = t.l_trace;
    c_metrics = t.l_metrics;
    c_telemetry = t.l_telemetry;
  }

let flush t ctx =
  List.iter
    (fun (dst, msg) ->
      match Hashtbl.find_opt t.nodes dst with
      | Some n when not n.n_crashed ->
        let src = ctx.c_self in
        if not (Hashtbl.mem t.l_blocked (src, dst)) then begin
          match Hashtbl.find_opt t.l_profiles (src, dst) with
          | None -> Queue.add (src, msg) n.n_mailbox
          | Some p ->
            (* mailboxes have no bit representation to flip, so a "flipped"
               message is unparseable, i.e. lost *)
            if
              (not (Rng.chance t.l_rng p.Engine.lp_drop))
              && not (p.Engine.lp_flip > 0.0 && Rng.chance t.l_rng p.Engine.lp_flip)
            then begin
              Queue.add (src, msg) n.n_mailbox;
              if Rng.chance t.l_rng p.Engine.lp_dup then Queue.add (src, msg) n.n_mailbox
            end
        end
      | Some _ | None -> ())
    (List.rev ctx.c_out);
  ctx.c_out <- []

let run_round t =
  let order = live_pids t in
  (* timer phase: one do-forever iteration per live node *)
  List.iter
    (fun p ->
      let n = node t p in
      if not n.n_crashed then begin
        let ctx = make_ctx t p in
        n.n_state <- t.driver.Runtime_intf.d_timer ctx n.n_state;
        flush t ctx
      end)
    order;
  (* delivery phase: only the messages already enqueued when each node's
     drain starts; replies land in the next phase *)
  List.iter
    (fun p ->
      let n = node t p in
      if not n.n_crashed then begin
        let budget = Queue.length n.n_mailbox in
        for _ = 1 to budget do
          if not n.n_crashed then begin
            let src, msg = Queue.pop n.n_mailbox in
            let ctx = make_ctx t p in
            n.n_state <- t.driver.Runtime_intf.d_recv ctx src msg n.n_state;
            flush t ctx
          end
        done
      end)
    order;
  t.l_rounds <- t.l_rounds + 1

let run_rounds t n =
  for _ = 1 to n do
    run_round t
  done

let run_until t ~max_rounds pred =
  let rec go budget =
    if pred t then true
    else if budget <= 0 then false
    else begin
      run_round t;
      go (budget - 1)
    end
  in
  go max_rounds
