(** A single-process real-time event loop runtime.

    The minimal second implementation of the RUNTIME signature ({!Runtime_intf.S}):
    nodes live in one process, exchange messages through in-process
    mailboxes, and read a monotonic wall clock. There is no simulated
    schedule, no message loss, duplication or reordering — the loop's job is
    to prove that the protocol core is engine-agnostic and to anchor the
    path toward a socket-backed runtime.

    Execution is round-based: {!run_round} gives every live node one timer
    step (in pid order), then delivers every message that was in a mailbox
    when the delivery phase began. Messages sent while delivering are
    processed in a later phase, so a message ping-pong cannot livelock a
    round. *)

open Sim

type 'm ctx
(** Per-step context; implements {!Runtime_intf.S} through {!Ctx}. *)

module Ctx : Runtime_intf.S with type 'm ctx = 'm ctx

type ('s, 'm) t

val create :
  ?seed:int ->
  ?clock:(unit -> float) ->
  driver:('s, 'm, 'm ctx) Runtime_intf.driver ->
  pids:Pid.t list ->
  unit ->
  ('s, 'm) t
(** [create ~driver ~pids ()] starts one node per pid. [clock] defaults to
    seconds of wall clock elapsed since [create] (monotone by
    construction); tests may inject a deterministic clock. [seed] feeds the
    runtime's {!Sim.Rng} (default 42). *)

(** {2 Observation} *)

val now : ('s, 'm) t -> float
val trace : ('s, 'm) t -> Trace.t
val metrics : ('s, 'm) t -> Metrics.t
val telemetry : ('s, 'm) t -> Telemetry.t
val pids : ('s, 'm) t -> Pid.t list
val live_pids : ('s, 'm) t -> Pid.t list
val state : ('s, 'm) t -> Pid.t -> 's

(** [rounds t] — completed {!run_round} iterations. *)
val rounds : ('s, 'm) t -> int

(** [pending t] — messages currently sitting in mailboxes. *)
val pending : ('s, 'm) t -> int

(** {2 Dynamics} *)

(** [add_node t p] starts a fresh node mid-run (its mailbox starts empty —
    in-process links are trivially clean). Raises [Invalid_argument] if [p]
    exists. *)
val add_node : ('s, 'm) t -> Pid.t -> unit

(** [crash t p] stops [p] permanently and discards its mailbox. *)
val crash : ('s, 'm) t -> Pid.t -> unit

(** {2 Adversarial links (fault plans)}

    The loop's default delivery is reliable; fault plans can degrade it.
    A blocked directed link silently drops every message; an installed
    {!Sim.Engine.link_profile} drops ([lp_drop]), duplicates ([lp_dup]) or
    loses-as-unparseable ([lp_flip] — mailboxes carry typed values, so a
    "bit-flipped" message is simply lost) probabilistically, drawing from
    the loop's seeded RNG. With no blocks and no profiles, delivery is
    exactly the historical reliable path with zero extra RNG draws. *)

val block_link : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> unit
val unblock_link : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> unit
val link_blocked : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> bool

(** [partition t group] cuts every link between [group] and the rest, both
    directions. *)
val partition : ('s, 'm) t -> Pid.Set.t -> unit

(** [heal t] removes every block. *)
val heal : ('s, 'm) t -> unit

val set_link_profile :
  ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> Sim.Engine.link_profile option -> unit

val clear_link_profiles : ('s, 'm) t -> unit

(** {2 Running} *)

(** [run_round t] — one timer step per live node, then one delivery phase. *)
val run_round : ('s, 'm) t -> unit

val run_rounds : ('s, 'm) t -> int -> unit

(** [run_until t ~max_rounds pred] runs rounds until [pred t] holds;
    [true] iff it held within the budget. *)
val run_until : ('s, 'm) t -> max_rounds:int -> (('s, 'm) t -> bool) -> bool
