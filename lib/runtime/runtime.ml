(* Umbrella module of the ssreconf.runtime library: re-exports the RUNTIME
   signature and driver type ({!Runtime_intf}), the simulator adapter, and
   the real-time {!Loop} runtime, so consumers write [Runtime.S],
   [Runtime.Sim_engine], [Runtime.Loop]. *)

module type S = Runtime_intf.S

type ('s, 'm, 'ctx) driver = ('s, 'm, 'ctx) Runtime_intf.driver = {
  d_init : Sim.Pid.t -> 's;
  d_timer : 'ctx -> 's -> 's;
  d_recv : 'ctx -> Sim.Pid.t -> 'm -> 's -> 's;
}

module Sim_engine = Runtime_intf.Sim_engine

let sim_behavior = Runtime_intf.sim_behavior

module Loop = Loop
