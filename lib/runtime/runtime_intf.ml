open Sim

module type S = sig
  type 'm ctx

  val self : 'm ctx -> Pid.t
  val now : 'm ctx -> float
  val rng : 'm ctx -> Rng.t
  val send : 'm ctx -> Pid.t -> 'm -> unit
  val emit : 'm ctx -> string -> string -> unit
  val metrics : 'm ctx -> Metrics.t
  val telemetry : 'm ctx -> Telemetry.t
end

type ('s, 'm, 'ctx) driver = {
  d_init : Pid.t -> 's;
  d_timer : 'ctx -> 's -> 's;
  d_recv : 'ctx -> Pid.t -> 'm -> 's -> 's;
}

module Sim_engine = struct
  type 'm ctx = 'm Engine.ctx

  let self = Engine.self
  let now = Engine.now
  let rng = Engine.rng_of_ctx
  let send = Engine.send
  let emit = Engine.emit
  let metrics = Engine.metrics_of_ctx
  let telemetry = Engine.telemetry_of_ctx
end

let sim_behavior d =
  { Engine.init = d.d_init; on_timer = d.d_timer; on_message = d.d_recv }
