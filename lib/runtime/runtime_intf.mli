(** Runtime abstraction for the protocol stack.

    The paper's algorithms are expressed against an abstract interleaving
    model: a node takes atomic timer steps and message-receipt steps, and
    during a step it may read its identity and clock, draw randomness, send
    messages, and record events. {!S} captures exactly that per-step
    capability set as a module signature, so the protocol core
    ([Reconfig.Stack]) can be written once and executed by any runtime that
    implements it:

    - {!Sim_engine} — the discrete-event simulator ({!Sim.Engine}), used by
      the experiment harness and tests;
    - {!Loop} — a single-process real-time event loop (monotonic clock,
      in-process mailboxes), the first step toward serving real traffic.

    A behavior written against {!S} is a {!driver}: the runtime-agnostic
    analogue of [Sim.Engine.behavior]. *)

open Sim

(** The RUNTIME signature: what one atomic step may observe and do.
    ['m ctx] is the per-step context for a node exchanging messages of
    type ['m]. *)
module type S = sig
  type 'm ctx

  val self : 'm ctx -> Pid.t
  (** The stepping node's identifier. *)

  val now : 'm ctx -> float
  (** The runtime's notion of current time: virtual time in the simulator,
      seconds of monotonic wall clock in a real-time runtime. *)

  val rng : 'm ctx -> Rng.t
  (** The runtime's random source (deterministic under the simulator). *)

  val send : 'm ctx -> Pid.t -> 'm -> unit
  (** [send ctx dst msg] enqueues [msg] towards [dst]; deliveries happen
      after the step completes (the paper's step structure: local
      computation, then communication). *)

  val emit : 'm ctx -> string -> string -> unit
  (** [emit ctx tag detail] records a trace event attributed to the
      stepping node. *)

  val metrics : 'm ctx -> Metrics.t
  (** Shared metrics registry for protocol-level accounting. *)

  val telemetry : 'm ctx -> Telemetry.t
  (** Shared telemetry registry: labeled counters and gauges, bounded
      histograms, and phase spans ({!Telemetry}). Like [now], times fed to
      spans are the runtime's — virtual under the simulator, so telemetry
      exports from seeded runs are deterministic. *)
end

(** A runtime-agnostic behavior: the node automaton, parameterized by the
    concrete context type ['ctx] of whichever runtime executes it. *)
type ('s, 'm, 'ctx) driver = {
  d_init : Pid.t -> 's;
  d_timer : 'ctx -> 's -> 's;  (** one [do forever] iteration *)
  d_recv : 'ctx -> Pid.t -> 'm -> 's -> 's;  (** receipt of one packet *)
}

(** {!Sim.Engine}'s per-step context implements the RUNTIME signature. *)
module Sim_engine : S with type 'm ctx = 'm Engine.ctx

(** [sim_behavior d] — repackage a driver written against {!Sim_engine} as
    a simulator behavior, for {!Sim.Engine.create}. *)
val sim_behavior : ('s, 'm, 'm Engine.ctx) driver -> ('s, 'm) Engine.behavior
