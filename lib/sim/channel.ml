type stats = {
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable duplicated : int;
}

(* Fixed-capacity ring buffer. [buf] stays [||] until the first packet
   arrives (there is no manifest dummy value for ['a]); afterwards it is a
   [cap]-slot array and the queue occupies [len] slots starting at [head].
   Slot [i] of the queue (head-first) lives at [buf.((head + i) mod cap)].
   Sends and overflow-victim replacement are O(1) and allocation-free;
   removal at a queue index shifts the shorter side of the ring (at most
   cap/2 slots, still allocation-free). Vacated slots keep their last
   packet until overwritten — packets are small protocol messages, so the
   retained reference is harmless. *)
type 'a t = {
  cap : int;
  mutable buf : 'a array;
  mutable head : int;
  mutable len : int;
  st : stats;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  {
    cap = capacity;
    buf = [||];
    head = 0;
    len = 0;
    st = { sent = 0; dropped = 0; delivered = 0; duplicated = 0 };
  }

let capacity t = t.cap
let length t = t.len
let is_empty t = t.len = 0
let stats t = t.st

let slot t i =
  let j = t.head + i in
  if j >= t.cap then j - t.cap else j

let ensure_buf t pkt = if Array.length t.buf = 0 then t.buf <- Array.make t.cap pkt

let send t rng pkt =
  t.st.sent <- t.st.sent + 1;
  if t.len < t.cap then begin
    ensure_buf t pkt;
    t.buf.(slot t t.len) <- pkt;
    t.len <- t.len + 1
  end
  else begin
    t.st.dropped <- t.st.dropped + 1;
    if Rng.bool rng then begin
      (* replace a random queued packet by the new one *)
      let victim = Rng.int rng t.len in
      t.buf.(slot t victim) <- pkt
    end
    (* else: the new packet itself is omitted *)
  end

(* Remove the [n]-th queued packet (head-first), preserving the relative
   order of the others — the exact semantics of the previous list
   representation, which seeded runs depend on. *)
let remove_nth t n =
  let x = t.buf.(slot t n) in
  if n < t.len - 1 - n then begin
    (* fewer packets before [n]: shift the prefix towards the tail *)
    for i = n downto 1 do
      t.buf.(slot t i) <- t.buf.(slot t (i - 1))
    done;
    t.head <- slot t 1
  end
  else
    (* fewer packets after [n]: shift the suffix towards the head *)
    for i = n to t.len - 2 do
      t.buf.(slot t i) <- t.buf.(slot t (i + 1))
    done;
  t.len <- t.len - 1;
  x

let take t rng ~reorder =
  if t.len = 0 then None
  else begin
    let idx = if reorder then Rng.int rng t.len else 0 in
    let pkt = remove_nth t idx in
    t.st.delivered <- t.st.delivered + 1;
    Some pkt
  end

let duplicate_head t =
  if t.len > 0 && t.len < t.cap then begin
    t.buf.(slot t t.len) <- t.buf.(t.head);
    t.len <- t.len + 1;
    t.st.duplicated <- t.st.duplicated + 1
  end

let drop_one t rng =
  if t.len > 0 then begin
    let idx = Rng.int rng t.len in
    ignore (remove_nth t idx);
    t.st.dropped <- t.st.dropped + 1
  end

let clear t =
  t.head <- 0;
  t.len <- 0

let corrupt t pkts =
  clear t;
  List.iter
    (fun pkt ->
      if t.len < t.cap then begin
        ensure_buf t pkt;
        t.buf.(t.len) <- pkt;
        t.len <- t.len + 1
      end)
    pkts

let contents t = List.init t.len (fun i -> t.buf.(slot t i))
