(** Bounded-capacity unreliable communication channel.

    Models the paper's links: each directed channel holds at most [capacity]
    packets. A send onto a full channel either omits the new packet or
    overwrites an already-queued one. Delivery may reorder, lose or duplicate
    packets, but fair communication holds: a packet re-sent infinitely often
    is delivered infinitely often (the simulator schedules deliveries with a
    loss probability strictly below one). After a transient fault a channel
    may contain arbitrary stale packets; [corrupt] injects them.

    Implemented as a fixed-capacity ring buffer: send, overflow-victim
    replacement and head operations are O(1) and allocation-free, and both
    the RNG draw order and the queue semantics (head-first order, removal
    preserves the relative order of the rest) are exactly those of the
    original list representation, so seeded runs are unchanged. *)

type 'a t

type stats = {
  mutable sent : int;  (** packets offered to the channel *)
  mutable dropped : int;  (** packets lost to capacity or loss *)
  mutable delivered : int;  (** packets handed to the receiver *)
  mutable duplicated : int;  (** extra deliveries of the same packet *)
}

val create : capacity:int -> 'a t
val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val stats : 'a t -> stats

(** [send t rng pkt] inserts [pkt]. On a full channel, with equal probability
    the new packet is dropped or it replaces a random queued packet. *)
val send : 'a t -> Rng.t -> 'a -> unit

(** [take t rng ~reorder] removes one packet for delivery: the head, or a
    uniformly random queued packet when [reorder]. [None] if empty. *)
val take : 'a t -> Rng.t -> reorder:bool -> 'a option

(** [duplicate_head t] re-enqueues a copy of the head packet if capacity
    allows, counting it as a duplication. *)
val duplicate_head : 'a t -> unit

(** [drop_one t rng] removes a random packet (loss), if any. *)
val drop_one : 'a t -> Rng.t -> unit

(** [clear t] empties the channel (snap-stabilizing link cleaning). *)
val clear : 'a t -> unit

(** [corrupt t pkts] replaces the contents with arbitrary packets
    (truncated to capacity) — transient-fault injection. *)
val corrupt : 'a t -> 'a list -> unit

(** [contents t] is the queued packets, head first. *)
val contents : 'a t -> 'a list
