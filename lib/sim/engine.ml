type 'm ctx = {
  ctx_self : Pid.t;
  ctx_time : float;
  ctx_rng : Rng.t;
  mutable ctx_outbox : (Pid.t * 'm) list; (* reversed *)
  ctx_trace : Trace.t;
  ctx_metrics : Metrics.t;
  ctx_telemetry : Telemetry.t;
}

let self c = c.ctx_self
let now c = c.ctx_time
let rng_of_ctx c = c.ctx_rng
let send c dst msg = c.ctx_outbox <- (dst, msg) :: c.ctx_outbox

let emit c tag detail =
  Trace.record c.ctx_trace ~time:c.ctx_time ~node:c.ctx_self ~tag detail

let metrics_of_ctx c = c.ctx_metrics
let telemetry_of_ctx c = c.ctx_telemetry

type ('s, 'm) behavior = {
  init : Pid.t -> 's;
  on_timer : 'm ctx -> 's -> 's;
  on_message : 'm ctx -> Pid.t -> 'm -> 's -> 's;
}

type event_kind =
  | Timer of Pid.t
  | Deliver of Pid.t * Pid.t (* src, dst *)

type event = { at : float; seq : int; kind : event_kind }

type ('s, 'm) node = {
  mutable n_state : 's;
  mutable n_crashed : bool;
  mutable n_ticks : int;
}

(* Directed links are keyed by a single int packing both endpoints, so the
   per-send/per-delivery channel lookups hash an immediate int instead of
   allocating a (src, dst) tuple. Pids must fit in [key_bits] bits. *)
let key_bits = Pid.key_bits
let key_mask = (1 lsl key_bits) - 1

let link_key ~src ~dst =
  if (src lor dst) land lnot key_mask <> 0 then
    invalid_arg
      (Printf.sprintf "Engine: pid out of range (src=%d dst=%d, must be in [0, 2^%d))"
         src dst key_bits);
  (src lsl key_bits) lor dst

let key_src k = k lsr key_bits
let key_dst k = k land key_mask

type ('s, 'm) t = {
  behavior : ('s, 'm) behavior;
  e_rng : Rng.t;
  capacity : int;
  loss : float;
  dup : float;
  reorder : bool;
  min_delay : float;
  max_delay : float;
  timer_min : float;
  timer_max : float;
  nodes : (Pid.t, ('s, 'm) node) Hashtbl.t;
  channels : (int, 'm Channel.t) Hashtbl.t; (* keyed by [link_key] *)
  queue : event Heap.t;
  blocked : (int, unit) Hashtbl.t; (* keyed by [link_key] *)
  mutable e_time : float;
  mutable e_seq : int;
  mutable e_steps : int;
  (* cached view of [rounds]: the minimum tick count over live nodes and how
     many live nodes sit at that minimum, so [rounds] is O(1) and the O(n)
     rescan only happens when the minimum actually advances (amortized O(1)
     per step). *)
  mutable e_live : int;
  mutable e_min_ticks : int;
  mutable e_min_count : int;
  e_trace : Trace.t;
  e_metrics : Metrics.t;
  e_telemetry : Telemetry.t;
}

let compare_event a b =
  let c = Float.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let push_event t ~at kind =
  t.e_seq <- t.e_seq + 1;
  Heap.push t.queue { at; seq = t.e_seq; kind }

let uniform rng lo hi = lo +. (Rng.float rng *. (hi -. lo))

let schedule_timer t p =
  push_event t ~at:(t.e_time +. uniform t.e_rng t.timer_min t.timer_max) (Timer p)

let schedule_delivery t ~src ~dst =
  push_event t ~at:(t.e_time +. uniform t.e_rng t.min_delay t.max_delay) (Deliver (src, dst))

let channel t ~src ~dst =
  let key = link_key ~src ~dst in
  match Hashtbl.find_opt t.channels key with
  | Some ch -> ch
  | None ->
    let ch = Channel.create ~capacity:t.capacity in
    Hashtbl.add t.channels key ch;
    ch

let node t p =
  match Hashtbl.find_opt t.nodes p with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Engine: unknown node %d" p)

let create ?(seed = 42) ?(capacity = 8) ?(loss = 0.02) ?(dup = 0.02) ?(reorder = true)
    ?(min_delay = 0.5) ?(max_delay = 2.0) ?(timer_min = 0.8) ?(timer_max = 1.2) ~behavior
    ~pids () =
  let t =
    {
      behavior;
      e_rng = Rng.create seed;
      capacity;
      loss;
      dup;
      reorder;
      min_delay;
      max_delay;
      timer_min;
      timer_max;
      nodes = Hashtbl.create 64;
      channels = Hashtbl.create 256;
      queue = Heap.create compare_event;
      blocked = Hashtbl.create 16;
      e_time = 0.0;
      e_seq = 0;
      e_steps = 0;
      e_live = 0;
      e_min_ticks = 0;
      e_min_count = 0;
      e_trace = Trace.create ();
      e_metrics = Metrics.create ();
      e_telemetry = Telemetry.create ();
    }
  in
  List.iter
    (fun p ->
      ignore (link_key ~src:p ~dst:p);
      if Hashtbl.mem t.nodes p then invalid_arg "Engine.create: duplicate pid";
      Hashtbl.add t.nodes p { n_state = behavior.init p; n_crashed = false; n_ticks = 0 };
      t.e_live <- t.e_live + 1;
      t.e_min_count <- t.e_min_count + 1;
      schedule_timer t p)
    pids;
  t

let time t = t.e_time
let rng t = t.e_rng
let trace t = t.e_trace
let metrics t = t.e_metrics
let telemetry t = t.e_telemetry

let pids t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.nodes [] |> List.sort Pid.compare

let live_pids t =
  Hashtbl.fold (fun p n acc -> if n.n_crashed then acc else p :: acc) t.nodes []
  |> List.sort Pid.compare

let is_live t p = match Hashtbl.find_opt t.nodes p with Some n -> not n.n_crashed | None -> false
let state t p = (node t p).n_state

let rounds t = if t.e_live = 0 then 0 else t.e_min_ticks

(* Rescan the node table to re-establish the min-tick cache; called only
   when the last node at the current minimum ticked, crashed, or the live
   set emptied — i.e. when the minimum may have moved. *)
let recompute_rounds t =
  let mn = ref max_int and cnt = ref 0 and live = ref 0 in
  Hashtbl.iter
    (fun _ n ->
      if not n.n_crashed then begin
        incr live;
        if n.n_ticks < !mn then begin
          mn := n.n_ticks;
          cnt := 1
        end
        else if n.n_ticks = !mn then incr cnt
      end)
    t.nodes;
  t.e_live <- !live;
  t.e_min_ticks <- (if !live = 0 then 0 else !mn);
  t.e_min_count <- !cnt

(* [n] (live) is about to go from [n_ticks] to [n_ticks + 1]. *)
let note_tick t n =
  let old = n.n_ticks in
  n.n_ticks <- old + 1;
  if old = t.e_min_ticks then begin
    t.e_min_count <- t.e_min_count - 1;
    if t.e_min_count = 0 then recompute_rounds t
  end

let steps t = t.e_steps
let set_state t p s = (node t p).n_state <- s

let map_states t f =
  Hashtbl.iter (fun p n -> if not n.n_crashed then n.n_state <- f p n.n_state) t.nodes

let corrupt_channel t ~src ~dst pkts = Channel.corrupt (channel t ~src ~dst) pkts
let clear_channels t = Hashtbl.iter (fun _ ch -> Channel.clear ch) t.channels

let crash t p =
  let n = node t p in
  if not n.n_crashed then begin
    n.n_crashed <- true;
    t.e_live <- t.e_live - 1;
    if n.n_ticks = t.e_min_ticks then begin
      t.e_min_count <- t.e_min_count - 1;
      if t.e_min_count = 0 && t.e_live > 0 then recompute_rounds t
    end
  end;
  Trace.record t.e_trace ~time:t.e_time ~node:p ~tag:"crash" ""

let add_node t p =
  ignore (link_key ~src:p ~dst:p);
  if Hashtbl.mem t.nodes p then invalid_arg "Engine.add_node: pid exists";
  let r = rounds t in
  Hashtbl.add t.nodes p
    { n_state = t.behavior.init p; n_crashed = false; n_ticks = r };
  (* the fresh node starts at the current round count, so it joins the set
     of nodes sitting at the cached minimum *)
  if t.e_live = 0 then begin
    t.e_min_ticks <- r;
    t.e_min_count <- 1
  end
  else t.e_min_count <- t.e_min_count + 1;
  t.e_live <- t.e_live + 1;
  (* snap-stabilizing link establishment: links of a fresh connection are
     cleaned of stale packets before use (Section 2) *)
  Hashtbl.iter
    (fun key ch ->
      if Pid.equal (key_src key) p || Pid.equal (key_dst key) p then Channel.clear ch)
    t.channels;
  schedule_timer t p;
  Trace.record t.e_trace ~time:t.e_time ~node:p ~tag:"join" ""

let link_blocked t ~src ~dst = Hashtbl.mem t.blocked (link_key ~src ~dst)
let block_link t ~src ~dst = Hashtbl.replace t.blocked (link_key ~src ~dst) ()
let unblock_link t ~src ~dst = Hashtbl.remove t.blocked (link_key ~src ~dst)

let partition t group =
  let all = pids t in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if Pid.Set.mem p group <> Pid.Set.mem q group then begin
            block_link t ~src:p ~dst:q;
            block_link t ~src:q ~dst:p
          end)
        all)
    all;
  Trace.record t.e_trace ~time:t.e_time ~tag:"partition"
    (Format.asprintf "%a" Pid.pp_set group)

let heal t =
  Hashtbl.reset t.blocked;
  Trace.record t.e_trace ~time:t.e_time ~tag:"heal" ""

let flush_outbox t ctx =
  let src = ctx.ctx_self in
  List.iter
    (fun (dst, msg) ->
      let ch = channel t ~src ~dst in
      if link_blocked t ~src ~dst then begin
        let st = Channel.stats ch in
        st.Channel.dropped <- st.Channel.dropped + 1
      end
      else begin
        Channel.send ch t.e_rng msg;
        (* duplication: occasionally schedule an extra delivery attempt *)
        if Rng.chance t.e_rng t.dup then Channel.duplicate_head ch;
        schedule_delivery t ~src ~dst
      end)
    (List.rev ctx.ctx_outbox);
  ctx.ctx_outbox <- []

let exec_step t kind =
  match kind with
  | Timer p -> (
    match Hashtbl.find_opt t.nodes p with
    | None -> ()
    | Some n ->
    if not n.n_crashed then begin
      let ctx =
        { ctx_self = p; ctx_time = t.e_time; ctx_rng = t.e_rng; ctx_outbox = [];
          ctx_trace = t.e_trace; ctx_metrics = t.e_metrics;
          ctx_telemetry = t.e_telemetry }
      in
      n.n_state <- t.behavior.on_timer ctx n.n_state;
      note_tick t n;
      flush_outbox t ctx;
      schedule_timer t p
    end)
  | Deliver (src, dst) -> (
    match Hashtbl.find_opt t.nodes dst with
    | None -> ()
    | Some n ->
    if not n.n_crashed then begin
      let ch = channel t ~src ~dst in
      if link_blocked t ~src ~dst then Channel.drop_one ch t.e_rng
      else if Rng.chance t.e_rng t.loss then Channel.drop_one ch t.e_rng
      else
        match Channel.take ch t.e_rng ~reorder:t.reorder with
        | None -> ()
        | Some msg ->
          let ctx =
            { ctx_self = dst; ctx_time = t.e_time; ctx_rng = t.e_rng; ctx_outbox = [];
              ctx_trace = t.e_trace; ctx_metrics = t.e_metrics;
              ctx_telemetry = t.e_telemetry }
          in
          n.n_state <- t.behavior.on_message ctx src msg n.n_state;
          flush_outbox t ctx
    end)

let step t =
  if Heap.is_empty t.queue then false
  else begin
    let ev = Heap.pop t.queue in
    t.e_time <- Float.max t.e_time ev.at;
    t.e_steps <- t.e_steps + 1;
    exec_step t ev.kind;
    true
  end

let run t ~steps =
  let rec go n = if n > 0 && step t then go (n - 1) in
  go steps

let run_rounds t n =
  let target = rounds t + n in
  let rec go () = if rounds t < target && step t then go () in
  go ()

let run_until t ~max_steps pred =
  let rec go n =
    if pred t then true
    else if n <= 0 then false
    else if step t then go (n - 1)
    else false
  in
  go max_steps
