(* The per-step context handed to behaviors. A single scratch record per
   engine is reused across every step (the simulator executes steps strictly
   sequentially), so the hot path allocates no context; a behavior must not
   retain its ctx beyond the step that handed it over. *)
type 'm ctx = {
  mutable ctx_self : Pid.t;
  mutable ctx_time : float;
  ctx_rng : Rng.t;
  mutable ctx_outbox : (Pid.t * 'm) list; (* reversed *)
  ctx_trace : Trace.t;
  ctx_metrics : Metrics.t;
  ctx_telemetry : Telemetry.t;
}

let self c = c.ctx_self
let now c = c.ctx_time
let rng_of_ctx c = c.ctx_rng
let send c dst msg = c.ctx_outbox <- (dst, msg) :: c.ctx_outbox

let emit c tag detail =
  Trace.record c.ctx_trace ~time:c.ctx_time ~node:c.ctx_self ~tag detail

let metrics_of_ctx c = c.ctx_metrics
let telemetry_of_ctx c = c.ctx_telemetry

type ('s, 'm) behavior = {
  init : Pid.t -> 's;
  on_timer : 'm ctx -> 's -> 's;
  on_message : 'm ctx -> Pid.t -> 'm -> 's -> 's;
}

(* Every pid the engine ever sees (as a node or as a channel endpoint) is
   assigned a dense slot index; the per-link state (channels, blocks) lives
   in slot-indexed matrices and events carry packed slot indices, so the
   per-event hot path is pure array indexing — no hashing, no tuple or
   variant allocation per event. *)

let slot_bits = 15
let slot_mask = (1 lsl slot_bits) - 1
let max_slots = 1 lsl slot_bits

(* Pids up to this bound resolve to their slot through a direct-mapped
   array; larger pids (legal up to 2^key_bits) fall back to a hashtable. *)
let slot_fast_limit = 1 lsl 16

(* An event's kind packs into one int: bit 0 tags timer (0) vs delivery
   (1); a timer carries the node's slot, a delivery both endpoint slots. *)
type event = { at : float; seq : int; kind : int }

let timer_kind slot = slot lsl 1
let deliver_kind ~src_slot ~dst_slot = (((src_slot lsl slot_bits) lor dst_slot) lsl 1) lor 1

type ('s, 'm) node = {
  n_pid : Pid.t;
  n_slot : int;
  mutable n_state : 's;
  mutable n_crashed : bool;
  mutable n_ticks : int;
}

let key_bits = Pid.key_bits
let key_mask = (1 lsl key_bits) - 1

let check_pids ~src ~dst =
  if (src lor dst) land lnot key_mask <> 0 then
    invalid_arg
      (Printf.sprintf "Engine: pid out of range (src=%d dst=%d, must be in [0, 2^%d))"
         src dst key_bits)

type link_profile = { lp_drop : float; lp_dup : float; lp_flip : float }

type ('s, 'm) t = {
  behavior : ('s, 'm) behavior;
  e_rng : Rng.t;
  capacity : int;
  loss : float;
  dup : float;
  reorder : bool;
  min_delay : float;
  max_delay : float;
  timer_min : float;
  timer_max : float;
  (* slot directory *)
  slot_tbl : (Pid.t, int) Hashtbl.t; (* pids >= slot_fast_limit *)
  mutable slot_fast : int array; (* pid -> slot, -1 when unassigned *)
  mutable pid_of_slot : Pid.t array;
  mutable node_of_slot : ('s, 'm) node option array;
  mutable n_slots : int;
  (* dense per-link state: both matrices are square over the slot space,
     rows allocated when their source slot is created *)
  mutable out : 'm Channel.t option array array; (* out.(src).(dst) *)
  mutable blocked : bool array array;
  (* adversarial per-link fault-rate overrides; [None] everywhere by
     default, in which case the global loss/dup model applies and the RNG
     draw sequence is exactly the profile-free one *)
  mutable profiles : link_profile option array array;
  mutable mangler : (Rng.t -> 'm -> 'm) option;
  queue : event Heap.t;
  mutable e_time : float;
  mutable e_seq : int;
  mutable e_steps : int;
  (* cached view of [rounds]: the minimum tick count over live nodes and how
     many live nodes sit at that minimum, so [rounds] is O(1) and the O(n)
     rescan only happens when the minimum actually advances (amortized O(1)
     per step). *)
  mutable e_live : int;
  mutable e_min_ticks : int;
  mutable e_min_count : int;
  (* cached sorted pid lists, invalidated by [add_node] / [crash] *)
  mutable cached_pids : Pid.t list option;
  mutable cached_live : Pid.t list option;
  scratch : 'm ctx;
  e_trace : Trace.t;
  e_metrics : Metrics.t;
  e_telemetry : Telemetry.t;
}

let compare_event a b =
  let c = Float.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let push_event t ~at kind =
  t.e_seq <- t.e_seq + 1;
  Heap.push t.queue { at; seq = t.e_seq; kind }

let uniform rng lo hi = lo +. (Rng.float rng *. (hi -. lo))

let schedule_timer t slot =
  push_event t ~at:(t.e_time +. uniform t.e_rng t.timer_min t.timer_max) (timer_kind slot)

let schedule_delivery t ~src_slot ~dst_slot =
  push_event t
    ~at:(t.e_time +. uniform t.e_rng t.min_delay t.max_delay)
    (deliver_kind ~src_slot ~dst_slot)

let find_slot t p =
  if p >= 0 && p < Array.length t.slot_fast then t.slot_fast.(p)
  else match Hashtbl.find_opt t.slot_tbl p with Some s -> s | None -> -1

let ensure_slot t p =
  let s = find_slot t p in
  if s >= 0 then s
  else begin
    check_pids ~src:p ~dst:p;
    let s = t.n_slots in
    let cap = Array.length t.pid_of_slot in
    if s = cap then begin
      let ncap = min max_slots (max 16 (2 * cap)) in
      if ncap = cap then invalid_arg "Engine: too many distinct endpoints";
      let np = Array.make ncap (-1) in
      Array.blit t.pid_of_slot 0 np 0 cap;
      t.pid_of_slot <- np;
      let nn = Array.make ncap None in
      Array.blit t.node_of_slot 0 nn 0 cap;
      t.node_of_slot <- nn;
      let nout = Array.make ncap [||] in
      let nbl = Array.make ncap [||] in
      let npr = Array.make ncap [||] in
      for i = 0 to s - 1 do
        let row = Array.make ncap None in
        Array.blit t.out.(i) 0 row 0 cap;
        nout.(i) <- row;
        let brow = Array.make ncap false in
        Array.blit t.blocked.(i) 0 brow 0 cap;
        nbl.(i) <- brow;
        let prow = Array.make ncap None in
        Array.blit t.profiles.(i) 0 prow 0 cap;
        npr.(i) <- prow
      done;
      t.out <- nout;
      t.blocked <- nbl;
      t.profiles <- npr
    end;
    let cap = Array.length t.pid_of_slot in
    t.pid_of_slot.(s) <- p;
    t.out.(s) <- Array.make cap None;
    t.blocked.(s) <- Array.make cap false;
    t.profiles.(s) <- Array.make cap None;
    (if p < slot_fast_limit then begin
       (if p >= Array.length t.slot_fast then begin
          let n = ref (max 64 (2 * Array.length t.slot_fast)) in
          while p >= !n do
            n := 2 * !n
          done;
          let nf = Array.make !n (-1) in
          Array.blit t.slot_fast 0 nf 0 (Array.length t.slot_fast);
          t.slot_fast <- nf
        end);
       t.slot_fast.(p) <- s
     end
     else Hashtbl.replace t.slot_tbl p s);
    t.n_slots <- s + 1;
    s
  end

let channel_of_slots t src_slot dst_slot =
  let row = t.out.(src_slot) in
  match row.(dst_slot) with
  | Some ch -> ch
  | None ->
    let ch = Channel.create ~capacity:t.capacity in
    row.(dst_slot) <- Some ch;
    ch

let channel t ~src ~dst =
  let ss = ensure_slot t src in
  let ds = ensure_slot t dst in
  channel_of_slots t ss ds

let node_opt t p =
  let s = find_slot t p in
  if s < 0 then None else t.node_of_slot.(s)

let node t p =
  match node_opt t p with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Engine: unknown node %d" p)

let create ?(seed = 42) ?(capacity = 8) ?(loss = 0.02) ?(dup = 0.02) ?(reorder = true)
    ?(min_delay = 0.5) ?(max_delay = 2.0) ?(timer_min = 0.8) ?(timer_max = 1.2) ~behavior
    ~pids () =
  let e_rng = Rng.create seed in
  let e_trace = Trace.create () in
  let e_metrics = Metrics.create () in
  let e_telemetry = Telemetry.create () in
  let t =
    {
      behavior;
      e_rng;
      capacity;
      loss;
      dup;
      reorder;
      min_delay;
      max_delay;
      timer_min;
      timer_max;
      slot_tbl = Hashtbl.create 16;
      slot_fast = Array.make 64 (-1);
      pid_of_slot = Array.make 16 (-1);
      node_of_slot = Array.make 16 None;
      n_slots = 0;
      out = Array.make 16 [||];
      blocked = Array.make 16 [||];
      profiles = Array.make 16 [||];
      mangler = None;
      queue = Heap.create compare_event;
      e_time = 0.0;
      e_seq = 0;
      e_steps = 0;
      e_live = 0;
      e_min_ticks = 0;
      e_min_count = 0;
      cached_pids = None;
      cached_live = None;
      scratch =
        {
          ctx_self = 0;
          ctx_time = 0.0;
          ctx_rng = e_rng;
          ctx_outbox = [];
          ctx_trace = e_trace;
          ctx_metrics = e_metrics;
          ctx_telemetry = e_telemetry;
        };
      e_trace;
      e_metrics;
      e_telemetry;
    }
  in
  List.iter
    (fun p ->
      let s = ensure_slot t p in
      if t.node_of_slot.(s) <> None then invalid_arg "Engine.create: duplicate pid";
      t.node_of_slot.(s) <-
        Some { n_pid = p; n_slot = s; n_state = behavior.init p; n_crashed = false; n_ticks = 0 };
      t.e_live <- t.e_live + 1;
      t.e_min_count <- t.e_min_count + 1;
      schedule_timer t s)
    pids;
  t

let time t = t.e_time
let rng t = t.e_rng
let trace t = t.e_trace
let metrics t = t.e_metrics
let telemetry t = t.e_telemetry

let fold_nodes t f acc =
  let acc = ref acc in
  for s = 0 to t.n_slots - 1 do
    match t.node_of_slot.(s) with Some n -> acc := f !acc n | None -> ()
  done;
  !acc

let pids t =
  match t.cached_pids with
  | Some l -> l
  | None ->
    let l =
      fold_nodes t (fun acc n -> n.n_pid :: acc) [] |> List.sort Pid.compare
    in
    t.cached_pids <- Some l;
    l

let live_pids t =
  match t.cached_live with
  | Some l -> l
  | None ->
    let l =
      fold_nodes t (fun acc n -> if n.n_crashed then acc else n.n_pid :: acc) []
      |> List.sort Pid.compare
    in
    t.cached_live <- Some l;
    l

let is_live t p = match node_opt t p with Some n -> not n.n_crashed | None -> false
let state t p = (node t p).n_state

let rounds t = if t.e_live = 0 then 0 else t.e_min_ticks

(* Rescan the node table to re-establish the min-tick cache; called only
   when the last node at the current minimum ticked, crashed, or the live
   set emptied — i.e. when the minimum may have moved. *)
let recompute_rounds t =
  let mn = ref max_int and cnt = ref 0 and live = ref 0 in
  for s = 0 to t.n_slots - 1 do
    match t.node_of_slot.(s) with
    | Some n when not n.n_crashed ->
      incr live;
      if n.n_ticks < !mn then begin
        mn := n.n_ticks;
        cnt := 1
      end
      else if n.n_ticks = !mn then incr cnt
    | Some _ | None -> ()
  done;
  t.e_live <- !live;
  t.e_min_ticks <- (if !live = 0 then 0 else !mn);
  t.e_min_count <- !cnt

(* [n] (live) is about to go from [n_ticks] to [n_ticks + 1]. *)
let note_tick t n =
  let old = n.n_ticks in
  n.n_ticks <- old + 1;
  if old = t.e_min_ticks then begin
    t.e_min_count <- t.e_min_count - 1;
    if t.e_min_count = 0 then recompute_rounds t
  end

let steps t = t.e_steps
let set_state t p s = (node t p).n_state <- s

let map_states t f =
  for s = 0 to t.n_slots - 1 do
    match t.node_of_slot.(s) with
    | Some n when not n.n_crashed -> n.n_state <- f n.n_pid n.n_state
    | Some _ | None -> ()
  done

let corrupt_channel t ~src ~dst pkts = Channel.corrupt (channel t ~src ~dst) pkts

let clear_channels t =
  Array.iter
    (fun row -> Array.iter (function Some ch -> Channel.clear ch | None -> ()) row)
    t.out

let crash t p =
  let n = node t p in
  if not n.n_crashed then begin
    n.n_crashed <- true;
    t.cached_live <- None;
    t.e_live <- t.e_live - 1;
    if n.n_ticks = t.e_min_ticks then begin
      t.e_min_count <- t.e_min_count - 1;
      if t.e_min_count = 0 && t.e_live > 0 then recompute_rounds t
    end
  end;
  Trace.record t.e_trace ~time:t.e_time ~node:p ~tag:"crash" ""

let add_node t p =
  let s = ensure_slot t p in
  if t.node_of_slot.(s) <> None then invalid_arg "Engine.add_node: pid exists";
  let r = rounds t in
  t.node_of_slot.(s) <-
    Some { n_pid = p; n_slot = s; n_state = t.behavior.init p; n_crashed = false; n_ticks = r };
  t.cached_pids <- None;
  t.cached_live <- None;
  (* the fresh node starts at the current round count, so it joins the set
     of nodes sitting at the cached minimum *)
  if t.e_live = 0 then begin
    t.e_min_ticks <- r;
    t.e_min_count <- 1
  end
  else t.e_min_count <- t.e_min_count + 1;
  t.e_live <- t.e_live + 1;
  (* snap-stabilizing link establishment: links of a fresh connection are
     cleaned of stale packets before use (Section 2) — exactly the links in
     row [s] (p as sender) and column [s] (p as receiver), no full scan *)
  Array.iter (function Some ch -> Channel.clear ch | None -> ()) t.out.(s);
  for i = 0 to t.n_slots - 1 do
    let row = t.out.(i) in
    match row.(s) with Some ch -> Channel.clear ch | None -> ()
  done;
  schedule_timer t s;
  Trace.record t.e_trace ~time:t.e_time ~node:p ~tag:"join" ""

let link_blocked t ~src ~dst =
  let ss = find_slot t src in
  if ss < 0 then false
  else
    let ds = find_slot t dst in
    ds >= 0 && t.blocked.(ss).(ds)

let block_link t ~src ~dst =
  let ss = ensure_slot t src in
  let ds = ensure_slot t dst in
  t.blocked.(ss).(ds) <- true

let unblock_link t ~src ~dst =
  let ss = find_slot t src in
  let ds = find_slot t dst in
  if ss >= 0 && ds >= 0 then t.blocked.(ss).(ds) <- false

let partition t group =
  let all = pids t in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if Pid.Set.mem p group <> Pid.Set.mem q group then begin
            block_link t ~src:p ~dst:q;
            block_link t ~src:q ~dst:p
          end)
        all)
    all;
  Trace.record t.e_trace ~time:t.e_time ~tag:"partition"
    (Format.asprintf "%a" Pid.pp_set group)

let heal t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) false) t.blocked;
  Trace.record t.e_trace ~time:t.e_time ~tag:"heal" ""

let set_link_profile t ~src ~dst profile =
  let ss = ensure_slot t src in
  let ds = ensure_slot t dst in
  t.profiles.(ss).(ds) <- profile

let link_profile t ~src ~dst =
  let ss = find_slot t src in
  if ss < 0 then None
  else
    let ds = find_slot t dst in
    if ds < 0 then None else t.profiles.(ss).(ds)

let clear_link_profiles t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) None) t.profiles

let set_mangler t f = t.mangler <- f

let flush_outbox t ~src_slot ctx =
  List.iter
    (fun (dst, msg) ->
      let dst_slot = ensure_slot t dst in
      let ch = channel_of_slots t src_slot dst_slot in
      if t.blocked.(src_slot).(dst_slot) then begin
        let st = Channel.stats ch in
        st.Channel.dropped <- st.Channel.dropped + 1
      end
      else begin
        Channel.send ch t.e_rng msg;
        (* duplication: occasionally schedule an extra delivery attempt; a
           link profile overrides the rate but spends the same single draw *)
        let dup =
          match t.profiles.(src_slot).(dst_slot) with
          | None -> t.dup
          | Some p -> p.lp_dup
        in
        if Rng.chance t.e_rng dup then Channel.duplicate_head ch;
        schedule_delivery t ~src_slot ~dst_slot
      end)
    (List.rev ctx.ctx_outbox);
  ctx.ctx_outbox <- []

let exec_step t kind =
  if kind land 1 = 0 then begin
    (* timer *)
    let slot = kind lsr 1 in
    match t.node_of_slot.(slot) with
    | None -> ()
    | Some n ->
      if not n.n_crashed then begin
        let ctx = t.scratch in
        ctx.ctx_self <- n.n_pid;
        ctx.ctx_time <- t.e_time;
        ctx.ctx_outbox <- [];
        n.n_state <- t.behavior.on_timer ctx n.n_state;
        note_tick t n;
        flush_outbox t ~src_slot:slot ctx;
        schedule_timer t slot
      end
  end
  else begin
    (* delivery *)
    let packed = kind lsr 1 in
    let src_slot = packed lsr slot_bits in
    let dst_slot = packed land slot_mask in
    match t.node_of_slot.(dst_slot) with
    | None -> ()
    | Some n ->
      if not n.n_crashed then begin
        let ch = channel_of_slots t src_slot dst_slot in
        let profile = t.profiles.(src_slot).(dst_slot) in
        let loss = match profile with None -> t.loss | Some p -> p.lp_drop in
        if t.blocked.(src_slot).(dst_slot) then Channel.drop_one ch t.e_rng
        else if Rng.chance t.e_rng loss then Channel.drop_one ch t.e_rng
        else
          match Channel.take ch t.e_rng ~reorder:t.reorder with
          | None -> ()
          | Some msg ->
            (* "bit flips": a profiled link occasionally mangles the packet
               through the installed mangler; without a mangler a flipped
               packet is unparseable and counts as dropped. Profile-free
               links spend no extra draw here. *)
            let deliver msg =
              let ctx = t.scratch in
              ctx.ctx_self <- n.n_pid;
              ctx.ctx_time <- t.e_time;
              ctx.ctx_outbox <- [];
              n.n_state <-
                t.behavior.on_message ctx t.pid_of_slot.(src_slot) msg n.n_state;
              flush_outbox t ~src_slot:dst_slot ctx
            in
            (match profile with
            | Some p when p.lp_flip > 0.0 && Rng.chance t.e_rng p.lp_flip -> (
              match t.mangler with
              | Some f -> deliver (f t.e_rng msg)
              | None ->
                let st = Channel.stats ch in
                st.Channel.dropped <- st.Channel.dropped + 1)
            | _ -> deliver msg)
      end
  end

let step t =
  if Heap.is_empty t.queue then false
  else begin
    let ev = Heap.pop t.queue in
    t.e_time <- Float.max t.e_time ev.at;
    t.e_steps <- t.e_steps + 1;
    exec_step t ev.kind;
    true
  end

let run t ~steps =
  let rec go n = if n > 0 && step t then go (n - 1) in
  go steps

let run_rounds t n =
  let target = rounds t + n in
  let rec go () = if rounds t < target && step t then go () in
  go ()

let run_until t ~max_steps pred =
  let rec go n =
    if pred t then true
    else if n <= 0 then false
    else if step t then go (n - 1)
    else false
  in
  go max_steps
