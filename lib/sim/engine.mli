(** Discrete-event simulation engine — the paper's interleaving model.

    An execution is an alternating sequence of system states and atomic
    steps. Each step is either a timer step (one iteration of a node's
    [do forever] loop) or the receipt of one packet. The engine schedules
    steps in virtual time under a seeded pseudo-random schedule that
    guarantees fair communication: every live node takes timer steps
    infinitely often, and each send schedules a delivery attempt whose loss
    probability is strictly below one, so a packet sent infinitely often is
    received infinitely often.

    Transient faults are injected by rewriting node states
    ([set_state]/[corrupt_states]) and channel contents
    ([corrupt_channel]); crashes by [crash]; joins by [add_node]. *)

(** Width, in bits, of a pid as packed into directed-link keys — re-exported
    {!Pid.key_bits}. Every pid handed to the engine must be in
    [\[0, 2^key_bits)]. *)
val key_bits : int

type 'm ctx
(** Per-step context handed to behaviors. *)

val self : 'm ctx -> Pid.t
val now : 'm ctx -> float
val rng_of_ctx : 'm ctx -> Rng.t

(** [send ctx dst msg] enqueues [msg] on the channel to [dst]; the paper's
    step structure (local computation then communication) is preserved by
    buffering sends until the step ends. *)
val send : 'm ctx -> Pid.t -> 'm -> unit

(** [emit ctx tag detail] records a trace event attributed to the stepping
    node. *)
val emit : 'm ctx -> string -> string -> unit

(** [metrics_of_ctx ctx] — the engine's metrics, for protocol-level
    accounting (e.g. messages sent per layer). *)
val metrics_of_ctx : 'm ctx -> Metrics.t

(** [telemetry_of_ctx ctx] — the engine's telemetry registry (labeled
    counters, histograms, phase spans). *)
val telemetry_of_ctx : 'm ctx -> Telemetry.t

type ('s, 'm) behavior = {
  init : Pid.t -> 's;
  on_timer : 'm ctx -> 's -> 's;  (** one [do forever] iteration *)
  on_message : 'm ctx -> Pid.t -> 'm -> 's -> 's;  (** receipt of one packet *)
}

type ('s, 'm) t

val create :
  ?seed:int ->
  ?capacity:int ->
  ?loss:float ->
  ?dup:float ->
  ?reorder:bool ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?timer_min:float ->
  ?timer_max:float ->
  behavior:('s, 'm) behavior ->
  pids:Pid.t list ->
  unit ->
  ('s, 'm) t
(** Defaults: [seed 42], [capacity 8] (the paper's [cap]), [loss 0.02],
    [dup 0.02], [reorder true], message delay uniform in
    [\[min_delay, max_delay\] = \[0.5, 2.0\]], timer period uniform in
    [\[timer_min, timer_max\] = \[0.8, 1.2\]]. *)

(** {2 Observation} *)

val time : ('s, 'm) t -> float
val rng : ('s, 'm) t -> Rng.t
val trace : ('s, 'm) t -> Trace.t
val metrics : ('s, 'm) t -> Metrics.t
val telemetry : ('s, 'm) t -> Telemetry.t
val pids : ('s, 'm) t -> Pid.t list
val live_pids : ('s, 'm) t -> Pid.t list
val is_live : ('s, 'm) t -> Pid.t -> bool
val state : ('s, 'm) t -> Pid.t -> 's
val channel : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> 'm Channel.t

(** [rounds t] counts asynchronous rounds: the minimum number of timer steps
    taken by any currently-live node. O(1) — the engine maintains the
    minimum incrementally instead of folding over the node table. *)
val rounds : ('s, 'm) t -> int

(** [steps t] is the total number of atomic steps executed so far. *)
val steps : ('s, 'm) t -> int

(** {2 Fault injection and dynamics} *)

val set_state : ('s, 'm) t -> Pid.t -> 's -> unit
val map_states : ('s, 'm) t -> (Pid.t -> 's -> 's) -> unit
val corrupt_channel : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> 'm list -> unit
val clear_channels : ('s, 'm) t -> unit

(** [crash t p] stops [p] permanently (fail-stop; the paper models rejoins
    as transient faults, never as explicit rejoining). *)
val crash : ('s, 'm) t -> Pid.t -> unit

(** {2 Partitions}

    A blocked directed link silently drops every packet sent over it —
    a temporary violation of the fully-connected assumption, which the
    scheme must survive once healed. *)

(** [block_link t ~src ~dst] cuts the directed link. *)
val block_link : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> unit

(** [unblock_link t ~src ~dst] restores it. *)
val unblock_link : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> unit

(** [partition t group] cuts every link between [group] and the rest of
    the system, in both directions. *)
val partition : ('s, 'm) t -> Pid.Set.t -> unit

(** [heal t] removes every block. *)
val heal : ('s, 'm) t -> unit

(** [link_blocked t ~src ~dst] — is the directed link currently cut? *)
val link_blocked : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> bool

(** {2 Per-link fault profiles}

    An installed profile overrides the engine's global loss/duplication
    model on one directed link, and can additionally mangle delivered
    packets ("bit flips"). Links without a profile follow the global model
    and spend exactly the same RNG draws as before this feature existed, so
    profile-free runs stay byte-identical across versions. *)

type link_profile = {
  lp_drop : float;  (** per-delivery loss probability (replaces [loss]) *)
  lp_dup : float;  (** per-send duplication probability (replaces [dup]) *)
  lp_flip : float;
      (** probability a delivered packet is rewritten by the mangler; with
          no mangler installed a flipped packet is dropped (an unparseable
          packet is indistinguishable from a lost one) *)
}

(** [set_link_profile t ~src ~dst p] installs ([Some]) or removes ([None])
    the profile on the directed link. *)
val set_link_profile : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> link_profile option -> unit

val link_profile : ('s, 'm) t -> src:Pid.t -> dst:Pid.t -> link_profile option

(** [clear_link_profiles t] removes every installed profile. *)
val clear_link_profiles : ('s, 'm) t -> unit

(** [set_mangler t f] installs the message rewriter used by [lp_flip];
    [f] receives the engine RNG and the in-flight message. *)
val set_mangler : ('s, 'm) t -> (Rng.t -> 'm -> 'm) option -> unit

(** [add_node t p] adds a fresh node with state [behavior.init p]; its
    links are created clean (snap-stabilized). Raises [Invalid_argument] if
    [p] already exists. *)
val add_node : ('s, 'm) t -> Pid.t -> unit

(** {2 Running} *)

(** [step t] executes one atomic step. Returns [false] when no event is
    pending (only possible if all nodes crashed). *)
val step : ('s, 'm) t -> bool

(** [run t ~steps] executes up to [steps] atomic steps. *)
val run : ('s, 'm) t -> steps:int -> unit

(** [run_rounds t n] runs until [rounds t] has advanced by [n]. *)
val run_rounds : ('s, 'm) t -> int -> unit

(** [run_until t ~max_steps pred] steps until [pred t] holds, checking after
    every step. Returns [true] iff the predicate held before the budget was
    exhausted. *)
val run_until : ('s, 'm) t -> max_steps:int -> (('s, 'm) t -> bool) -> bool
