type series = {
  mutable rev_samples : float list; (* newest first *)
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  (* sorted view, built lazily and invalidated on observe so repeated
     percentile queries don't re-sort *)
  mutable sorted : float array option;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 32 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let series t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
    let s =
      {
        rev_samples = [];
        n = 0;
        sum = 0.0;
        mn = infinity;
        mx = neg_infinity;
        sorted = None;
      }
    in
    Hashtbl.add t.series name s;
    s

let observe t name v =
  let s = series t name in
  s.rev_samples <- v :: s.rev_samples;
  s.n <- s.n + 1;
  s.sum <- s.sum +. v;
  if v < s.mn then s.mn <- v;
  if v > s.mx then s.mx <- v;
  s.sorted <- None

let find t name = Hashtbl.find_opt t.series name

let samples t name =
  match find t name with Some s -> List.rev s.rev_samples | None -> []

let sample_count t name = match find t name with Some s -> s.n | None -> 0

let mean t name =
  match find t name with
  | Some s when s.n > 0 -> Some (s.sum /. float_of_int s.n)
  | Some _ | None -> None

let min_sample t name =
  match find t name with
  | Some s when s.n > 0 -> Some s.mn
  | Some _ | None -> None

let max_sample t name =
  match find t name with
  | Some s when s.n > 0 -> Some s.mx
  | Some _ | None -> None

let sorted_view s =
  match s.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list s.rev_samples in
    Array.sort Float.compare a;
    s.sorted <- Some a;
    a

let percentile t name p =
  match find t name with
  | Some s when s.n > 0 ->
    let a = sorted_view s in
    let n = Array.length a in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    Some a.(idx)
  | Some _ | None -> None

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series

let counter_rows t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
