type t = int

let key_bits = 30

let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int
let to_string = string_of_int

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list l = Set.of_list l

let pp_set fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       Format.pp_print_int)
    (Set.elements s)

let compare_sets_lex a b =
  (* Sets as ascending tuples; shorter prefix-equal set is smaller. Walk the
     sets lazily instead of materializing both element lists: the comparison
     usually decides within the first few elements, and this sits on
     recSA's deterministic-choose path which runs every tick. Interned sets
     (Reconfig.Intern) make the physical-equality fast path hit often. *)
  if a == b then 0
  else
    let rec go sa sb =
      match (sa (), sb ()) with
      | Seq.Nil, Seq.Nil -> 0
      | Seq.Nil, Seq.Cons _ -> -1
      | Seq.Cons _, Seq.Nil -> 1
      | Seq.Cons (x, sa'), Seq.Cons (y, sb') ->
        let c = Int.compare x y in
        if c <> 0 then c else go sa' sb'
    in
    go (Set.to_seq a) (Set.to_seq b)

let equal_sets a b = a == b || Set.equal a b
