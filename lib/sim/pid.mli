(** Processor identifiers.

    The paper draws identifiers from a totally ordered set [P]. We use
    integers; the total order is the usual one. *)

type t = int

(** Identifiers must fit in [key_bits] bits (currently 30): two of them can
    then be packed side by side into one OCaml [int] to form collision-free
    link keys and handshake nonces (see {!Engine} and
    [Reconfig.Stack.snap_nonce]). *)
val key_bits : int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** [set_of_list l] builds a set from a list of identifiers. *)
val set_of_list : t list -> Set.t

(** [pp_set fmt s] prints a processor set as [{1, 2, 3}]. *)
val pp_set : Format.formatter -> Set.t -> unit

(** Lexicographic comparison of processor sets viewed as ascending tuples,
    as required by the paper's [<=lex] on proposal sets (Section 3.1).
    Physically equal sets compare equal without walking them. *)
val compare_sets_lex : Set.t -> Set.t -> int

(** Set equality with a physical-equality fast path; interned sets
    ([Reconfig.Intern.pid_set]) usually decide in one pointer compare. *)
val equal_sets : Set.t -> Set.t -> bool
