type entry = {
  time : float;
  node : Pid.t option;
  tag : string;
  detail : string;
}

(* Circular buffer: [buf] holds [len] entries starting at [start]
   (chronological order, wrapping). Storage grows geometrically up to
   [limit]; once full, recording overwrites the oldest entry, so the
   trace never holds more than [limit] entries. *)
type t = {
  limit : int;
  mutable buf : entry array;
  mutable start : int;
  mutable len : int;
}

let create ?(limit = 100_000) () = { limit; buf = [||]; start = 0; len = 0 }

let record t ~time ?node ~tag detail =
  if t.limit > 0 then begin
    let e = { time; node; tag; detail } in
    let cap = Array.length t.buf in
    if t.len < cap then begin
      t.buf.((t.start + t.len) mod cap) <- e;
      t.len <- t.len + 1
    end
    else if cap < t.limit then begin
      let cap' = min t.limit (max 16 (2 * cap)) in
      let buf' = Array.make cap' e in
      for i = 0 to t.len - 1 do
        buf'.(i) <- t.buf.((t.start + i) mod cap)
      done;
      buf'.(t.len) <- e;
      t.buf <- buf';
      t.start <- 0;
      t.len <- t.len + 1
    end
    else begin
      (* full at [limit]: evict the oldest *)
      t.buf.(t.start) <- e;
      t.start <- (t.start + 1) mod cap
    end
  end

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod cap)
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let length t = t.len
let entries t = List.rev (fold t ~init:[] (fun acc e -> e :: acc))

let with_tag t tag =
  List.rev
    (fold t ~init:[] (fun acc e ->
         if String.equal e.tag tag then e :: acc else acc))

let count t tag =
  fold t ~init:0 (fun acc e -> if String.equal e.tag tag then acc + 1 else acc)

let clear t =
  t.buf <- [||];
  t.start <- 0;
  t.len <- 0

let pp_entry fmt e =
  let pp_node fmt = function
    | None -> Format.fprintf fmt "-"
    | Some p -> Pid.pp fmt p
  in
  Format.fprintf fmt "[%8.2f] p%a %s: %s" e.time pp_node e.node e.tag e.detail
