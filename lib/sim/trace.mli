(** Structured execution traces.

    Protocols emit tagged events during a run; tests and experiments assert
    over the resulting sequence (e.g. that the delicate-replacement automaton
    of Figure 2 moves 0 -> 1 -> 2 -> 0). *)

type entry = {
  time : float;
  node : Pid.t option;
  tag : string;
  detail : string;
}

type t

(** [create ~limit ()] keeps at most [limit] most-recent entries
    (default 100_000). Recording beyond [limit] evicts the oldest entry:
    the trace is a ring, never holding more than [limit] entries. *)
val create : ?limit:int -> unit -> t

(** O(1) (amortized — storage grows geometrically up to [limit]). *)
val record : t -> time:float -> ?node:Pid.t -> tag:string -> string -> unit

(** Apply to each retained entry in chronological order, without
    materializing a list. *)
val iter : t -> (entry -> unit) -> unit

val fold : t -> init:'a -> ('a -> entry -> 'a) -> 'a

(** Number of retained entries (at most [limit]). *)
val length : t -> int

(** Entries in chronological order. *)
val entries : t -> entry list

(** [with_tag t tag] is the chronological sub-sequence carrying [tag]. *)
val with_tag : t -> string -> entry list

(** [count t tag] is [List.length (with_tag t tag)]. *)
val count : t -> string -> int

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
