type labels = (string * string) list

(* ------------------------------------------------------------------ *)
(* Bounded log-scale histograms                                        *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  let buckets = 40
  let least = 0.001
  let ratio = 2.0

  let bounds =
    Array.init buckets (fun i -> least *. (ratio ** float_of_int i))

  let bound i =
    if i < 0 || i >= buckets then invalid_arg "Telemetry.Histogram.bound"
    else bounds.(i)

  (* Smallest i with v <= bounds.(i); [buckets] for the overflow bucket.
     The log gives the index directly; one step of adjustment absorbs
     floating-point error at the exact bucket boundaries. *)
  let bucket_index v =
    if not (v > least) then 0
    else begin
      let raw = Float.log (v /. least) /. Float.log ratio in
      let i = ref (max 0 (min buckets (int_of_float (Float.ceil raw)))) in
      while !i > 0 && v <= bounds.(!i - 1) do
        decr i
      done;
      while !i < buckets && v > bounds.(!i) do
        incr i
      done;
      !i
    end

  type h = {
    counts : int array; (* length buckets + 1; last is overflow *)
    mutable n : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () =
    { counts = Array.make (buckets + 1) 0; n = 0; sum = 0.0; mn = infinity; mx = neg_infinity }

  let observe h v =
    let i = bucket_index v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v

  let count h = h.n
  let sum h = h.sum
  let min_value h = if h.n = 0 then None else Some h.mn
  let max_value h = if h.n = 0 then None else Some h.mx
  let mean h = if h.n = 0 then None else Some (h.sum /. float_of_int h.n)

  let quantile h p =
    if h.n = 0 then None
    else begin
      let rank =
        max 1 (min h.n (int_of_float (Float.ceil (p *. float_of_int h.n))))
      in
      let rec find i acc =
        let acc = acc + h.counts.(i) in
        if acc >= rank || i = buckets then i else find (i + 1) acc
      in
      let i = find 0 0 in
      let raw = if i >= buckets then h.mx else bounds.(i) in
      Some (Float.max h.mn (Float.min h.mx raw))
    end

  let cumulative h =
    let acc = ref 0 in
    List.init buckets (fun i ->
        acc := !acc + h.counts.(i);
        (bounds.(i), !acc))
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type 'v series = { s_name : string; s_labels : labels; mutable s_value : 'v }

type t = {
  t_counters : (string, int series) Hashtbl.t;
  t_gauges : (string, float series) Hashtbl.t;
  t_hists : (string, Histogram.h series) Hashtbl.t;
  t_spans : (string, float) Hashtbl.t; (* (name, key) -> begin time *)
}

let create () =
  {
    t_counters = Hashtbl.create 64;
    t_gauges = Hashtbl.create 16;
    t_hists = Hashtbl.create 32;
    t_spans = Hashtbl.create 16;
  }

let clear t =
  Hashtbl.reset t.t_counters;
  Hashtbl.reset t.t_gauges;
  Hashtbl.reset t.t_hists;
  Hashtbl.reset t.t_spans

let normalize_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> String.equal a b || dup rest
    | [ _ ] | [] -> false
  in
  if dup sorted then invalid_arg "Telemetry: duplicate label key";
  sorted

let series_key name labels =
  let b = Buffer.create (String.length name + 16) in
  Buffer.add_string b name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\x00';
      Buffer.add_string b k;
      Buffer.add_char b '\x01';
      Buffer.add_string b v)
    labels;
  Buffer.contents b

let find_series table ~default name labels =
  let labels = normalize_labels labels in
  let key = series_key name labels in
  match Hashtbl.find_opt table key with
  | Some s -> s
  | None ->
    let s = { s_name = name; s_labels = labels; s_value = default () } in
    Hashtbl.add table key s;
    s

(* counters *)

let add t ?(labels = []) name n =
  let s = find_series t.t_counters ~default:(fun () -> 0) name labels in
  s.s_value <- s.s_value + n

let inc t ?labels name = add t ?labels name 1
let declare_counter t ?labels name = add t ?labels name 0

let counter_value t ?(labels = []) name =
  let labels = normalize_labels labels in
  match Hashtbl.find_opt t.t_counters (series_key name labels) with
  | Some s -> s.s_value
  | None -> 0

(* gauges *)

let set_gauge t ?(labels = []) name v =
  let s = find_series t.t_gauges ~default:(fun () -> 0.0) name labels in
  s.s_value <- v

let gauge_value t ?(labels = []) name =
  let labels = normalize_labels labels in
  match Hashtbl.find_opt t.t_gauges (series_key name labels) with
  | Some s -> Some s.s_value
  | None -> None

(* histograms *)

let histogram t ?(labels = []) name =
  (find_series t.t_hists ~default:Histogram.create name labels).s_value

let declare_histogram t ?labels name = ignore (histogram t ?labels name)
let observe t ?labels name v = Histogram.observe (histogram t ?labels name) v

let find_histogram t ?(labels = []) name =
  let labels = normalize_labels labels in
  match Hashtbl.find_opt t.t_hists (series_key name labels) with
  | Some s -> Some s.s_value
  | None -> None

(* spans *)

let span_key name key = name ^ "\x00" ^ string_of_int key

let span_begin t ~name ~key ~now =
  let k = span_key name key in
  if Hashtbl.mem t.t_spans k then
    inc t ~labels:[ ("span", name) ] "telemetry.span_orphaned";
  Hashtbl.replace t.t_spans k now

let span_end ?labels t ~name ~key ~now =
  let k = span_key name key in
  match Hashtbl.find_opt t.t_spans k with
  | Some started ->
    Hashtbl.remove t.t_spans k;
    observe t ?labels name (now -. started)
  | None -> inc t ~labels:[ ("span", name) ] "telemetry.span_unmatched"

let span_drop t ~name ~key = Hashtbl.remove t.t_spans (span_key name key)
let span_open t ~name ~key = Hashtbl.mem t.t_spans (span_key name key)
let open_spans t = Hashtbl.length t.t_spans

(* export iteration *)

let sorted_rows table =
  Hashtbl.fold (fun _ s acc -> (s.s_name, s.s_labels, s.s_value) :: acc) table []
  |> List.sort (fun (n1, l1, _) (n2, l2, _) ->
         match String.compare n1 n2 with 0 -> compare l1 l2 | c -> c)

let counters t = sorted_rows t.t_counters
let gauges t = sorted_rows t.t_gauges
let histograms t = sorted_rows t.t_hists

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

module Export = struct
  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_float f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f

  let json_labels b labels =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      labels;
    Buffer.add_char b '}'

  let json_opt_float = function None -> "null" | Some f -> json_float f

  let metrics_jsonl b t =
    List.iter
      (fun (name, labels, v) ->
        Buffer.add_string b
          (Printf.sprintf "{\"kind\":\"counter\",\"name\":\"%s\",\"labels\":"
             (json_escape name));
        json_labels b labels;
        Buffer.add_string b (Printf.sprintf ",\"value\":%d}\n" v))
      (counters t);
    List.iter
      (fun (name, labels, v) ->
        Buffer.add_string b
          (Printf.sprintf "{\"kind\":\"gauge\",\"name\":\"%s\",\"labels\":"
             (json_escape name));
        json_labels b labels;
        Buffer.add_string b (Printf.sprintf ",\"value\":%s}\n" (json_float v)))
      (gauges t);
    List.iter
      (fun (name, labels, h) ->
        let q p = json_opt_float (Histogram.quantile h p) in
        Buffer.add_string b
          (Printf.sprintf "{\"kind\":\"histogram\",\"name\":\"%s\",\"labels\":"
             (json_escape name));
        json_labels b labels;
        Buffer.add_string b
          (Printf.sprintf
             ",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":["
             (Histogram.count h)
             (json_float (Histogram.sum h))
             (json_opt_float (Histogram.min_value h))
             (json_opt_float (Histogram.max_value h))
             (q 0.50) (q 0.90) (q 0.99));
        (* only the cumulative steps that advance: short, stable lines *)
        let prev = ref 0 in
        let first = ref true in
        List.iter
          (fun (bound, cum) ->
            if cum > !prev then begin
              if not !first then Buffer.add_char b ',';
              first := false;
              Buffer.add_string b (Printf.sprintf "[%s,%d]" (json_float bound) cum);
              prev := cum
            end)
          (Histogram.cumulative h);
        Buffer.add_string b "]}\n")
      (histograms t)

  let sanitize_name name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name

  let prom_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let prom_labels labels =
    match labels with
    | [] -> ""
    | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_name k) (prom_escape v))
             labels)
      ^ "}"

  let prom_float f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "+Inf"
    else if f = Float.neg_infinity then "-Inf"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f

  let type_line b name kind =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)

  (* rows arrive sorted by (name, labels); fold into (name, row list) runs *)
  let group_by_name rows =
    let rec go acc cur = function
      | [] ->
        List.rev
          (match cur with None -> acc | Some (n, rs) -> (n, List.rev rs) :: acc)
      | (name, labels, v) :: rest -> (
        match cur with
        | Some (n, rs) when String.equal n name ->
          go acc (Some (n, (labels, v) :: rs)) rest
        | Some (n, rs) ->
          go ((n, List.rev rs) :: acc) (Some (name, [ (labels, v) ])) rest
        | None -> go acc (Some (name, [ (labels, v) ])) rest)
    in
    go [] None rows

  let prometheus b t =
    List.iter
      (fun (name, rows) ->
        let pname = sanitize_name name ^ "_total" in
        type_line b pname "counter";
        List.iter
          (fun (labels, v) ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %d\n" pname (prom_labels labels) v))
          rows)
      (group_by_name (counters t));
    List.iter
      (fun (name, rows) ->
        let pname = sanitize_name name in
        type_line b pname "gauge";
        List.iter
          (fun (labels, v) ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" pname (prom_labels labels)
                 (prom_float v)))
          rows)
      (group_by_name (gauges t));
    List.iter
      (fun (name, rows) ->
        let pname = sanitize_name name in
        type_line b pname "histogram";
        List.iter
          (fun (labels, h) ->
            let with_le le = prom_labels (labels @ [ ("le", le) ]) in
            List.iter
              (fun (bound, cum) ->
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" pname
                     (with_le (prom_float bound)) cum))
              (Histogram.cumulative h);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" pname (with_le "+Inf")
                 (Histogram.count h));
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" pname (prom_labels labels)
                 (prom_float (Histogram.sum h)));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" pname (prom_labels labels)
                 (Histogram.count h)))
          rows)
      (group_by_name (histograms t))
end
