(** Labeled metrics and phase spans.

    A {!t} is a registry of named instruments, each optionally refined by a
    sorted list of [(key, value)] labels (one time series per distinct
    label set, Prometheus-style):

    - {e counters} — monotonically increasing integers;
    - {e gauges} — last-written floats;
    - {e histograms} — bounded log-scale bucket histograms
      ({!Histogram}): O(1) observe, running count/sum/min/max, and
      quantile estimates accurate to one bucket (a factor of
      {!Histogram.ratio});
    - {e spans} — phase timers keyed by [(name, key)]: {!span_begin} /
      {!span_end} pairs feed the duration into the histogram [name].

    The registry performs no I/O and never reads a clock: all times are
    passed in by the caller (virtual time under the simulator, wall clock
    in a real-time runtime), so exports from a seeded simulation are
    byte-identical across runs. {!Export} renders the JSONL and Prometheus
    text formats. *)

(** Label sets. Order is irrelevant: labels are sorted by key on entry.
    Duplicate keys are an error ([Invalid_argument]). *)
type labels = (string * string) list

type t

val create : unit -> t

(** Drop every instrument and open span. *)
val clear : t -> unit

(** {2 Bounded histograms} *)

module Histogram : sig
  type h

  (** Bucket [i] (0-based) covers values [v <= bound i]; values above the
      last bound land in an overflow (+Inf) bucket. Bounds grow
      geometrically: [bound i = least *. ratio^i]. *)

  val buckets : int
  (** Number of finite buckets (the overflow bucket is extra). *)

  val least : float
  (** Upper bound of bucket 0. *)

  val ratio : float
  (** Geometric growth factor between consecutive bounds. *)

  val bound : int -> float
  (** [bound i] — upper bound of finite bucket [i]; raises
      [Invalid_argument] outside [0, buckets). *)

  val bucket_index : float -> int
  (** The bucket a value falls into: the smallest [i] with
      [v <= bound i], or [buckets] for the overflow bucket. O(1). *)

  val create : unit -> h
  val observe : h -> float -> unit

  val count : h -> int
  val sum : h -> float
  val min_value : h -> float option
  val max_value : h -> float option
  val mean : h -> float option

  (** [quantile h p] with [p] in [\[0,1\]]: nearest-rank over the buckets.
      Returns the upper bound of the bucket holding the rank, clamped into
      [\[min_value, max_value\]] (so a single-sample histogram answers
      exactly). [None] when empty. *)
  val quantile : h -> float -> float option

  (** [cumulative h] — [(bound, cumulative count)] per finite bucket, in
      bound order; the overflow count is [count h] minus the last
      cumulative value. *)
  val cumulative : h -> (float * int) list
end

(** {2 Counters and gauges} *)

val inc : t -> ?labels:labels -> string -> unit
val add : t -> ?labels:labels -> string -> int -> unit

(** 0 if never touched. *)
val counter_value : t -> ?labels:labels -> string -> int

val set_gauge : t -> ?labels:labels -> string -> float -> unit
val gauge_value : t -> ?labels:labels -> string -> float option

(** {2 Histograms in the registry} *)

(** [observe t name v] records [v] into the histogram time series
    [(name, labels)], creating it on first use. *)
val observe : t -> ?labels:labels -> string -> float -> unit

val histogram : t -> ?labels:labels -> string -> Histogram.h
val find_histogram : t -> ?labels:labels -> string -> Histogram.h option

(** {2 Pre-registration}

    Declaring an instrument creates its (zero-valued) time series so
    exporters list the family even before the first event — scrape
    consumers see a stable schema. *)

val declare_counter : t -> ?labels:labels -> string -> unit
val declare_histogram : t -> ?labels:labels -> string -> unit

(** {2 Spans}

    A span is an open interval identified by [(name, key)] — [key] is
    typically the acting node's pid, so concurrent nodes time the same
    phase independently. [span_end] observes [now -. begin_time] into the
    histogram [name] under the labels given {e at the end} (label values
    often only known at completion, e.g. an outcome).

    Mismatches are counted, never fatal: a second [span_begin] on an open
    span counts [telemetry.span_orphaned{span=name}] and restarts the
    interval; [span_end] without a matching begin counts
    [telemetry.span_unmatched{span=name}] and observes nothing. *)

val span_begin : t -> name:string -> key:int -> now:float -> unit
val span_end : ?labels:labels -> t -> name:string -> key:int -> now:float -> unit

(** Abandon an open span without observing (e.g. the phase was aborted). *)
val span_drop : t -> name:string -> key:int -> unit

(** Is the [(name, key)] span currently open? *)
val span_open : t -> name:string -> key:int -> bool

(** Number of currently open spans. *)
val open_spans : t -> int

(** {2 Export iteration}

    Snapshots sorted by [(name, labels)] — deterministic regardless of
    insertion order. *)

val counters : t -> (string * labels * int) list
val gauges : t -> (string * labels * float) list
val histograms : t -> (string * labels * Histogram.h) list

(** {2 Exporters}

    Both renderings are deterministic: series are emitted in the sorted
    [(name, labels)] order above and floats use fixed formats, so
    identical registries render byte-identically. *)

module Export : sig
  (** One JSON object per line: counters as
      [{"kind":"counter","name":...,"labels":{...},"value":n}], gauges
      alike, histograms with [count]/[sum]/[min]/[max]/[p50]/[p90]/[p99]
      and a sparse cumulative [buckets] array of [[bound, count]] pairs. *)
  val metrics_jsonl : Buffer.t -> t -> unit

  (** Prometheus text exposition format (version 0.0.4): [# TYPE]
      comments; histograms as [_bucket{le="..."}] / [_sum] / [_count].
      Metric names are sanitized ([.] and other invalid characters become
      [_], counters gain a [_total] suffix); label values are escaped. *)
  val prometheus : Buffer.t -> t -> unit

  (** [json_escape s] — [s] as the contents of a JSON string literal
      (backslash, quote, and control characters escaped). *)
  val json_escape : string -> string

  (** A JSON-valid rendering of a float: integral values as [%.1f],
      others as [%.17g], non-finite as [null]. *)
  val json_float : float -> string
end
