open Sim
open Counters
open Reconfig

type ('st, 'cmd) machine = { initial : 'st; apply : 'st -> 'cmd -> 'st }
type status = Multicast | Propose | Install
type view = { vid : Counter.t option; vset : Pid.Set.t }

let view_equal v1 v2 =
  Pid.Set.equal v1.vset v2.vset
  &&
  match (v1.vid, v2.vid) with
  | None, None -> true
  | Some a, Some b -> Counter.equal a b
  | None, Some _ | Some _, None -> false

let pp_view fmt v =
  match v.vid with
  | None -> Format.fprintf fmt "view(_|_, %a)" Pid.pp_set v.vset
  | Some c -> Format.fprintf fmt "view(%a, %a)" Counter.pp c Pid.pp_set v.vset

let bottom_view = { vid = None; vset = Pid.Set.empty }

(* The paper's state[] record, broadcast every tick (line 24-25). *)
type ('st, 'cmd) report = {
  r_view : view;
  r_status : status;
  r_rnd : int;
  r_replica : 'st;
  r_batch : (Pid.t * 'cmd) list; (* message array applied entering r_rnd *)
  r_input : 'cmd option; (* last fetched, awaiting multicast *)
  r_propv : view;
  r_no_crd : bool;
  r_suspend : bool;
}

type ('st, 'cmd) state = {
  mutable cnt : Counter_service.state; (* the inc() provider (Section 4.2) *)
  mutable me : ('st, 'cmd) report;
  mutable peers : ('st, 'cmd) report Pid.Map.t;
  mutable pending : 'cmd list;
  mutable delivered_rev : 'cmd list;
  mutable batches_rev : (view * (Pid.t * 'cmd) list) list;
      (* per-batch delivery journal, newest first (virtual-synchrony audit) *)
  mutable awaiting_vid : int option; (* results length before the request *)
  mutable reconf_ready : bool;
  mutable view_installs : int;
  mutable i_am_coordinator : bool; (* refreshed every tick from valCrd *)
}

type ('st, 'cmd) msg =
  | Cnt of Counter_service.msg
  | Vs of ('st, 'cmd) report

let submit st cmd = st.pending <- st.pending @ [ cmd ]
let replica st = st.me.r_replica
let delivered st = List.rev st.delivered_rev
let delivered_batches st = List.rev st.batches_rev
let current_view st = st.me.r_view
let status_of st = st.me.r_status
let round_of st = st.me.r_rnd
let suspended st = st.me.r_suspend
let installs st = st.view_installs

let fresh_report initial =
  {
    r_view = bottom_view;
    r_status = Multicast;
    r_rnd = 0;
    r_replica = initial;
    r_batch = [];
    r_input = None;
    r_propv = bottom_view;
    r_no_crd = true;
    r_suspend = false;
  }

(* seemCrd / valCrd (lines 6-7): a report is a coordinator candidate when
   its proposed view is identified by a counter written by its owner, the
   owner belongs to the proposed set, and the proposed set contains a
   majority of the current configuration. *)
let candidates (v : Stack.scheme_view) st =
  match Stack.View.config_set v with
  | None -> []
  | Some config ->
    let part = Stack.View.participants v in
    let consider owner (r : ('st, 'cmd) report) acc =
      match r.r_propv.vid with
      | Some c
        when Pid.equal c.Counter.wid owner
             && Pid.Set.mem owner r.r_propv.vset
             && Quorum.has_majority ~config r.r_propv.vset
             && (r.r_status <> Multicast || view_equal r.r_view r.r_propv) ->
        (owner, c, r) :: acc
      | Some _ | None -> acc
    in
    let acc = consider v.Stack.v_self st.me [] in
    Pid.Map.fold
      (fun p r acc -> if Pid.Set.mem p part then consider p r acc else acc)
      st.peers acc

let valid_coordinator (v : Stack.scheme_view) st =
  List.fold_left
    (fun best (owner, c, r) ->
      match best with
      | None -> Some (owner, c, r)
      | Some (_, c', _) -> if Counter.compare_total c c' > 0 then Some (owner, c, r) else best)
    None (candidates v st)

let is_coordinator st = st.i_am_coordinator

let fetch st =
  match st.pending with
  | [] -> None
  | c :: rest ->
    st.pending <- rest;
    Some c

(* synchState/synchMsgs: adopt the most advanced replica among the reports
   of the proposed view's members. *)
let synch_state (v : Stack.scheme_view) st vset =
  let key (r : ('st, 'cmd) report) =
    let vid_key =
      match r.r_view.vid with None -> (-1, -1, -1) | Some c -> (c.Counter.seqn, c.Counter.wid, 0)
    in
    (vid_key, r.r_rnd)
  in
  let best =
    Pid.Map.fold
      (fun p r best ->
        if Pid.Set.mem p vset && compare (key r) (key best) > 0 then r else best)
      st.peers st.me
  in
  ignore v;
  best.r_replica

let apply_batch machine st batch =
  let sorted = List.sort (fun (a, _) (b, _) -> Pid.compare a b) batch in
  List.iter (fun (_, cmd) -> st.delivered_rev <- cmd :: st.delivered_rev) sorted;
  if sorted <> [] then st.batches_rev <- (st.me.r_view, sorted) :: st.batches_rev;
  List.fold_left (fun acc (_, cmd) -> machine.apply acc cmd) st.me.r_replica sorted

(* Follower adoption of the coordinator's report (lines 18-23). *)
let follow machine (v : Stack.scheme_view) st (crd : Pid.t) (rep : ('st, 'cmd) report) =
  (* a Propose/Install report for a view we already entered is a stale
     (reordered or duplicated) packet; ignore it *)
  let already_entered = view_equal st.me.r_view rep.r_propv && st.me.r_status = Multicast in
  match rep.r_status with
  | Propose ->
    if
      (not already_entered)
      && not (view_equal st.me.r_propv rep.r_propv && st.me.r_status = Propose)
    then
      st.me <- { st.me with r_status = Propose; r_propv = rep.r_propv; r_suspend = false }
  | Install ->
    if
      (not already_entered)
      && (st.me.r_status <> Install || not (view_equal st.me.r_propv rep.r_propv))
    then
      st.me <-
        {
          st.me with
          r_status = Install;
          r_propv = rep.r_propv;
          r_replica = rep.r_replica;
          r_rnd = rep.r_rnd;
          r_suspend = false;
        }
  | Multicast ->
    ignore crd;
    if view_equal st.me.r_view rep.r_view && st.me.r_status <> Multicast then
      (* recover from a stale Propose/Install adoption: the coordinator is
         already multicasting in this view *)
      st.me <-
        {
          st.me with
          r_status = Multicast;
          r_rnd = rep.r_rnd;
          r_replica = rep.r_replica;
          r_propv = rep.r_view;
          r_suspend = rep.r_suspend;
          r_batch = [];
        }
    else if not (view_equal st.me.r_view rep.r_view) then begin
      (* entering the installed view *)
      st.view_installs <- st.view_installs + 1;
      Telemetry.inc v.Stack.v_telemetry "vs.installs";
      (* close the view-change span if this node was the proposer *)
      (if
         Telemetry.span_open v.Stack.v_telemetry ~name:"vs.view_change_seconds"
           ~key:v.Stack.v_self
       then
         Telemetry.span_end v.Stack.v_telemetry ~labels:[ ("role", "follower") ]
           ~name:"vs.view_change_seconds" ~key:v.Stack.v_self ~now:v.Stack.v_now);
      v.Stack.v_emit "vs.enter_view" (Format.asprintf "%a" pp_view rep.r_view);
      st.me <-
        {
          st.me with
          r_view = rep.r_view;
          r_status = Multicast;
          r_rnd = rep.r_rnd;
          r_replica = rep.r_replica;
          r_propv = rep.r_view;
          r_suspend = rep.r_suspend;
          r_batch = [];
        }
    end
    else if rep.r_rnd > st.me.r_rnd then begin
      (* a new multicast round: apply the batch for its side effects *)
      if rep.r_rnd = st.me.r_rnd + 1 then begin
        let _ = apply_batch machine st rep.r_batch in
        ()
      end;
      let input_consumed =
        List.exists (fun (p, _) -> Pid.equal p v.Stack.v_self) rep.r_batch
      in
      let input =
        if input_consumed || st.me.r_input = None then fetch st else st.me.r_input
      in
      st.me <-
        {
          st.me with
          r_rnd = rep.r_rnd;
          r_replica = rep.r_replica;
          r_suspend = rep.r_suspend;
          r_input = (if rep.r_suspend then st.me.r_input else input);
        }
    end
    else if not (Bool.equal rep.r_suspend st.me.r_suspend) then
      (* same view and round: follow the coordinator's suspend flag *)
      st.me <- { st.me with r_suspend = rep.r_suspend }

(* Coordinator logic for one tick. *)
let coordinate machine ~eval_config (v : Stack.scheme_view) st =
  let self = v.Stack.v_self in
  let no_reco = Recsa.no_reco v.Stack.v_recsa ~trusted:v.Stack.v_trusted in
  let echoes_propose vset =
    Pid.Set.for_all
      (fun p ->
        Pid.equal p self
        ||
        match Pid.Map.find_opt p st.peers with
        | Some r -> view_equal r.r_propv st.me.r_propv && r.r_status = Propose
        | None -> false)
      vset
  in
  let echoes_install vset =
    Pid.Set.for_all
      (fun p ->
        Pid.equal p self
        ||
        match Pid.Map.find_opt p st.peers with
        | Some r -> view_equal r.r_propv st.me.r_propv && r.r_status = Install
        | None -> false)
      vset
  in
  let echoes_round () =
    Pid.Set.for_all
      (fun p ->
        Pid.equal p self
        ||
        match Pid.Map.find_opt p st.peers with
        | Some r ->
          view_equal r.r_view st.me.r_view && r.r_status = Multicast
          && r.r_rnd = st.me.r_rnd
        | None -> false)
      st.me.r_view.vset
  in
  match st.me.r_status with
  | Propose ->
    if echoes_propose st.me.r_propv.vset then begin
      let replica = synch_state v st st.me.r_propv.vset in
      st.me <- { st.me with r_status = Install; r_replica = replica; r_rnd = 0 };
      v.Stack.v_emit "vs.install" (Format.asprintf "%a" pp_view st.me.r_propv)
    end
  | Install ->
    if echoes_install st.me.r_propv.vset then begin
      st.view_installs <- st.view_installs + 1;
      st.me <-
        {
          st.me with
          r_view = st.me.r_propv;
          r_status = Multicast;
          r_rnd = 0;
          r_suspend = false;
          r_batch = [];
        };
      st.reconf_ready <- false;
      Telemetry.inc v.Stack.v_telemetry "vs.installs";
      (if
         Telemetry.span_open v.Stack.v_telemetry ~name:"vs.view_change_seconds"
           ~key:v.Stack.v_self
       then
         Telemetry.span_end v.Stack.v_telemetry ~labels:[ ("role", "coordinator") ]
           ~name:"vs.view_change_seconds" ~key:v.Stack.v_self ~now:v.Stack.v_now);
      v.Stack.v_emit "vs.new_view" (Format.asprintf "%a" pp_view st.me.r_view)
    end
  | Multicast ->
    if no_reco && echoes_round () then begin
      (* Algorithm 4.6: the coordinator alone decides on delicate
         reconfiguration *)
      let members =
        match Stack.View.config_set v with Some s -> s | None -> Pid.Set.empty
      in
      let wants_reconf =
        eval_config ~self ~trusted:v.Stack.v_trusted members
      in
      if wants_reconf && not st.me.r_suspend then begin
        st.me <- { st.me with r_suspend = true };
        v.Stack.v_emit "vs.suspend" ""
      end;
      (* the predictor changed its mind before the reconfiguration was
         requested: resume multicasting *)
      if (not wants_reconf) && st.me.r_suspend then begin
        st.me <- { st.me with r_suspend = false };
        st.reconf_ready <- false;
        v.Stack.v_emit "vs.resume" ""
      end;
      if st.me.r_suspend then begin
        let all_suspended =
          Pid.Set.for_all
            (fun p ->
              Pid.equal p self
              ||
              match Pid.Map.find_opt p st.peers with
              | Some r -> r.r_suspend
              | None -> false)
            st.me.r_view.vset
        in
        if all_suspended then st.reconf_ready <- true;
        if st.reconf_ready then begin
          let proposal = Stack.View.participants v in
          let useful =
            (not (Pid.Set.is_empty proposal))
            &&
            match Stack.View.config_set v with
            | Some c -> not (Pid.Set.equal c proposal)
            | None -> false
          in
          if useful then begin
            if Recsa.estab v.Stack.v_recsa ~trusted:v.Stack.v_trusted proposal then
              v.Stack.v_emit "vs.reconfigure"
                (Format.asprintf "%a" Pid.pp_set proposal)
          end
          else begin
            (* nothing to reconfigure toward: resume service *)
            st.me <- { st.me with r_suspend = false };
            st.reconf_ready <- false;
            v.Stack.v_emit "vs.resume" "proposal equals configuration"
          end
        end
      end
      else begin
        (* a normal lock-step multicast round *)
        let batch =
          Pid.Set.fold
            (fun p acc ->
              if Pid.equal p self then
                match st.me.r_input with Some c -> (p, c) :: acc | None -> acc
              else
                match Pid.Map.find_opt p st.peers with
                | Some { r_input = Some c; _ } -> (p, c) :: acc
                | Some _ | None -> acc)
            st.me.r_view.vset []
        in
        if batch <> [] || st.me.r_rnd = 0 then begin
          let replica = apply_batch machine st batch in
          let input =
            if List.exists (fun (p, _) -> Pid.equal p self) batch then fetch st
            else if st.me.r_input = None then fetch st
            else st.me.r_input
          in
          st.me <-
            {
              st.me with
              r_replica = replica;
              r_batch = batch;
              r_rnd = st.me.r_rnd + 1;
              r_input = input;
            }
        end
        else if st.me.r_input = None then
          st.me <- { st.me with r_input = fetch st }
      end
    end

(* Should this node propose itself as coordinator? *)
let should_propose (v : Stack.scheme_view) st =
  match Stack.View.config_set v with
  | None -> false
  | Some config ->
    let part = Stack.View.participants v in
    let majority_visible = Quorum.has_majority ~config v.Stack.v_trusted in
    if not majority_visible then false
    else begin
      match valid_coordinator v st with
      | None ->
        (* no coordinator: wait until a majority of participants also
           report noCrd (line 10) *)
        let no_crd_reports =
          Pid.Set.fold
            (fun p acc ->
              if Pid.equal p v.Stack.v_self then acc + 1
              else
                match Pid.Map.find_opt p st.peers with
                | Some r when r.r_no_crd -> acc + 1
                | Some _ | None -> acc)
            part 0
        in
        no_crd_reports > Pid.Set.cardinal part / 2
      | Some (owner, _, _) ->
        (* the valid coordinator renews its view when membership moved *)
        Pid.equal owner v.Stack.v_self
        && st.me.r_status = Multicast
        && not (Pid.Set.equal st.me.r_view.vset part)
    end

(* The virtual-synchrony logic alone; the embedded counter service (the
   inc() provider) is layered underneath via {!Stack.Plugin.stack}, which
   runs its tick first — so [Counter_service.results st.cnt] is current
   here — and routes every [Cnt] message to it. *)
let vs_tick machine ~eval_config (v : Stack.scheme_view) st =
  let self = v.Stack.v_self in
  let out = ref [] in
  if Recsa.is_participant v.Stack.v_recsa then begin
    let part = Stack.View.participants v in
    (* 1. track coordinator existence *)
    let val_crd = valid_coordinator v st in
    let no_crd = val_crd = None in
    if no_crd <> st.me.r_no_crd then st.me <- { st.me with r_no_crd = no_crd };
    st.i_am_coordinator <-
      (match val_crd with
      | Some (owner, _, _) -> Pid.equal owner self
      | None -> false);
    (* 2. proposals: obtain a view identifier from the counter service,
       then switch to Propose *)
    let no_reco = Recsa.no_reco v.Stack.v_recsa ~trusted:v.Stack.v_trusted in
    (match st.awaiting_vid with
    | Some baseline ->
      let results = Counter_service.results st.cnt in
      if List.length results > baseline then begin
        let vid = List.nth results (List.length results - 1) in
        st.awaiting_vid <- None;
        if should_propose v st || no_crd then begin
          st.me <-
            {
              st.me with
              r_status = Propose;
              r_propv = { vid = Some vid; vset = part };
              r_suspend = false;
            };
          st.reconf_ready <- false;
          Telemetry.inc v.Stack.v_telemetry "vs.proposals";
          Telemetry.span_begin v.Stack.v_telemetry ~name:"vs.view_change_seconds"
            ~key:self ~now:v.Stack.v_now;
          v.Stack.v_emit "vs.propose" (Format.asprintf "%a" pp_view st.me.r_propv)
        end
      end
    | None ->
      if no_reco && should_propose v st then begin
        Counter_service.request_increment st.cnt;
        st.awaiting_vid <- Some (List.length (Counter_service.results st.cnt))
      end);
    (* 3. refill the input slot so the coordinator sees pending commands
       (fetch(), line 15/22) *)
    (if
       st.me.r_status = Multicast && (not st.me.r_suspend) && st.me.r_input = None
     then
       match fetch st with
       | Some _ as input -> st.me <- { st.me with r_input = input }
       | None -> ());
    (* 4. act as coordinator or follower *)
    (match val_crd with
    | Some (owner, _, _) when Pid.equal owner self -> coordinate machine ~eval_config v st
    | Some (owner, _, rep) -> if not (Pid.equal owner self) then follow machine v st owner rep
    | None -> ());
    (* 5. broadcast the state record (lines 24-25) *)
    Pid.Set.iter
      (fun p -> if not (Pid.equal p self) then out := (p, Vs st.me) :: !out)
      part
  end;
  (st, List.rev !out)

let vs_recv machine (v : Stack.scheme_view) ~from m st =
  ignore machine;
  ignore v;
  match m with
  | Cnt _ -> (st, []) (* routed to the counter layer by Plugin.stack *)
  | Vs rep ->
    st.peers <- Pid.Map.add from rep st.peers;
    (st, [])

let default_eval ~self:_ ~trusted:_ _ = false

(* Arbitrary-state injection for the VS layer: scramble the broadcast
   report's control fields, forget all peer reports and the
   counter-request bookkeeping. The replica state itself is left alone —
   virtual synchrony re-synchronizes it from the most advanced survivor at
   the next install, which is exactly the recovery path under test. *)
let corrupt_upper rng st =
  let status =
    match Rng.int rng 3 with 0 -> Multicast | 1 -> Propose | _ -> Install
  in
  st.me <-
    {
      st.me with
      r_status = status;
      r_rnd = Rng.int rng 1024;
      r_no_crd = Rng.bool rng;
      r_suspend = Rng.bool rng;
    };
  st.peers <- Pid.Map.empty;
  st.awaiting_vid <- (if Rng.bool rng then None else Some (Rng.int rng 8));
  st.reconf_ready <- Rng.bool rng;
  st

let plugin ~machine ?(eval_config = default_eval) () =
  let counter_plugin =
    Counter_service.plugin ~in_transit_bound:8 ~exhaust_bound:(1 lsl 30)
  in
  let upper =
    {
      Stack.p_init =
        (fun p ->
          {
            cnt = counter_plugin.Stack.p_init p;
            me = fresh_report machine.initial;
            peers = Pid.Map.empty;
            pending = [];
            delivered_rev = [];
            batches_rev = [];
            awaiting_vid = None;
            reconf_ready = false;
            view_installs = 0;
            i_am_coordinator = false;
          });
      p_tick = (fun v st -> vs_tick machine ~eval_config v st);
      p_recv = (fun v ~from m st -> vs_recv machine v ~from m st);
      p_merge = (fun ~self:_ st _ -> st);
      p_corrupt = corrupt_upper;
    }
  in
  Stack.Plugin.stack ~lower:counter_plugin
    ~get:(fun st -> st.cnt)
    ~set:(fun st c ->
      st.cnt <- c;
      st)
    ~wrap:(fun m -> Cnt m)
    ~unwrap:(function Cnt m -> Some m | _ -> None)
    upper

let hooks ~machine ?eval_config () =
  {
    Stack.eval_conf = (fun ~self:_ ~trusted:_ _ -> false);
    pass_query = (fun ~self:_ ~joiner:_ -> true);
    plugin = plugin ~machine ?eval_config ();
  }

let declare_metrics tele =
  Telemetry.declare_counter tele "vs.proposals";
  Telemetry.declare_counter tele "vs.installs";
  Telemetry.declare_histogram tele "vs.view_change_seconds";
  Counter_service.declare_metrics tele

(* Monomorphic instance for harnesses that need a [Stack.SERVICE]: the
   integer-adder machine (the same one experiment E8 replicates). *)
module Service = struct
  type nonrec state = (int, int) state
  type nonrec msg = (int, int) msg

  let name = "vs"
  let adder = { initial = 0; apply = (fun s c -> s + c) }
  let plugin = plugin ~machine:adder ()
  let hooks = hooks ~machine:adder ()
  let corrupt rng st = plugin.Stack.p_corrupt rng st
  let declare_metrics = declare_metrics
end
