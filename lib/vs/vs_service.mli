(** Self-stabilizing reconfigurable virtually synchronous state machine
    replication — Algorithms 4.6 and 4.7 (Section 4.3).

    A coordinator-based primary-component algorithm over the
    reconfiguration scheme:

    - Each participant broadcasts its full state record (view, status,
      round, replica, last-round message array, fetched input, proposed
      view, noCrd and suspend flags).
    - A participant with a supportive majority obtains a counter from the
      counter-increment service (Section 4.2) and proposes a view whose
      identifier is that counter; the valid coordinator is the proposal
      with the greatest counter. Proposals go through Propose → Install →
      Multicast, synchronizing the replica state from the most advanced
      survivor at install time.
    - In Multicast status the coordinator runs lock-step rounds: it waits
      until every view member echoes its (view, status, round), then
      collects their fetched inputs into the message array, applies it to
      the replica and starts the next round. Followers adopt the
      coordinator's state and apply the message array for its side effects
      (delivery).
    - Coordinator-led delicate reconfiguration (Algorithm 4.6): when the
      [eval_config] predicate says so, the coordinator raises [suspend],
      waits for the whole view to suspend (the replicas are then
      synchronized), and calls recSA's [estab] directly. Multicast rounds
      resume in the first view of the new configuration with the replica
      state preserved (Theorem 4.13).

    ['st] is the replica state, ['cmd] the commands clients submit. *)

open Sim
open Counters

(** A deterministic state machine. *)
type ('st, 'cmd) machine = {
  initial : 'st;
  apply : 'st -> 'cmd -> 'st;
}

type status = Multicast | Propose | Install

(** A view: counter identifier plus member set. [vid = None] is the bottom
    view of a fresh (or reset) participant. *)
type view = {
  vid : Counter.t option;
  vset : Pid.Set.t;
}

val view_equal : view -> view -> bool
val pp_view : Format.formatter -> view -> unit

type ('st, 'cmd) state

type ('st, 'cmd) msg

(** [plugin ~machine ~eval_config ()] — the Stack plugin.
    [eval_config ~self ~trusted members] is Algorithm 4.6's prediction
    function, consulted only at the current coordinator. *)
val plugin :
  machine:('st, 'cmd) machine ->
  ?eval_config:(self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool) ->
  unit ->
  (('st, 'cmd) state, ('st, 'cmd) msg) Reconfig.Stack.plugin

val hooks :
  machine:('st, 'cmd) machine ->
  ?eval_config:(self:Pid.t -> trusted:Pid.Set.t -> Pid.Set.t -> bool) ->
  unit ->
  (('st, 'cmd) state, ('st, 'cmd) msg) Reconfig.Stack.hooks

(** {2 Client API} *)

(** [submit st cmd] — enqueue a command for multicast (the [fetch]
    source). *)
val submit : ('st, 'cmd) state -> 'cmd -> unit

(** The node's current replica state. *)
val replica : ('st, 'cmd) state -> 'st

(** Commands applied at this node, in application order. *)
val delivered : ('st, 'cmd) state -> 'cmd list

(** The per-batch delivery journal: each multicast round's message array
    (sender, command) tagged with the view it was delivered in — the raw
    material for the virtual-synchrony audit ({!Vs_checker}). *)
val delivered_batches : ('st, 'cmd) state -> (view * (Sim.Pid.t * 'cmd) list) list

(** {2 Observation} *)

val current_view : ('st, 'cmd) state -> view
val status_of : ('st, 'cmd) state -> status
val round_of : ('st, 'cmd) state -> int

(** [is_coordinator st] — this node believes itself the valid
    coordinator. *)
val is_coordinator : ('st, 'cmd) state -> bool

val suspended : ('st, 'cmd) state -> bool

(** Views installed at this node (counts view changes). *)
val installs : ('st, 'cmd) state -> int

(** {2 Fault injection and packaging} *)

(** Pre-register the service's telemetry families (including the embedded
    counter scheme's). *)
val declare_metrics : Telemetry.t -> unit

(** Monomorphic instance over the integer-adder machine (the same machine
    experiment E8 replicates); [corrupt] scrambles the broadcast report's
    control fields and forgets peer reports, composed with the embedded
    counter scheme's injection. *)
module Service :
  Reconfig.Stack.SERVICE
    with type state = (int, int) state
     and type msg = (int, int) msg
