(* Tests for the counter increment scheme (Algorithms 4.3-4.5). *)

open Sim
open Labels
open Counters

let qtest = QCheck_alcotest.to_alcotest
let set = Pid.set_of_list
let lbl c = Label.make ~creator:c ~sting:0 ~antistings:[]

(* --- pure counter order --- *)

let test_counter_order () =
  let l = lbl 1 in
  let c1 = Counter.make ~lbl:l ~seqn:3 ~wid:1 in
  let c2 = Counter.make ~lbl:l ~seqn:4 ~wid:1 in
  let c3 = Counter.make ~lbl:l ~seqn:4 ~wid:2 in
  Alcotest.(check bool) "seqn order" true (Counter.precedes c1 c2);
  Alcotest.(check bool) "wid breaks ties" true (Counter.precedes c2 c3);
  Alcotest.(check bool) "label dominates" true
    (Counter.precedes (Counter.make ~lbl:(lbl 1) ~seqn:99 ~wid:9)
       (Counter.make ~lbl:(lbl 2) ~seqn:0 ~wid:0))

let test_counter_exhaustion () =
  let c = Counter.make ~lbl:(lbl 1) ~seqn:16 ~wid:1 in
  Alcotest.(check bool) "exhausted at bound" true (Counter.exhausted ~bound:16 c);
  Alcotest.(check bool) "not before" false (Counter.exhausted ~bound:17 c)

let prop_counter_total_order_same_label =
  QCheck.Test.make ~name:"counters with one label are totally ordered"
    QCheck.(pair (pair small_nat small_nat) (pair small_nat small_nat))
    (fun ((s1, w1), (s2, w2)) ->
      let c1 = Counter.make ~lbl:(lbl 1) ~seqn:s1 ~wid:w1 in
      let c2 = Counter.make ~lbl:(lbl 1) ~seqn:s2 ~wid:w2 in
      Counter.equal c1 c2 || Counter.precedes c1 c2 || Counter.precedes c2 c1)

(* --- Counter_algo --- *)

let mk_algo self =
  Counter_algo.create ~self ~members:(set [ 1; 2; 3 ]) ~in_transit_bound:4
    ~exhaust_bound:1000

let test_algo_initial_counter () =
  let a = mk_algo 1 in
  let c = Counter_algo.find_max_counter a in
  Alcotest.(check int) "starts at 0" 0 c.Counter.seqn;
  Alcotest.(check int) "own label" 1 c.Counter.lbl.Label.creator

let test_algo_merge_keeps_greatest () =
  let a = mk_algo 1 in
  let l = lbl 2 in
  Counter_algo.merge a ~from:2 (Counter.pair_of (Counter.make ~lbl:l ~seqn:5 ~wid:2));
  Counter_algo.merge a ~from:2 (Counter.pair_of (Counter.make ~lbl:l ~seqn:9 ~wid:3));
  Counter_algo.merge a ~from:2 (Counter.pair_of (Counter.make ~lbl:l ~seqn:7 ~wid:1));
  let c = Counter_algo.find_max_counter a in
  Alcotest.(check int) "greatest seqn survives" 9 c.Counter.seqn

let test_algo_exhaustion_forces_new_epoch () =
  let a =
    Counter_algo.create ~self:1 ~members:(set [ 1; 2 ]) ~in_transit_bound:2
      ~exhaust_bound:10
  in
  Counter_algo.merge a ~from:2
    (Counter.pair_of (Counter.make ~lbl:(lbl 2) ~seqn:10 ~wid:2));
  let c = Counter_algo.find_max_counter a in
  Alcotest.(check bool) "fresh epoch not exhausted" false
    (Counter.exhausted ~bound:10 c);
  Alcotest.(check bool) "label creation counted" true (Counter_algo.label_creations a >= 1)

let test_algo_rebuild_voids_non_members () =
  let a = mk_algo 1 in
  Counter_algo.merge a ~from:3
    (Counter.pair_of (Counter.make ~lbl:(lbl 3) ~seqn:4 ~wid:3));
  Counter_algo.rebuild a ~members:(set [ 1; 2 ]);
  let c = Counter_algo.find_max_counter a in
  Alcotest.(check bool) "label by member" true (c.Counter.lbl.Label.creator <> 3)

(* --- full-stack increments --- *)

let make_counter_system ?(seed = 42) ?(n = 4) ?(exhaust_bound = 1 lsl 30) () =
  let members = List.init n (fun i -> i + 1) in
  Reconfig.Stack.of_scenario
    ~hooks:(Counter_service.hooks ~in_transit_bound:8 ~exhaust_bound)
    (Reconfig.Scenario.make ~seed ~n_bound:16 ~members ())

let app sys p = (Reconfig.Stack.node sys p).Reconfig.Stack.app

let test_member_increment () =
  let sys = make_counter_system () in
  Reconfig.Stack.run_rounds sys 15;
  Counter_service.request_increment (app sys 1);
  Alcotest.(check bool) "increment completes" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Counter_service.results (app t 1) <> []));
  match Counter_service.results (app sys 1) with
  | [ c ] -> Alcotest.(check int) "writer id" 1 c.Counter.wid
  | _ -> Alcotest.fail "expected exactly one result"

let test_sequential_increments_monotone () =
  let sys = make_counter_system ~seed:2 () in
  Reconfig.Stack.run_rounds sys 15;
  let rec go n =
    if n = 0 then ()
    else begin
      let before = List.length (Counter_service.results (app sys 2)) in
      Counter_service.request_increment (app sys 2);
      let done_ t = List.length (Counter_service.results (app t 2)) > before in
      Alcotest.(check bool) "increment completes" true
        (Reconfig.Stack.run_until sys ~max_steps:400_000 done_);
      go (n - 1)
    end
  in
  go 5;
  let results = Counter_service.results (app sys 2) in
  Alcotest.(check int) "five results" 5 (List.length results);
  let rec monotone = function
    | a :: (b :: _ as rest) -> Counter.precedes a b && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "strictly increasing" true (monotone results)

let test_concurrent_increments_ordered () =
  let sys = make_counter_system ~seed:3 () in
  Reconfig.Stack.run_rounds sys 15;
  Counter_service.request_increment (app sys 1);
  Counter_service.request_increment (app sys 3);
  let both t =
    Counter_service.results (app t 1) <> [] && Counter_service.results (app t 3) <> []
  in
  Alcotest.(check bool) "both complete" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 both);
  let c1 = List.hd (Counter_service.results (app sys 1)) in
  let c3 = List.hd (Counter_service.results (app sys 3)) in
  Alcotest.(check bool) "results are ordered (never equal)" true
    (Counter.precedes c1 c3 || Counter.precedes c3 c1)

let test_non_member_increment () =
  let sys = make_counter_system ~seed:4 () in
  Reconfig.Stack.run_rounds sys 15;
  (* a joiner that is a participant but not a configuration member *)
  Reconfig.Stack.add_joiner sys 9;
  Alcotest.(check bool) "joined" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Reconfig.Recsa.is_participant (Reconfig.Stack.node t 9).Reconfig.Stack.sa));
  (* the member counter must exist before a non-member can read it *)
  Counter_service.request_increment (app sys 1);
  Alcotest.(check bool) "member increment first" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Counter_service.results (app t 1) <> []));
  Counter_service.request_increment (app sys 9);
  Alcotest.(check bool) "non-member increment completes" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Counter_service.results (app t 9) <> []));
  let c9 = List.hd (Counter_service.results (app sys 9)) in
  Alcotest.(check int) "writer is the non-member" 9 c9.Counter.wid

let test_exhaustion_rollover_in_system () =
  (* tiny exhaustion bound: repeated increments must roll to a new epoch
     label rather than wrapping *)
  let sys = make_counter_system ~seed:5 ~exhaust_bound:3 () in
  Reconfig.Stack.run_rounds sys 15;
  let rec go n =
    if n = 0 then ()
    else begin
      let before = List.length (Counter_service.results (app sys 1)) in
      Counter_service.request_increment (app sys 1);
      Alcotest.(check bool) "increment completes" true
        (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
             List.length (Counter_service.results (app t 1)) > before));
      go (n - 1)
    end
  in
  go 8;
  let results = Counter_service.results (app sys 1) in
  Alcotest.(check int) "eight results" 8 (List.length results);
  let distinct_labels =
    List.fold_left
      (fun acc (c : Counter.t) ->
        if List.exists (Label.equal c.Counter.lbl) acc then acc else c.Counter.lbl :: acc)
      [] results
  in
  Alcotest.(check bool) "rolled to new epoch labels" true
    (List.length distinct_labels >= 2);
  Alcotest.(check bool) "no seqn beyond the bound + 1" true
    (List.for_all (fun (c : Counter.t) -> c.Counter.seqn <= 4) results)

let test_read_only_operation () =
  let sys = make_counter_system ~seed:6 () in
  Reconfig.Stack.run_rounds sys 15;
  (* establish a counter value first *)
  Counter_service.request_increment (app sys 1);
  Alcotest.(check bool) "increment completes" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Counter_service.results (app t 1) <> []));
  let written = List.hd (Counter_service.results (app sys 1)) in
  (* a different node reads without incrementing *)
  Counter_service.request_read (app sys 3);
  Alcotest.(check bool) "read completes" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Counter_service.read_results (app t 3) <> []));
  (match Counter_service.read_results (app sys 3) with
  | [ Some c ] ->
    Alcotest.(check bool) "read sees at least the written counter" true
      (Counter.equal c written || Counter.precedes written c)
  | [ None ] -> Alcotest.fail "read returned bottom despite a completed write"
  | _ -> Alcotest.fail "expected exactly one read result");
  (* reads do not bump the counter *)
  Counter_service.request_read (app sys 2);
  Alcotest.(check bool) "second read completes" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Counter_service.read_results (app t 2) <> []));
  match Counter_service.read_results (app sys 2) with
  | [ Some c ] ->
    (* read-only operations must not advance the sequence number *)
    Alcotest.(check int) "same seqn as written" written.Counter.seqn c.Counter.seqn
  | _ -> Alcotest.fail "expected one read result"

let test_non_member_read () =
  let sys = make_counter_system ~seed:7 () in
  Reconfig.Stack.run_rounds sys 15;
  Counter_service.request_increment (app sys 2);
  Alcotest.(check bool) "increment" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Counter_service.results (app t 2) <> []));
  Reconfig.Stack.add_joiner sys 9;
  Alcotest.(check bool) "joined" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Reconfig.Recsa.is_participant (Reconfig.Stack.node t 9).Reconfig.Stack.sa));
  Counter_service.request_read (app sys 9);
  Alcotest.(check bool) "non-member read completes" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Counter_service.read_results (app t 9) <> []))

let suites =
  [
    ( "counter.structure",
      [
        Alcotest.test_case "order" `Quick test_counter_order;
        Alcotest.test_case "exhaustion" `Quick test_counter_exhaustion;
        qtest prop_counter_total_order_same_label;
      ] );
    ( "counter.algo",
      [
        Alcotest.test_case "initial counter" `Quick test_algo_initial_counter;
        Alcotest.test_case "merge keeps greatest" `Quick test_algo_merge_keeps_greatest;
        Alcotest.test_case "exhaustion forces epoch" `Quick test_algo_exhaustion_forces_new_epoch;
        Alcotest.test_case "rebuild voids non-members" `Quick test_algo_rebuild_voids_non_members;
      ] );
    ( "counter.service",
      [
        Alcotest.test_case "member increment" `Quick test_member_increment;
        Alcotest.test_case "sequential monotone" `Quick test_sequential_increments_monotone;
        Alcotest.test_case "concurrent ordered" `Quick test_concurrent_increments_ordered;
        Alcotest.test_case "non-member increment" `Quick test_non_member_increment;
        Alcotest.test_case "exhaustion rollover" `Quick test_exhaustion_rollover_in_system;
        Alcotest.test_case "read-only operation" `Quick test_read_only_operation;
        Alcotest.test_case "non-member read" `Quick test_non_member_read;
      ] );
  ]
