(* Tests for the fault-injection subsystem: plan serialization round-trips
   and validation, deterministic replay (byte-identical telemetry), the
   randomized self-stabilization property (a random fault burst is always
   recovered from within a bounded number of rounds), per-service corrupt
   hooks, link profiles, and the real-time loop interpreter. *)

open Sim
open Reconfig
module Fp = Faults.Fault_plan

let members n = List.init n (fun i -> i + 1)

let scenario ?(seed = 42) ?(n = 5) () =
  Scenario.make ~seed ~n_bound:(4 * n) ~members:(members n) ()

(* every event kind at least once *)
let kitchen_sink_plan =
  Fp.make ~seed:13
    [
      Fp.at 4 (Fp.Corrupt_nodes (Fp.Sample 2));
      Fp.at 5 (Fp.Corrupt_channels Fp.All);
      Fp.at 6
        (Fp.Degrade_links
           {
             src = Fp.Pids [ 1; 2 ];
             dst = Fp.All;
             profile = { Fp.fp_drop = 0.25; fp_dup = 0.5; fp_flip = 0.125 };
           });
      Fp.at 9 (Fp.Restore_links { src = Fp.Pids [ 1; 2 ]; dst = Fp.All });
      Fp.at 10 (Fp.Partition { group = Fp.Sample 3; heal_after = 4 });
      Fp.at 16 Fp.Heal;
      Fp.at 18 (Fp.Crash (Fp.Pids [ 4 ]));
      Fp.at 20 (Fp.Join [ 9; 10 ]);
    ]

(* --- serialization --- *)

let test_json_roundtrip () =
  let json = Fp.to_json kitchen_sink_plan in
  (match Fp.of_json json with
  | Ok p ->
    Alcotest.(check bool) "round-trips" true (Fp.equal kitchen_sink_plan p);
    Alcotest.(check string) "re-render is stable" json (Fp.to_json p)
  | Error e -> Alcotest.failf "of_json rejected to_json output: %s" e);
  match Fp.of_json (Fp.to_json Fp.empty) with
  | Ok p -> Alcotest.(check bool) "empty round-trips" true (Fp.equal Fp.empty p)
  | Error e -> Alcotest.failf "empty plan rejected: %s" e

let test_json_rejects_malformed () =
  let rejects label s =
    match Fp.of_json s with
    | Ok _ -> Alcotest.failf "%s was accepted" label
    | Error e -> Alcotest.(check bool) label true (String.length e > 0)
  in
  rejects "truncated" "{\"seed\":1,\"events\":[";
  rejects "not an object" "[1,2,3]";
  rejects "unknown kind"
    "{\"seed\":1,\"events\":[{\"at\":0,\"kind\":\"meteor\",\"target\":\"all\"}]}";
  rejects "negative round"
    "{\"seed\":1,\"events\":[{\"at\":-3,\"kind\":\"heal\"}]}";
  rejects "probability out of range"
    "{\"seed\":1,\"events\":[{\"at\":0,\"kind\":\"degrade_links\",\"src\":\"all\",\
     \"dst\":\"all\",\"profile\":{\"drop\":1.5,\"dup\":0,\"flip\":0}}]}"

let test_storm_is_plain_data () =
  (* storm draws its Bernoulli coins at build time: same seed, same list *)
  let mk () = Fp.storm ~seed:99 ~start:10 ~rounds:25 ~rate:0.4 in
  Alcotest.(check bool) "storm deterministic" true
    (Fp.equal (Fp.make (mk ())) (Fp.make (mk ())));
  List.iter
    (fun (e : Fp.entry) ->
      Alcotest.(check bool) "within window" true (e.Fp.at >= 10 && e.Fp.at < 35))
    (mk ())

(* --- deterministic replay --- *)

let metrics_of_run plan =
  let sys = Stack.of_scenario ~hooks:Stack.unit_hooks (scenario ~seed:5 ()) in
  let recovered = Stack.run_plan sys ~plan ~max_rounds:800 in
  let buf = Buffer.create 1024 in
  Telemetry.Export.metrics_jsonl buf (Engine.telemetry (Stack.engine sys));
  (recovered, Buffer.contents buf)

let test_replay_byte_identical () =
  let plan =
    match Fp.of_json (Fp.to_json kitchen_sink_plan) with
    | Ok p -> p
    | Error e -> Alcotest.failf "round-trip failed: %s" e
  in
  let r1, m1 = metrics_of_run plan in
  let r2, m2 = metrics_of_run plan in
  Alcotest.(check bool) "recovered" true (r1 <> None);
  Alcotest.(check (option int)) "same recovery" r1 r2;
  Alcotest.(check string) "byte-identical telemetry" m1 m2

let test_injected_counters () =
  let sys = Stack.of_scenario ~hooks:Stack.unit_hooks (scenario ~seed:8 ()) in
  ignore (Stack.run_plan sys ~plan:kitchen_sink_plan ~max_rounds:800);
  let counters = Telemetry.counters (Engine.telemetry (Stack.engine sys)) in
  let count kind =
    List.fold_left
      (fun acc (name, labels, v) ->
        if name = "fault.injected" && List.assoc_opt "kind" labels = Some kind
        then acc + v
        else acc)
      0 counters
  in
  List.iter
    (fun kind ->
      Alcotest.(check bool) (kind ^ " counted") true (count kind >= 1))
    [ "corrupt_nodes"; "corrupt_channels"; "degrade_links"; "partition"; "crash"; "join" ]

(* --- the self-stabilization property ---

   Theorem 3.16 instantiated as a randomized test: whatever a random
   (but benign: every partition heals, a majority never crashes) fault
   burst does to the system, it reaches a steady config state within a
   bounded number of rounds after the last fault. 50 random bursts. *)

let random_burst seed =
  let rng = Rng.create (seed * 653 + 17) in
  let entries =
    Fp.storm ~seed:(seed * 31) ~start:10 ~rounds:15
      ~rate:(0.3 +. (Rng.float rng *. 0.5))
  in
  let entries =
    if Rng.bool rng then
      Fp.at 14 (Fp.Partition { group = Fp.Sample 3; heal_after = 3 + Rng.int rng 8 })
      :: entries
    else entries
  in
  let entries =
    if Rng.bool rng then
      Fp.at 12
        (Fp.Degrade_links
           { src = Fp.Sample 2; dst = Fp.All; profile = Fp.lossy (Rng.float rng *. 0.6) })
      :: Fp.at (20 + Rng.int rng 8) (Fp.Restore_links { src = Fp.All; dst = Fp.All })
      :: entries
    else entries
  in
  Fp.make ~seed entries

let test_random_burst_stabilizes () =
  for seed = 1 to 50 do
    let plan = random_burst seed in
    let sys = Stack.of_scenario ~hooks:Stack.unit_hooks (scenario ~seed ()) in
    (match Stack.run_plan sys ~plan ~max_rounds:800 with
    | Some _ -> ()
    | None -> Alcotest.failf "seed %d: not quiescent within budget" seed);
    (* packets sent by corrupted nodes can still be in flight at the first
       quiescent observation; the steady-state predicates only read node
       states, so drain the channels and re-converge before asserting *)
    Stack.run_rounds sys 5;
    (match Stack.run_until_quiescent sys ~max_rounds:200 with
    | Some _ -> ()
    | None -> Alcotest.failf "seed %d: did not settle after channel drain" seed);
    if not (Invariants.no_stale_information sys) then
      Alcotest.failf "seed %d: stale information survived recovery" seed;
    if not (Invariants.steady_config_state sys) then
      Alcotest.failf "seed %d: no steady config state after recovery" seed
  done

(* --- service corrupt hooks --- *)

let test_service_corrupt_recovers () =
  (* corrupt the full counter stack (protocol + application state) through
     the plan machinery and let the label/counter recycling recover *)
  let n = 4 in
  let sys =
    Stack.of_scenario
      ~hooks:(Counters.Counter_service.hooks ~in_transit_bound:8
                ~exhaust_bound:(1 lsl 30))
      (Scenario.make ~seed:21 ~n_bound:16 ~members:(members n) ())
  in
  Stack.run_rounds sys 15;
  let plan = Fp.make ~seed:3 [ Fp.at 20 (Fp.Corrupt_nodes Fp.All) ] in
  Alcotest.(check bool) "recovers from service corruption" true
    (Stack.run_plan sys ~plan ~max_rounds:800 <> None);
  (* the service still works: a member can complete an increment *)
  let app p = (Stack.node sys p).Stack.app in
  Counters.Counter_service.request_increment (app 1);
  Alcotest.(check bool) "increment completes after corruption" true
    (Stack.run_until sys ~max_steps:800_000 (fun t ->
         Counters.Counter_service.results (Stack.node t 1).Stack.app <> []))

let test_corrupt_hook_deterministic () =
  (* the same RNG seed produces the same garbage — required for replay *)
  let sys () =
    let s =
      Stack.of_scenario ~hooks:Stack.unit_hooks (scenario ~seed:33 ~n:3 ())
    in
    Stack.run_rounds s 10;
    s
  in
  let s1 = sys () and s2 = sys () in
  Stack.corrupt_node s1 ~rng:(Rng.create 77) 2;
  Stack.corrupt_node s2 ~rng:(Rng.create 77) 2;
  Stack.run_rounds s1 40;
  Stack.run_rounds s2 40;
  Alcotest.(check int) "same reset count" (Stack.total_resets s1)
    (Stack.total_resets s2)

(* --- link profiles --- *)

let test_dead_links_block_recovery () =
  (* with every link dead, a corrupted system cannot stabilize; restoring
     the links lets it *)
  let dead_world =
    Fp.make ~seed:4
      [
        Fp.at 10 (Fp.Degrade_links { src = Fp.All; dst = Fp.All; profile = Fp.dead });
        Fp.at 11 (Fp.Corrupt_nodes Fp.All);
      ]
  in
  let sys = Stack.of_scenario ~hooks:Stack.unit_hooks (scenario ~seed:6 ()) in
  Alcotest.(check (option int)) "dead links: stuck" None
    (Stack.run_plan sys ~plan:dead_world ~max_rounds:120);
  let healed = Fp.add dead_world ~at:14 Fp.Heal in
  let sys = Stack.of_scenario ~hooks:Stack.unit_hooks (scenario ~seed:6 ()) in
  Alcotest.(check bool) "healed links: recovers" true
    (Stack.run_plan sys ~plan:healed ~max_rounds:800 <> None)

(* --- the real-time loop interpreter --- *)

let test_loop_plan () =
  let plan =
    Fp.make ~seed:19
      [
        Fp.at 25 (Fp.Corrupt_nodes (Fp.Sample 2));
        Fp.at 27 (Fp.Corrupt_channels Fp.All);
        (* skipped: the loop has no channel state *)
        Fp.at 30 (Fp.Partition { group = Fp.Sample 2; heal_after = 6 });
      ]
  in
  let sc = scenario ~seed:14 () in
  let sys = Stack_loop.of_scenario ~hooks:Stack.unit_hooks sc in
  (match Stack_loop.run_plan sys ~plan ~max_rounds:1500 with
  | Some _ -> ()
  | None -> Alcotest.fail "loop did not stabilize after the plan");
  let counters =
    Telemetry.counters (Runtime.Loop.telemetry (Stack_loop.loop sys))
  in
  let total kind =
    List.fold_left
      (fun acc (name, labels, v) ->
        if name = "fault.injected" && List.assoc_opt "kind" labels = Some kind
        then acc + v
        else acc)
      0 counters
  in
  Alcotest.(check int) "corruptions applied" 1 (total "corrupt_nodes");
  Alcotest.(check int) "channel corruption skipped" 1 (total "skipped");
  Alcotest.(check int) "partition applied" 1 (total "partition")

let suites =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
        Alcotest.test_case "storm is plain data" `Quick test_storm_is_plain_data;
      ] );
    ( "faults.replay",
      [
        Alcotest.test_case "byte-identical replay" `Quick test_replay_byte_identical;
        Alcotest.test_case "injected counters" `Quick test_injected_counters;
        Alcotest.test_case "corrupt hook deterministic" `Quick
          test_corrupt_hook_deterministic;
      ] );
    ( "faults.stabilization",
      [
        Alcotest.test_case "random bursts stabilize (50 seeds)" `Slow
          test_random_burst_stabilizes;
        Alcotest.test_case "service corruption recovers" `Quick
          test_service_corrupt_recovers;
        Alcotest.test_case "dead links block recovery" `Quick
          test_dead_links_block_recovery;
      ] );
    ( "faults.loop",
      [ Alcotest.test_case "loop interprets plan" `Quick test_loop_plan ] );
  ]
