(* Tests for the domain-pool experiment harness.

   The load-bearing property is determinism: every (experiment x size x
   seed) cell is an independent simulation, and the pool reassembles
   results in submission order, so the rendered tables must be
   byte-identical for any job count. *)

open Harness

(* --- Pool ----------------------------------------------------------- *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs)
    (Pool.map pool (fun x -> x * x) xs)

let test_pool_map_sequential () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Alcotest.(check (list int)) "jobs=1 works" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_more_jobs_than_items () =
  Pool.with_pool ~jobs:8 @@ fun pool ->
  Alcotest.(check (list int)) "tiny input" [ 10 ] (Pool.map pool (fun x -> 10 * x) [ 1 ]);
  Alcotest.(check (list int)) "empty input" [] (Pool.map pool (fun x -> x) [])

exception Boom

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  Alcotest.check_raises "first worker exception re-raised" Boom (fun () ->
      ignore (Pool.map pool (fun x -> if x = 5 then raise Boom else x) (List.init 10 Fun.id)));
  (* the pool survives a failed batch *)
  Alcotest.(check (list int)) "pool reusable after failure" [ 1; 2; 3 ]
    (Pool.map pool Fun.id [ 1; 2; 3 ])

let test_pool_default_jobs () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* --- deterministic tables across job counts ------------------------- *)

(* E17 (the scale tier) carries wall-clock throughput columns — the one
   documented exception to byte-identity — so renders exclude it here. *)
let render tables =
  tables
  |> List.filter (fun t -> not (String.equal t.Table.id "E17"))
  |> List.map (Format.asprintf "%a" Table.pp)
  |> String.concat "\n"

let test_experiments_jobs_byte_identical () =
  let p = Experiments.quick_params in
  let seq = render (Experiments.all ~jobs:1 p) in
  let par = render (Experiments.all ~jobs:4 p) in
  Alcotest.(check string) "experiment tables identical for jobs=1 and jobs=4" seq par

let test_ablations_jobs_byte_identical () =
  let p = Experiments.quick_params in
  let seq = render (Ablations.all ~jobs:1 p) in
  let par = render (Ablations.all ~jobs:4 p) in
  Alcotest.(check string) "ablation tables identical for jobs=1 and jobs=4" seq par

let test_registry_matches_all () =
  let p = Experiments.quick_params in
  Alcotest.(check (list string)) "registry ids" Experiments.ids
    (List.map fst Experiments.registry);
  let via_all = render (Experiments.all ~jobs:1 p) in
  let via_registry =
    render (List.map (fun (_, f) -> f ?jobs:(Some 1) p) Experiments.registry)
  in
  Alcotest.(check string) "registry produces the same tables as all" via_all via_registry

let suites =
  [
    ( "harness.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
        Alcotest.test_case "sequential fallback" `Quick test_pool_map_sequential;
        Alcotest.test_case "more jobs than items" `Quick test_pool_more_jobs_than_items;
        Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
        Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
      ] );
    ( "harness.determinism",
      [
        Alcotest.test_case "experiments byte-identical across jobs" `Slow
          test_experiments_jobs_byte_identical;
        Alcotest.test_case "ablations byte-identical across jobs" `Slow
          test_ablations_jobs_byte_identical;
        Alcotest.test_case "registry matches all" `Slow test_registry_matches_all;
      ] );
  ]
