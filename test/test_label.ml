(* Tests for the bounded labeling scheme (Algorithms 4.1/4.2). *)

open Sim
open Labels

let qtest = QCheck_alcotest.to_alcotest
let set = Pid.set_of_list

(* --- pure label structure --- *)

let test_label_order_cross_creator () =
  let l1 = Label.make ~creator:1 ~sting:0 ~antistings:[] in
  let l2 = Label.make ~creator:2 ~sting:0 ~antistings:[] in
  Alcotest.(check bool) "creator order" true (Label.precedes l1 l2);
  Alcotest.(check bool) "antisymmetric" false (Label.precedes l2 l1)

let test_label_order_same_creator () =
  let l1 = Label.make ~creator:1 ~sting:0 ~antistings:[ 5 ] in
  let l2 = Label.make ~creator:1 ~sting:7 ~antistings:[ 0 ] in
  (* l1.sting=0 ∈ l2.antistings, l2.sting=7 ∉ l1.antistings: l1 ≺ l2 *)
  Alcotest.(check bool) "sting relation" true (Label.precedes l1 l2);
  Alcotest.(check bool) "not both ways" false (Label.precedes l2 l1);
  let l3 = Label.make ~creator:1 ~sting:9 ~antistings:[ 11 ] in
  let l4 = Label.make ~creator:1 ~sting:12 ~antistings:[ 13 ] in
  Alcotest.(check bool) "incomparable pair" false (Label.comparable l3 l4)

let test_next_label_dominates () =
  let known =
    [
      Label.make ~creator:1 ~sting:3 ~antistings:[ 1; 2 ];
      Label.make ~creator:1 ~sting:5 ~antistings:[ 0; 3 ];
      Label.make ~creator:2 ~sting:0 ~antistings:[ 4 ];
    ]
  in
  let fresh = Label.next_label ~creator:1 ~known in
  List.iter
    (fun l ->
      if Pid.equal l.Label.creator 1 then
        Alcotest.(check bool) "dominates same-creator known" true (Label.precedes l fresh))
    known

let prop_next_label_always_dominates =
  QCheck.Test.make ~name:"nextLabel dominates all same-creator known labels" ~count:200
    QCheck.(small_list (pair (int_range 0 20) (small_list (int_range 0 20))))
    (fun raw ->
      let known =
        List.map (fun (s, a) -> Label.make ~creator:1 ~sting:s ~antistings:a) raw
      in
      let fresh = Label.next_label ~creator:1 ~known in
      List.for_all (fun l -> Label.precedes l fresh) known)

let test_pair_cancellation () =
  let l = Label.make ~creator:1 ~sting:0 ~antistings:[] in
  let p = Label.pair_of l in
  Alcotest.(check bool) "fresh pair legit" true (Label.legit p);
  let by = Label.make ~creator:1 ~sting:1 ~antistings:[ 0 ] in
  let p' = Label.cancel p ~by in
  Alcotest.(check bool) "canceled" false (Label.legit p')

(* --- Algorithm 4.2 in isolation --- *)

let mk_algo self =
  Label_algo.create ~self ~members:(set [ 1; 2; 3 ]) ~in_transit_bound:4

let test_algo_creates_initial_label () =
  let a = mk_algo 1 in
  Label_algo.receipt_action a ~sent_max:None ~last_sent:None ~from:1;
  (match Label_algo.local_max a with
  | Some p ->
    Alcotest.(check bool) "legit" true (Label.legit p);
    Alcotest.(check int) "own creator" 1 p.Label.ml.Label.creator
  | None -> Alcotest.fail "no local max");
  Alcotest.(check int) "one creation" 1 (Label_algo.creations a)

let test_algo_adopts_greater_label () =
  let a = mk_algo 1 in
  Label_algo.receipt_action a ~sent_max:None ~last_sent:None ~from:1;
  let theirs = Label.pair_of (Label.make ~creator:3 ~sting:0 ~antistings:[]) in
  Label_algo.receipt_action a ~sent_max:(Some theirs) ~last_sent:None ~from:3;
  match Label_algo.local_max a with
  | Some p ->
    Alcotest.(check int) "adopted creator-3 label" 3 p.Label.ml.Label.creator
  | None -> Alcotest.fail "no local max"

let test_algo_cancellation_echo () =
  (* If a peer echoes our max back canceled, we must drop it and settle on
     something else. *)
  let a = mk_algo 3 in
  Label_algo.receipt_action a ~sent_max:None ~last_sent:None ~from:3;
  let mine = Option.get (Label_algo.local_max a) in
  let canceled =
    Label.cancel mine ~by:(Label.make ~creator:3 ~sting:99 ~antistings:[ mine.Label.ml.Label.sting ])
  in
  Label_algo.receipt_action a ~sent_max:None ~last_sent:(Some canceled) ~from:2;
  (match Label_algo.local_max a with
  | Some p ->
    Alcotest.(check bool) "new max legit" true (Label.legit p);
    Alcotest.(check bool) "new max differs" false (Label.equal p.Label.ml mine.Label.ml)
  | None -> Alcotest.fail "no local max");
  Alcotest.(check bool) "created a replacement" true (Label_algo.creations a >= 2)

let test_algo_voids_non_member_labels () =
  let a = mk_algo 1 in
  let foreign = Label.pair_of (Label.make ~creator:9 ~sting:0 ~antistings:[]) in
  Alcotest.(check bool) "cleanLP voids foreigners" true
    (Label_algo.clean_pair a foreign = None);
  let ours = Label.pair_of (Label.make ~creator:2 ~sting:0 ~antistings:[]) in
  Alcotest.(check bool) "cleanLP keeps members" true (Label_algo.clean_pair a ours <> None)

let test_algo_rebuild_drops_departed () =
  let a = mk_algo 1 in
  Label_algo.receipt_action a ~sent_max:None ~last_sent:None ~from:1;
  let theirs = Label.pair_of (Label.make ~creator:3 ~sting:0 ~antistings:[]) in
  Label_algo.receipt_action a ~sent_max:(Some theirs) ~last_sent:None ~from:3;
  (* reconfigure: 3 leaves the configuration *)
  Label_algo.rebuild a ~members:(set [ 1; 2 ]);
  (match Label_algo.local_max a with
  | Some p ->
    Alcotest.(check bool) "max not by departed member" true
      (p.Label.ml.Label.creator <> 3)
  | None -> Alcotest.fail "no local max after rebuild");
  Alcotest.(check (list int)) "queue of departed emptied" []
    (List.map (fun _ -> 0) (Label_algo.stored a 3))

let test_algo_bounded_queues () =
  let a = mk_algo 1 in
  (* flood with distinct labels from member 2 *)
  for i = 0 to 99 do
    let p = Label.pair_of (Label.make ~creator:2 ~sting:(i * 2) ~antistings:[ (i * 2) + 1 ]) in
    Label_algo.receipt_action a ~sent_max:(Some p) ~last_sent:None ~from:2
  done;
  (* bound for others is v + m = 3 + 4 *)
  Alcotest.(check bool) "other queue bounded" true (List.length (Label_algo.stored a 2) <= 7)

let prop_algo_two_party_agreement =
  (* Two members exchanging their maxima must converge to a common legit
     maximal label, from any sequence of interleaved exchanges. *)
  QCheck.Test.make ~name:"two-member label agreement" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let members = set [ 1; 2 ] in
      let a = Label_algo.create ~self:1 ~members ~in_transit_bound:2 in
      let b = Label_algo.create ~self:2 ~members ~in_transit_bound:2 in
      Label_algo.receipt_action a ~sent_max:None ~last_sent:None ~from:1;
      Label_algo.receipt_action b ~sent_max:None ~last_sent:None ~from:2;
      for _ = 1 to 40 do
        if Rng.bool rng then
          Label_algo.receipt_action b ~sent_max:(Label_algo.local_max a)
            ~last_sent:(Label_algo.max_of a 2) ~from:1
        else
          Label_algo.receipt_action a ~sent_max:(Label_algo.local_max b)
            ~last_sent:(Label_algo.max_of b 1) ~from:2
      done;
      (* a final full round trip settles both *)
      Label_algo.receipt_action b ~sent_max:(Label_algo.local_max a)
        ~last_sent:(Label_algo.max_of a 2) ~from:1;
      Label_algo.receipt_action a ~sent_max:(Label_algo.local_max b)
        ~last_sent:(Label_algo.max_of b 1) ~from:2;
      match (Label_algo.local_max a, Label_algo.local_max b) with
      | Some pa, Some pb ->
        Label.legit pa && Label.legit pb && Label.equal pa.Label.ml pb.Label.ml
      | _ -> false)

(* --- Algorithm 4.1 over the full stack --- *)

let make_label_system ?(seed = 42) ?(n = 4) () =
  let members = List.init n (fun i -> i + 1) in
  Reconfig.Stack.of_scenario
    ~hooks:(Label_service.hooks ~in_transit_bound:8)
    (Reconfig.Scenario.make ~seed ~n_bound:16 ~members ())

let test_service_agreement () =
  let sys = make_label_system () in
  Reconfig.Stack.run_rounds sys 10;
  let agreed t = Label_service.agreed_max t <> None in
  Alcotest.(check bool) "members agree on a maximal label" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 agreed)

let test_service_agreement_after_reconfig () =
  let sys = make_label_system ~seed:5 () in
  Reconfig.Stack.run_rounds sys 10;
  Alcotest.(check bool) "initial agreement" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Label_service.agreed_max t <> None));
  (* delicate reconfiguration to a smaller member set (retry until the
     scheme is momentarily quiet enough to accept the proposal) *)
  let rec propose n =
    if n = 0 then Alcotest.fail "estab never accepted"
    else if not (Reconfig.Stack.estab sys 1 (set [ 1; 2; 3 ])) then begin
      Reconfig.Stack.run_rounds sys 2;
      propose (n - 1)
    end
  in
  propose 50;
  let settled t =
    match Reconfig.Stack.uniform_config t with
    | Some c -> Pid.Set.equal c (set [ 1; 2; 3 ]) && Label_service.agreed_max t <> None
    | None -> false
  in
  Alcotest.(check bool) "agreement in the new configuration" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 settled)

let test_service_recovers_from_corrupt_labels () =
  let sys = make_label_system ~seed:6 () in
  Reconfig.Stack.run_rounds sys 10;
  Alcotest.(check bool) "initial agreement" true
    (Reconfig.Stack.run_until sys ~max_steps:400_000 (fun t ->
         Label_service.agreed_max t <> None));
  (* corrupt every member's label storage with conflicting same-creator
     labels (incomparable, so they must cancel out) *)
  List.iter
    (fun (p, n) ->
      match n.Reconfig.Stack.app.Label_service.algo with
      | Some algo ->
        let garbage j =
          Label.pair_of
            (Label.make ~creator:j ~sting:(50 + p) ~antistings:[ 60 + p ])
        in
        Label_algo.corrupt algo
          ~max_entries:(List.map (fun j -> (j, garbage j)) [ 1; 2; 3; 4 ])
          ~stored_entries:[]
      | None -> ())
    (Reconfig.Stack.live_nodes sys);
  Alcotest.(check bool) "re-agreement after corruption" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Label_service.agreed_max t <> None))

let suites =
  [
    ( "label.structure",
      [
        Alcotest.test_case "cross-creator order" `Quick test_label_order_cross_creator;
        Alcotest.test_case "same-creator order" `Quick test_label_order_same_creator;
        Alcotest.test_case "next label dominates" `Quick test_next_label_dominates;
        Alcotest.test_case "pair cancellation" `Quick test_pair_cancellation;
        qtest prop_next_label_always_dominates;
      ] );
    ( "label.algo",
      [
        Alcotest.test_case "creates initial label" `Quick test_algo_creates_initial_label;
        Alcotest.test_case "adopts greater label" `Quick test_algo_adopts_greater_label;
        Alcotest.test_case "cancellation echo" `Quick test_algo_cancellation_echo;
        Alcotest.test_case "voids non-members" `Quick test_algo_voids_non_member_labels;
        Alcotest.test_case "rebuild drops departed" `Quick test_algo_rebuild_drops_departed;
        Alcotest.test_case "bounded queues" `Quick test_algo_bounded_queues;
        qtest prop_algo_two_party_agreement;
      ] );
    ( "label.service",
      [
        Alcotest.test_case "agreement" `Quick test_service_agreement;
        Alcotest.test_case "agreement after reconfig" `Quick test_service_agreement_after_reconfig;
        Alcotest.test_case "recovery from corrupt labels" `Quick
          test_service_recovers_from_corrupt_labels;
      ] );
  ]
