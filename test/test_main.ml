let () =
  Alcotest.run "ssreconf"
    (Test_sim.suites @ Test_quorum.suites @ Test_datalink.suites
   @ Test_detector.suites @ Test_recsa.suites @ Test_label.suites
   @ Test_counter.suites @ Test_vs.suites @ Test_register.suites
   @ Test_units.suites @ Test_harness.suites @ Test_runtime.suites
   @ Test_telemetry.suites @ Test_faults.suites)
