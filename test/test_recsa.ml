(* Tests for the core reconfiguration scheme: notification/config values,
   recSA convergence (brute force + delicate replacement), recMA
   triggering, and the joining mechanism. *)

open Sim
open Reconfig

let qtest = QCheck_alcotest.to_alcotest
let set = Pid.set_of_list

(* --- Config_value and Notification unit tests --- *)

let test_config_value_basics () =
  let open Config_value in
  Alcotest.(check bool) "set eq" true (equal (Set (set [ 1; 2 ])) (Set (set [ 2; 1 ])));
  Alcotest.(check bool) "reset neq set" false (equal Reset (Set Pid.Set.empty));
  Alcotest.(check bool) "is_set" true (is_set (Set (set [ 1 ])));
  Alcotest.(check bool) "is_reset" true (is_reset Reset);
  Alcotest.(check bool) "not participant" true (is_not_participant Not_participant);
  Alcotest.(check (option (list int)))
    "to_set" (Some [ 1; 2 ])
    (Option.map Pid.Set.elements (to_set (Set (set [ 1; 2 ]))))

let test_notification_order () =
  let open Notification in
  let n1 = make P1 (set [ 1; 2 ]) in
  let n2 = make P1 (set [ 1; 3 ]) in
  let n3 = make P2 (set [ 1; 2 ]) in
  Alcotest.(check bool) "phase dominates" true (compare n1 n3 < 0);
  Alcotest.(check bool) "set breaks ties" true (compare n1 n2 < 0);
  Alcotest.(check bool) "default smallest" true (compare default n1 < 0);
  Alcotest.(check bool) "max picks largest" true
    (match max_of [ default; n1; n2 ] with Some m -> equal m n2 | None -> false);
  Alcotest.(check bool) "max of defaults is none" true (max_of [ default; default ] = None)

let test_notification_malformed () =
  let open Notification in
  Alcotest.(check bool) "default fine" false (malformed default);
  Alcotest.(check bool) "phase0 with set" true (malformed { phase = P0; set = Some (set [ 1 ]) });
  Alcotest.(check bool) "phase1 no set" true (malformed { phase = P1; set = None });
  Alcotest.(check bool) "phase1 empty set" true (malformed (make P1 Pid.Set.empty));
  Alcotest.(check bool) "phase2 ok" false (malformed (make P2 (set [ 1 ])))

let test_notification_degree () =
  let open Notification in
  Alcotest.(check int) "default, no all" 0 (degree default ~all:false);
  Alcotest.(check int) "phase1 + all" 3 (degree (make P1 (set [ 1 ])) ~all:true);
  Alcotest.(check int) "phase2" 4 (degree (make P2 (set [ 1 ])) ~all:false)

let prop_notification_max_is_upper_bound =
  QCheck.Test.make ~name:"maxNtf dominates every notification in the list"
    QCheck.(small_list (pair (int_range 0 2) (small_list (int_range 0 8))))
    (fun raw ->
      let ns =
        List.map
          (fun (ph, pids) ->
            let phase =
              match ph with 0 -> Notification.P0 | 1 -> Notification.P1 | _ -> Notification.P2
            in
            { Notification.phase; set = (if pids = [] then None else Some (set pids)) })
          raw
      in
      match Notification.max_of ns with
      | None -> List.for_all Notification.is_default ns
      | Some m ->
        List.for_all (fun n -> Notification.is_default n || Notification.compare n m <= 0) ns)

(* --- Stack-level integration --- *)

let make_system ?(seed = 42) ?(loss = 0.02) ?(n = 5) ?(hooks = Stack.unit_hooks) () =
  let members = List.init n (fun i -> i + 1) in
  Stack.of_scenario ~hooks (Scenario.make ~seed ~loss ~n_bound:16 ~members ())

let test_steady_state_quiescent () =
  let sys = make_system () in
  Stack.run_rounds sys 30;
  Alcotest.(check bool) "quiescent" true (Stack.quiescent sys);
  (match Stack.uniform_config sys with
  | Some c -> Alcotest.(check (list int)) "config = members" [ 1; 2; 3; 4; 5 ] (Pid.Set.elements c)
  | None -> Alcotest.fail "no uniform config");
  Alcotest.(check int) "no spurious resets" 0 (Stack.total_resets sys);
  Alcotest.(check int) "no spurious installs" 0 (Stack.total_installs sys)

let test_delicate_replacement () =
  let sys = make_system () in
  Stack.run_rounds sys 20;
  let target = set [ 1; 2; 3 ] in
  Alcotest.(check bool) "estab accepted" true (Stack.estab sys 1 target);
  let installed t =
    match Stack.uniform_config t with Some c -> Pid.Set.equal c target | None -> false
  in
  Alcotest.(check bool) "proposal installed everywhere" true
    (Stack.run_until sys ~max_steps:300_000 (fun t -> installed t && Stack.quiescent t));
  Alcotest.(check int) "no brute-force resets during delicate run" 0 (Stack.total_resets sys)

let test_concurrent_proposals_single_winner () =
  let sys = make_system ~seed:7 () in
  Stack.run_rounds sys 20;
  let a = set [ 1; 2; 3 ] and b = set [ 2; 3; 4 ] in
  let ok_a = Stack.estab sys 1 a in
  let ok_b = Stack.estab sys 4 b in
  Alcotest.(check bool) "both proposals accepted locally" true (ok_a && ok_b);
  let settled t =
    match Stack.uniform_config t with
    | Some c -> (Pid.Set.equal c a || Pid.Set.equal c b) && Stack.quiescent t
    | None -> false
  in
  Alcotest.(check bool) "exactly one proposal wins everywhere" true
    (Stack.run_until sys ~max_steps:400_000 settled)

let test_estab_rejected_mid_reconfiguration () =
  let sys = make_system ~seed:3 () in
  Stack.run_rounds sys 20;
  Alcotest.(check bool) "first accepted" true (Stack.estab sys 1 (set [ 1; 2; 3 ]));
  (* propagate the notification a bit, then a second proposal must bounce *)
  Stack.run_rounds sys 8;
  Alcotest.(check bool) "second rejected while reconfiguring" false
    (Stack.estab sys 2 (set [ 3; 4; 5 ]))

let test_estab_rejects_trivial () =
  let sys = make_system ~seed:4 () in
  Stack.run_rounds sys 20;
  Alcotest.(check bool) "same config rejected" false
    (Stack.estab sys 1 (set [ 1; 2; 3; 4; 5 ]));
  Alcotest.(check bool) "empty rejected" false (Stack.estab sys 1 Pid.Set.empty)

let test_brute_force_after_corruption () =
  let sys = make_system ~seed:11 () in
  Stack.run_rounds sys 20;
  let rng = Rng.create 123 in
  Stack.corrupt_everything sys ~rng;
  let rounds = Stack.run_until_quiescent sys ~max_rounds:400 in
  Alcotest.(check bool) "recovered to quiescence" true (rounds <> None);
  match Stack.uniform_config sys with
  | Some c ->
    Alcotest.(check bool) "config nonempty" false (Pid.Set.is_empty c);
    Alcotest.(check bool) "config only live processors" true
      (Pid.Set.subset c (set [ 1; 2; 3; 4; 5 ]))
  | None -> Alcotest.fail "no uniform config after recovery"

let prop_convergence_from_arbitrary_state =
  QCheck.Test.make ~name:"recSA converges from arbitrary states (Thm 3.15)" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let sys = make_system ~seed () in
      Stack.run_rounds sys 15;
      Stack.corrupt_everything sys ~rng:(Rng.create (seed + 1));
      Stack.run_until_quiescent sys ~max_rounds:500 <> None)

let test_recma_majority_collapse_triggers () =
  let sys = make_system ~seed:21 () in
  Stack.run_rounds sys 25;
  (* crash 3 of 5 members: the majority is gone; survivors must reconfigure
     to a configuration of live processors *)
  Stack.crash sys 1;
  Stack.crash sys 2;
  Stack.crash sys 3;
  let recovered t =
    match Stack.uniform_config t with
    | Some c -> Pid.Set.subset c (set [ 4; 5 ]) && Stack.quiescent t
    | None -> false
  in
  Alcotest.(check bool) "new live-only config installed" true
    (Stack.run_until sys ~max_steps:600_000 recovered);
  Alcotest.(check bool) "recMA triggered" true (Stack.total_triggers sys >= 1)

let test_recma_prediction_majority () =
  (* the paper's example predictor: ask for a reconfiguration once 1/4 of
     the members look failed. Crashing 2 of 5 members keeps the majority
     alive (so the collapse path stays silent) but trips the predictor at a
     majority of members, which must produce a delicate reconfiguration to
     a live configuration. *)
  let hooks = { Stack.unit_hooks with eval_conf = Stack.default_eval_conf () } in
  let sys = make_system ~seed:22 ~hooks () in
  Stack.run_rounds sys 25;
  Stack.crash sys 1;
  Stack.crash sys 2;
  let reconfigured t =
    match Stack.uniform_config t with
    | Some c -> Pid.Set.equal c (set [ 3; 4; 5 ]) && Stack.quiescent t
    | None -> false
  in
  Alcotest.(check bool) "prediction-driven reconfiguration" true
    (Stack.run_until sys ~max_steps:800_000 reconfigured);
  Alcotest.(check bool) "triggered via recMA" true (Stack.total_triggers sys >= 1)

let test_joiner_becomes_participant () =
  let sys = make_system ~seed:31 () in
  Stack.run_rounds sys 25;
  Stack.add_joiner sys 9;
  let joined t = Recsa.is_participant (Stack.node t 9).Stack.sa in
  Alcotest.(check bool) "joiner became participant" true
    (Stack.run_until sys ~max_steps:400_000 joined);
  (* the joiner adopted the agreed configuration, not a fresh one *)
  match Recsa.config (Stack.node sys 9).Stack.sa with
  | Config_value.Set c ->
    Alcotest.(check (list int)) "adopted config" [ 1; 2; 3; 4; 5 ] (Pid.Set.elements c)
  | _ -> Alcotest.fail "joiner has no set config"

let test_joiner_blocked_by_application () =
  let hooks =
    { Stack.unit_hooks with pass_query = (fun ~self:_ ~joiner -> joiner <> 9) }
  in
  let sys = make_system ~seed:32 ~hooks () in
  Stack.run_rounds sys 25;
  Stack.add_joiner sys 9;
  Stack.run_rounds sys 60;
  Alcotest.(check bool) "blocked joiner is not a participant" false
    (Recsa.is_participant (Stack.node sys 9).Stack.sa)

let test_joiner_runs_snap_handshake () =
  (* the snap-stabilizing cleaning handshake must complete on every
     joiner-member link before the join protocol proceeds *)
  let sys = make_system ~seed:34 () in
  Stack.run_rounds sys 25;
  Stack.add_joiner sys 9;
  Alcotest.(check bool) "joined" true
    (Stack.run_until sys ~max_steps:400_000 (fun t ->
         Recsa.is_participant (Stack.node t 9).Stack.sa));
  let tr = Engine.trace (Stack.engine sys) in
  (* the joiner completes a handshake with each of the 5 members, and each
     member completes the anti-parallel handshake with the joiner *)
  Alcotest.(check bool) "handshakes completed" true (Trace.count tr "snap.clean" >= 5);
  let joiner_node = Stack.node sys 9 in
  Alcotest.(check bool) "joiner's links all clean" true
    (Pid.Map.for_all
       (fun _ s -> Datalink.Snap_link.phase s = Datalink.Snap_link.Clean_done)
       joiner_node.Stack.snap)

let test_join_count_and_events () =
  let sys = make_system ~seed:33 () in
  Stack.run_rounds sys 25;
  Stack.add_joiner sys 7;
  Stack.add_joiner sys 8;
  let both t =
    Recsa.is_participant (Stack.node t 7).Stack.sa
    && Recsa.is_participant (Stack.node t 8).Stack.sa
  in
  Alcotest.(check bool) "both joined" true (Stack.run_until sys ~max_steps:600_000 both);
  let tr = Engine.trace (Stack.engine sys) in
  Alcotest.(check bool) "join events traced" true (Trace.count tr "join.participate" >= 2)

let test_figure2_automaton_trace () =
  (* The replacement automaton: a delicate replacement must produce a
     phase-2 transition and then a return to phase 0, with an install in
     between (Figure 2). *)
  let sys = make_system ~seed:41 () in
  Stack.run_rounds sys 20;
  ignore (Stack.estab sys 2 (set [ 1; 2; 3; 4 ]));
  Alcotest.(check bool) "completes" true
    (Stack.run_until sys ~max_steps:400_000 (fun t ->
         Stack.quiescent t && Stack.total_installs t > 0));
  let tr = Engine.trace (Stack.engine sys) in
  Alcotest.(check bool) "phase-2 transition observed" true (Trace.count tr "recsa.phase2" >= 1);
  Alcotest.(check bool) "install observed" true (Trace.count tr "recsa.install" >= 1);
  Alcotest.(check bool) "return to phase 0 observed" true (Trace.count tr "recsa.phase0" >= 1)

let test_get_config_during_steady_state () =
  let sys = make_system ~seed:51 () in
  Stack.run_rounds sys 30;
  List.iter
    (fun (p, n) ->
      let trusted = Stack.trusted_of sys p in
      match Recsa.get_config n.Stack.sa ~trusted with
      | Config_value.Set c ->
        Alcotest.(check (list int)) "getConfig agrees" [ 1; 2; 3; 4; 5 ] (Pid.Set.elements c)
      | _ -> Alcotest.fail "getConfig not a set in steady state")
    (Stack.live_nodes sys)

let test_replacement_exposes_only_old_or_new () =
  (* Safety during a delicate replacement: at no point does any participant
     hold a configuration other than the old one, the proposed one, or ⊥
     (and ⊥ never occurs on the delicate path). *)
  let sys = make_system ~seed:42 () in
  Stack.run_rounds sys 20;
  let old_config = set [ 1; 2; 3; 4; 5 ] in
  let target = set [ 1; 2; 3 ] in
  Alcotest.(check bool) "estab" true (Stack.estab sys 1 target);
  let ok = ref true in
  let rec sample k =
    if k = 0 then ()
    else begin
      Stack.run_rounds sys 1;
      List.iter
        (fun (_, n) ->
          match Recsa.config n.Stack.sa with
          | Config_value.Set c ->
            if not (Pid.Set.equal c old_config || Pid.Set.equal c target) then ok := false
          | Config_value.Reset -> ok := false
          | Config_value.Not_participant -> ())
        (Stack.live_nodes sys);
      if
        Stack.quiescent sys
        && Option.equal Pid.Set.equal (Stack.uniform_config sys) (Some target)
      then ()
      else sample (k - 1)
    end
  in
  sample 200;
  Alcotest.(check bool) "only old or new configurations ever visible" true !ok;
  Alcotest.(check bool) "replacement completed" true
    (Option.equal Pid.Set.equal (Stack.uniform_config sys) (Some target))

(* --- stale-information classification (Definition 3.1) --- *)

let test_stale_types_clean_state () =
  let sys = make_system ~seed:61 () in
  Stack.run_rounds sys 30;
  Alcotest.(check bool) "no stale info in steady state" true
    (Invariants.no_stale_information sys)

let test_stale_type1_detected () =
  let trusted = set [ 1; 2 ] in
  let sa = Recsa.create ~self:1 ~participant:true ~initial_config:trusted () in
  Recsa.corrupt sa ~prp:{ Notification.phase = Notification.P0; set = Some (set [ 1 ]) } ();
  Alcotest.(check bool) "type-1 present" true
    (List.mem Recsa.Type1 (Recsa.stale_types sa ~trusted))

let test_stale_type2_detected () =
  let trusted = set [ 1; 2 ] in
  let sa = Recsa.create ~self:1 ~participant:true ~initial_config:trusted () in
  Recsa.corrupt sa ~config:Config_value.Reset ();
  Alcotest.(check bool) "type-2 present" true
    (List.mem Recsa.Type2 (Recsa.stale_types sa ~trusted))

let test_stale_type3_detected () =
  let trusted = set [ 1; 2 ] in
  let sa = Recsa.create ~self:1 ~participant:true ~initial_config:trusted () in
  (* a peer reports a phase-2 notification for a different set than ours *)
  Recsa.receive sa ~from:2
    {
      Recsa.m_fd = trusted;
      m_part = trusted;
      m_config = Config_value.Set trusted;
      m_prp = Notification.make Notification.P2 (set [ 1; 2 ]);
      m_all = false;
      m_echo = None;
    };
  Recsa.corrupt sa ~prp:(Notification.make Notification.P2 (set [ 1 ])) ();
  Alcotest.(check bool) "type-3 present" true
    (List.mem Recsa.Type3 (Recsa.stale_types sa ~trusted))

let test_stale_report_after_corruption () =
  let sys = make_system ~seed:62 () in
  Stack.run_rounds sys 30;
  Stack.corrupt_everything sys ~rng:(Rng.create 17);
  Alcotest.(check bool) "stale information detected somewhere" true
    (Invariants.stale_report sys <> []);
  Alcotest.(check bool) "recovers" true
    (Stack.run_until_quiescent sys ~max_rounds:500 <> None);
  Stack.run_rounds sys 5;
  Alcotest.(check bool) "stale information gone after recovery" true
    (Invariants.no_stale_information sys)

let test_closure_theorem () =
  (* Theorem 3.16(1): a steady config state persists — no resets, no
     installs, quiescence throughout. *)
  let sys = make_system ~seed:63 () in
  Stack.run_rounds sys 40;
  match Invariants.closure sys ~rounds:40 with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason

(* --- partitions --- *)

let test_partition_minority_and_heal () =
  let sys = make_system ~seed:64 () in
  Stack.run_rounds sys 30;
  (* isolate a minority; the majority side must keep the configuration *)
  Engine.partition (Stack.engine sys) (set [ 5 ]);
  Stack.run_rounds sys 60;
  let majority_config =
    match Recsa.config (Stack.node sys 1).Stack.sa with
    | Config_value.Set c -> Pid.Set.elements c
    | _ -> []
  in
  Alcotest.(check (list int)) "majority side keeps the config" [ 1; 2; 3; 4; 5 ]
    majority_config;
  Engine.heal (Stack.engine sys);
  Alcotest.(check bool) "steady again after healing" true
    (Stack.run_until sys ~max_steps:600_000 Stack.quiescent)

let test_partition_does_not_split_brain () =
  (* neither side of an even split can assemble a majority-backed delicate
     replacement while cut; after healing there is a single configuration *)
  let sys = make_system ~seed:65 ~n:6 () in
  Stack.run_rounds sys 30;
  Engine.partition (Stack.engine sys) (set [ 1; 2; 3 ]);
  Stack.run_rounds sys 80;
  Engine.heal (Stack.engine sys);
  Alcotest.(check bool) "single configuration after heal" true
    (Stack.run_until sys ~max_steps:900_000 (fun t ->
         Stack.quiescent t && Stack.uniform_config t <> None))

(* --- pluggable quorum systems (the paper's Related-Work claim) --- *)

let test_scheme_under_wall_quorum () =
  (* the whole scheme runs with crumbling-wall quorums instead of
     majorities: steady state, joining and collapse-driven reconfiguration
     all work unchanged *)
  let members = List.init 6 (fun i -> i + 1) in
  let sys =
    Stack.of_scenario ~hooks:Stack.unit_hooks
      (Scenario.make ~seed:77 ~n_bound:16
         ~quorum:(module Quorum.Wall)
         ~members ())
  in
  Stack.run_rounds sys 30;
  Alcotest.(check bool) "steady under wall quorums" true (Stack.quiescent sys);
  Stack.add_joiner sys 9;
  Alcotest.(check bool) "join admitted by a wall quorum of passes" true
    (Stack.run_until sys ~max_steps:600_000 (fun t ->
         Recsa.is_participant (Stack.node t 9).Stack.sa));
  (* rows over {1..6}: [1] [2;3] [4;5;6]; crashing 4,5,6 and 1 destroys
     every wall quorum (no full row survives), so recMA must reconfigure *)
  List.iter (fun v -> Stack.crash sys v) [ 1; 4; 5; 6 ];
  let recovered t =
    match Stack.uniform_config t with
    | Some c -> Pid.Set.subset c (set [ 2; 3; 9 ]) && Stack.quiescent t
    | None -> false
  in
  Alcotest.(check bool) "collapse path works under wall quorums" true
    (Stack.run_until sys ~max_steps:2_000_000 recovered)

(* --- pure two-node walkthrough (no engine): the unison handshake --- *)

let test_pure_two_node_replacement () =
  let members = set [ 1; 2 ] in
  let a = Recsa.create ~self:1 ~participant:true ~initial_config:members () in
  let b = Recsa.create ~self:2 ~participant:true ~initial_config:members () in
  (* lossless synchronous exchange: both tick, then both deliver *)
  let exchange () =
    ignore (Recsa.tick a ~trusted:members);
    ignore (Recsa.tick b ~trusted:members);
    let msgs_a = Recsa.broadcast a ~trusted:members in
    let msgs_b = Recsa.broadcast b ~trusted:members in
    List.iter (fun (dst, m) -> if dst = 2 then Recsa.receive b ~from:1 m) msgs_a;
    List.iter (fun (dst, m) -> if dst = 1 then Recsa.receive a ~from:2 m) msgs_b
  in
  for _ = 1 to 4 do
    exchange ()
  done;
  Alcotest.(check bool) "steady" true
    (Recsa.no_reco a ~trusted:members && Recsa.no_reco b ~trusted:members);
  let target = set [ 1 ] in
  Alcotest.(check bool) "estab accepted" true (Recsa.estab a ~trusted:members target);
  (* the synchronous unison handshake completes within a bounded number of
     exchanges: adopt, echo, all, allSeen, phase 2 (install), phase 0 *)
  let rec drive k =
    if k = 0 then Alcotest.fail "replacement did not complete in 40 exchanges"
    else if
      Config_value.equal (Recsa.config a) (Config_value.Set target)
      && Config_value.equal (Recsa.config b) (Config_value.Set target)
      && Notification.is_default (Recsa.prp a)
      && Notification.is_default (Recsa.prp b)
    then ()
    else begin
      exchange ();
      drive (k - 1)
    end
  in
  drive 40;
  Alcotest.(check int) "exactly one install at a" 1 (Recsa.install_count a);
  Alcotest.(check int) "exactly one install at b" 1 (Recsa.install_count b);
  Alcotest.(check int) "no resets" 0 (Recsa.reset_count a + Recsa.reset_count b)

let prop_channel_stats_conserved =
  QCheck.Test.make ~name:"channel accounting: sent = queued + dropped + delivered"
    QCheck.(pair (int_range 0 1000) (int_range 1 200))
    (fun (seed, ops) ->
      let rng = Rng.create seed in
      let ch = Channel.create ~capacity:5 in
      for i = 1 to ops do
        if Rng.bool rng then Channel.send ch rng i
        else ignore (Channel.take ch rng ~reorder:true)
      done;
      let st = Channel.stats ch in
      st.Channel.sent
      = Channel.length ch + st.Channel.dropped + st.Channel.delivered)

(* --- chaos: random mixed fault schedules always converge --- *)

let prop_chaos_convergence =
  QCheck.Test.make ~name:"convergence under random crash/join/corrupt/partition mixes"
    ~count:6
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 3 in
      let sys = make_system ~seed ~n () in
      let next_joiner = ref 100 in
      let crashes = ref 0 in
      Stack.run_rounds sys 25;
      (* a dozen random events interleaved with normal execution *)
      for _ = 1 to 12 do
        (match Rng.int rng 6 with
        | 0 ->
          (* crash, keeping at least two live nodes *)
          let live = Engine.live_pids (Stack.engine sys) in
          if List.length live > 2 && !crashes < n - 2 then begin
            Stack.crash sys (Rng.pick rng live);
            incr crashes
          end
        | 1 ->
          Stack.add_joiner sys !next_joiner;
          incr next_joiner
        | 2 ->
          let live = Engine.live_pids (Stack.engine sys) in
          Stack.corrupt_node sys (Rng.pick rng live) ~rng
        | 3 -> Stack.corrupt_everything sys ~rng
        | 4 ->
          let live = Engine.live_pids (Stack.engine sys) in
          let group = Pid.set_of_list (Rng.subset rng live) in
          Engine.partition (Stack.engine sys) group
        | _ ->
          let live = Engine.live_pids (Stack.engine sys) in
          ignore (Stack.estab sys (Rng.pick rng live) (set (Rng.subset rng live))));
        Stack.run_rounds sys (1 + Rng.int rng 8)
      done;
      (* faults cease: partitions heal, nothing else is injected. The
         system must reach a steady config state whose configuration has a
         live majority (the paper's serviceability condition — a dead
         minority inside the configuration is legal and recMA correctly
         leaves it alone; a dead majority must trigger a reconfiguration). *)
      Engine.heal (Stack.engine sys);
      let healthy t =
        Stack.quiescent t
        &&
        match Stack.uniform_config t with
        | Some c ->
          (not (Pid.Set.is_empty c))
          && Quorum.has_majority ~config:c
               (Pid.set_of_list (Engine.live_pids (Stack.engine t)))
        | None -> false
      in
      (* check once per five rounds; the predicate is too costly to
         evaluate after every atomic step *)
      let rec wait budget =
        if healthy sys then true
        else if budget = 0 then false
        else begin
          Stack.run_rounds sys 5;
          wait (budget - 1)
        end
      in
      wait 150)

(* --- descriptor interning --------------------------------------------- *)

(* Structurally equal descriptors intern to one physical object, so the
   Definition 3.1 conflict checks hit their pointer-equality fast paths;
   unequal descriptors must never be conflated. *)
let test_interning_physical_equality () =
  (* two structurally equal sets with different AVL shapes *)
  let asc = Pid.set_of_list [ 1; 2; 3; 4; 5; 6; 7 ] in
  let desc = List.fold_left (fun s p -> Pid.Set.add p s) Pid.Set.empty [ 7; 6; 5; 4; 3; 2; 1 ] in
  Alcotest.(check bool) "structurally equal" true (Pid.Set.equal asc desc);
  Alcotest.(check bool) "sets intern to one object" true
    (Reconfig.Intern.pid_set asc == Reconfig.Intern.pid_set desc);
  let c1 = Reconfig.Config_value.of_set asc in
  let c2 = Reconfig.Config_value.intern (Reconfig.Config_value.Set desc) in
  Alcotest.(check bool) "equal configs physically equal" true (c1 == c2);
  let other = Reconfig.Config_value.of_set (Pid.set_of_list [ 1; 2; 3 ]) in
  Alcotest.(check bool) "unequal configs stay distinct" false
    (Reconfig.Config_value.equal c1 other);
  Alcotest.(check bool) "unequal configs not conflated" true (c1 != other);
  let n1 = Reconfig.Notification.intern (Reconfig.Notification.make Reconfig.Notification.P2 asc) in
  let n2 = Reconfig.Notification.intern (Reconfig.Notification.make Reconfig.Notification.P2 desc) in
  Alcotest.(check bool) "equal notifications physically equal" true (n1 == n2);
  let n3 = Reconfig.Notification.intern (Reconfig.Notification.make Reconfig.Notification.P1 asc) in
  Alcotest.(check bool) "phase distinguishes notifications" true (n1 != n3)

let suites =
  [
    ( "reconfig.values",
      [
        Alcotest.test_case "config values" `Quick test_config_value_basics;
        Alcotest.test_case "notification order" `Quick test_notification_order;
        Alcotest.test_case "malformed notifications" `Quick test_notification_malformed;
        Alcotest.test_case "degree" `Quick test_notification_degree;
        qtest prop_notification_max_is_upper_bound;
      ] );
    ( "reconfig.recsa",
      [
        Alcotest.test_case "steady state quiescent" `Quick test_steady_state_quiescent;
        Alcotest.test_case "delicate replacement" `Quick test_delicate_replacement;
        Alcotest.test_case "concurrent proposals" `Quick test_concurrent_proposals_single_winner;
        Alcotest.test_case "estab rejected mid-reco" `Quick test_estab_rejected_mid_reconfiguration;
        Alcotest.test_case "estab rejects trivial" `Quick test_estab_rejects_trivial;
        Alcotest.test_case "brute force recovery" `Quick test_brute_force_after_corruption;
        Alcotest.test_case "only old or new visible" `Quick
          test_replacement_exposes_only_old_or_new;
        Alcotest.test_case "pure two-node walkthrough" `Quick test_pure_two_node_replacement;
        Alcotest.test_case "wall quorum system" `Quick test_scheme_under_wall_quorum;
        qtest prop_channel_stats_conserved;
        Alcotest.test_case "figure-2 automaton" `Quick test_figure2_automaton_trace;
        Alcotest.test_case "getConfig steady" `Quick test_get_config_during_steady_state;
        qtest prop_convergence_from_arbitrary_state;
      ] );
    ( "reconfig.recma",
      [
        Alcotest.test_case "majority collapse" `Quick test_recma_majority_collapse_triggers;
        Alcotest.test_case "prediction majority" `Quick test_recma_prediction_majority;
      ] );
    ( "reconfig.join",
      [
        Alcotest.test_case "joiner becomes participant" `Quick test_joiner_becomes_participant;
        Alcotest.test_case "application can block" `Quick test_joiner_blocked_by_application;
        Alcotest.test_case "multiple joiners" `Quick test_join_count_and_events;
        Alcotest.test_case "snap handshake on join" `Quick test_joiner_runs_snap_handshake;
      ] );
    ( "reconfig.invariants",
      [
        Alcotest.test_case "clean steady state" `Quick test_stale_types_clean_state;
        Alcotest.test_case "type-1 detected" `Quick test_stale_type1_detected;
        Alcotest.test_case "type-2 detected" `Quick test_stale_type2_detected;
        Alcotest.test_case "type-3 detected" `Quick test_stale_type3_detected;
        Alcotest.test_case "stale report + recovery" `Quick test_stale_report_after_corruption;
        Alcotest.test_case "closure (Thm 3.16)" `Quick test_closure_theorem;
        Alcotest.test_case "descriptor interning" `Quick test_interning_physical_equality;
      ] );
    ( "reconfig.partitions",
      [
        Alcotest.test_case "minority cut and heal" `Quick test_partition_minority_and_heal;
        Alcotest.test_case "no split brain" `Quick test_partition_does_not_split_brain;
      ] );
    ("reconfig.chaos", [ qtest prop_chaos_convergence ]);
  ]
