(* Tests for the quorum-based MWMR register emulation (two-phase read/write
   with counter tags). *)

open Sim
open Register

let set = Pid.set_of_list

let make ?(seed = 42) ?(n = 4) () =
  let members = List.init n (fun i -> i + 1) in
  Reconfig.Stack.of_scenario ~hooks:(Register_service.hooks ())
    (Reconfig.Scenario.make ~seed ~n_bound:16 ~members ())

let app sys p = (Reconfig.Stack.node sys p).Reconfig.Stack.app

let test_write_then_read () =
  let sys = make () in
  Reconfig.Stack.run_rounds sys 20;
  Register_service.write (app sys 1) ~rid:1 "x" 33;
  Alcotest.(check bool) "write completes" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.write_done (app t 1) ~rid:1));
  Register_service.read (app sys 3) ~rid:1 "x";
  Alcotest.(check bool) "read completes" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.find_read (app t 3) ~rid:1 <> None));
  Alcotest.(check (option (option int))) "read returns the written value"
    (Some (Some 33))
    (Register_service.find_read (app sys 3) ~rid:1)

let test_read_unwritten () =
  let sys = make ~seed:2 () in
  Reconfig.Stack.run_rounds sys 20;
  Register_service.read (app sys 2) ~rid:5 "ghost";
  Alcotest.(check bool) "read completes" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.find_read (app t 2) ~rid:5 <> None));
  Alcotest.(check (option (option int))) "unwritten reads as None" (Some None)
    (Register_service.find_read (app sys 2) ~rid:5)

let test_last_writer_wins () =
  let sys = make ~seed:3 () in
  Reconfig.Stack.run_rounds sys 20;
  Register_service.write (app sys 1) ~rid:1 "r" 10;
  Alcotest.(check bool) "first write" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.write_done (app t 1) ~rid:1));
  Register_service.write (app sys 2) ~rid:1 "r" 20;
  Alcotest.(check bool) "second write" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.write_done (app t 2) ~rid:1));
  Register_service.read (app sys 4) ~rid:9 "r";
  Alcotest.(check bool) "read completes" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.find_read (app t 4) ~rid:9 <> None));
  Alcotest.(check (option (option int))) "sees the later write" (Some (Some 20))
    (Register_service.find_read (app sys 4) ~rid:9)

let test_concurrent_writers_agree () =
  let sys = make ~seed:4 () in
  Reconfig.Stack.run_rounds sys 20;
  Register_service.write (app sys 1) ~rid:1 "c" 100;
  Register_service.write (app sys 2) ~rid:1 "c" 200;
  Alcotest.(check bool) "both writes complete" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         Register_service.write_done (app t 1) ~rid:1
         && Register_service.write_done (app t 2) ~rid:1));
  (* two sequential reads at different nodes must agree on the winner *)
  Register_service.read (app sys 3) ~rid:1 "c";
  Alcotest.(check bool) "read 1" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.find_read (app t 3) ~rid:1 <> None));
  Register_service.read (app sys 4) ~rid:1 "c";
  Alcotest.(check bool) "read 2" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.find_read (app t 4) ~rid:1 <> None));
  let r3 = Register_service.find_read (app sys 3) ~rid:1 in
  let r4 = Register_service.find_read (app sys 4) ~rid:1 in
  Alcotest.(check bool) "one of the written values" true
    (r3 = Some (Some 100) || r3 = Some (Some 200));
  Alcotest.(check bool) "sequential reads agree" true (r3 = r4)

let test_read_monotonic_after_writeback () =
  (* atomicity: once a read returned v, any later read returns v or newer *)
  let sys = make ~seed:5 () in
  Reconfig.Stack.run_rounds sys 20;
  Register_service.write (app sys 1) ~rid:1 "m" 7;
  Alcotest.(check bool) "write" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.write_done (app t 1) ~rid:1));
  Register_service.read (app sys 2) ~rid:1 "m";
  Alcotest.(check bool) "read a" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.find_read (app t 2) ~rid:1 <> None));
  Register_service.read (app sys 3) ~rid:1 "m";
  Alcotest.(check bool) "read b" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.find_read (app t 3) ~rid:1 <> None));
  Alcotest.(check (option (option int))) "later read not older" (Some (Some 7))
    (Register_service.find_read (app sys 3) ~rid:1)

let test_value_survives_reconfiguration () =
  let sys = make ~seed:6 ~n:5 () in
  Reconfig.Stack.run_rounds sys 20;
  Register_service.write (app sys 1) ~rid:1 "s" 55;
  Alcotest.(check bool) "write" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.write_done (app t 1) ~rid:1));
  (* delicate replacement to a smaller configuration *)
  let target = set [ 2; 3; 4 ] in
  let rec propose k =
    if k = 0 then Alcotest.fail "estab never accepted"
    else if not (Reconfig.Stack.estab sys 2 target) then begin
      Reconfig.Stack.run_rounds sys 2;
      propose (k - 1)
    end
  in
  propose 60;
  Alcotest.(check bool) "reconfigured" true
    (Reconfig.Stack.run_until sys ~max_steps:1_200_000 (fun t ->
         Option.equal Pid.Set.equal (Reconfig.Stack.uniform_config t) (Some target)
         && Reconfig.Stack.quiescent t));
  (* the value is still readable in the new configuration *)
  Register_service.read (app sys 4) ~rid:2 "s";
  Alcotest.(check bool) "read in new config" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         Register_service.find_read (app t 4) ~rid:2 <> None));
  Alcotest.(check (option (option int))) "value survived" (Some (Some 55))
    (Register_service.find_read (app sys 4) ~rid:2)

let test_joiner_can_use_register () =
  let sys = make ~seed:7 () in
  Reconfig.Stack.run_rounds sys 20;
  Register_service.write (app sys 1) ~rid:1 "j" 9;
  Alcotest.(check bool) "write" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Register_service.write_done (app t 1) ~rid:1));
  Reconfig.Stack.add_joiner sys 9;
  Alcotest.(check bool) "joined" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Reconfig.Recsa.is_participant (Reconfig.Stack.node t 9).Reconfig.Stack.sa));
  Register_service.read (app sys 9) ~rid:1 "j";
  Alcotest.(check bool) "joiner's read completes" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         Register_service.find_read (app t 9) ~rid:1 <> None));
  Alcotest.(check (option (option int))) "joiner reads the value" (Some (Some 9))
    (Register_service.find_read (app sys 9) ~rid:1)

let suites =
  [
    ( "register",
      [
        Alcotest.test_case "write then read" `Quick test_write_then_read;
        Alcotest.test_case "read unwritten" `Quick test_read_unwritten;
        Alcotest.test_case "last writer wins" `Quick test_last_writer_wins;
        Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers_agree;
        Alcotest.test_case "read monotonic" `Quick test_read_monotonic_after_writeback;
        Alcotest.test_case "survives reconfiguration" `Quick test_value_survives_reconfiguration;
        Alcotest.test_case "joiner can use register" `Quick test_joiner_can_use_register;
      ] );
  ]
