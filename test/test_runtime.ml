(* Tests for the engine-agnostic runtime layer: the snap-nonce packing, the
   plugin combinators (map/pair/stack laws), the real-time loop runtime,
   and the sim-vs-loop equivalence of the full stack. *)

open Sim
open Reconfig

let set = Pid.set_of_list

(* ------------------------------------------------------------------ *)
(* snap_nonce                                                          *)
(* ------------------------------------------------------------------ *)

let test_snap_nonce_regression () =
  (* the old [self * 1_000_003 + peer] scheme collided exactly here *)
  let n1 = Stack.snap_nonce ~self:1 ~peer:0 in
  let n2 = Stack.snap_nonce ~self:0 ~peer:1_000_003 in
  Alcotest.(check bool) "old colliding pair now distinct" true (n1 <> n2)

let test_snap_nonce_injective () =
  let pids = [ 0; 1; 2; 3; 17; 999; 1_000_002; 1_000_003; (1 lsl 20) + 5 ] in
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          let n = Stack.snap_nonce ~self:s ~peer:p in
          (match Hashtbl.find_opt tbl n with
          | Some (s', p') ->
            Alcotest.failf "nonce collision: (%d,%d) and (%d,%d) -> %d" s p s' p' n
          | None -> ());
          Hashtbl.add tbl n (s, p))
        pids)
    pids

(* ------------------------------------------------------------------ *)
(* Plugin combinators                                                  *)
(* ------------------------------------------------------------------ *)

let dummy_view ?(self = 1) () =
  {
    Stack.v_self = self;
    v_trusted = set [ 1; 2; 3 ];
    v_recsa = Recsa.create ~self ~participant:true ();
    v_emit = (fun _ _ -> ());
    v_now = 0.0;
    v_rng = Rng.create 1;
    v_metrics = Metrics.create ();
    v_telemetry = Telemetry.create ();
  }

(* A plugin whose state is a newest-first log of everything that happened
   to it, and whose tick always emits two tagged messages. *)
let probe tag =
  {
    Stack.p_init = (fun pid -> [ Printf.sprintf "%s.init.%d" tag pid ]);
    p_tick =
      (fun _v log ->
        (Printf.sprintf "%s.tick" tag :: log, [ (2, tag ^ ".m1"); (3, tag ^ ".m2") ]));
    p_recv =
      (fun _v ~from m log -> (Printf.sprintf "%s.recv.%d.%s" tag from m :: log, []));
    p_merge = (fun ~self:_ log _ -> "merged" :: log);
    p_corrupt = (fun _ st -> st);
  }

let test_map_identity () =
  let p = probe "p" in
  let q =
    Stack.Plugin.map ~state:Fun.id ~state_back:Fun.id ~msg:Fun.id
      ~msg_back:Option.some p
  in
  let v = dummy_view () in
  Alcotest.(check (list string)) "init equal" (p.Stack.p_init 7) (q.Stack.p_init 7);
  let st_p, out_p = p.Stack.p_tick v (p.Stack.p_init 1) in
  let st_q, out_q = q.Stack.p_tick v (q.Stack.p_init 1) in
  Alcotest.(check (list string)) "tick state equal" st_p st_q;
  Alcotest.(check (list (pair int string))) "tick messages equal" out_p out_q;
  let st_p, _ = p.Stack.p_recv v ~from:2 "x" st_p in
  let st_q, _ = q.Stack.p_recv v ~from:2 "x" st_q in
  Alcotest.(check (list string)) "recv state equal" st_p st_q

let test_map_drops_unrecognized () =
  let p = probe "p" in
  let q =
    Stack.Plugin.map ~state:Fun.id ~state_back:Fun.id ~msg:Fun.id
      ~msg_back:(fun _ -> None)
      p
  in
  let v = dummy_view () in
  let st0 = q.Stack.p_init 1 in
  let st, out = q.Stack.p_recv v ~from:2 "x" st0 in
  Alcotest.(check (list string)) "state untouched" st0 st;
  Alcotest.(check (list (pair int string))) "nothing sent" [] out

let fst_snd_msg =
  let pp fmt = function
    | `Fst m -> Format.fprintf fmt "Fst %s" m
    | `Snd m -> Format.fprintf fmt "Snd %s" m
  in
  Alcotest.testable pp ( = )

let test_pair_ordering_and_routing () =
  let pq = Stack.Plugin.pair (probe "a") (probe "b") in
  let v = dummy_view () in
  let st0 = pq.Stack.p_init 1 in
  Alcotest.(check (pair (list string) (list string)))
    "init is the product" ([ "a.init.1" ], [ "b.init.1" ]) st0;
  let st, out = pq.Stack.p_tick v st0 in
  (* left ticks first and its messages precede the right's *)
  Alcotest.(check (list (pair int fst_snd_msg)))
    "tick order: Fst before Snd"
    [ (2, `Fst "a.m1"); (3, `Fst "a.m2"); (2, `Snd "b.m1"); (3, `Snd "b.m2") ]
    out;
  let (sa, sb), _ = pq.Stack.p_recv v ~from:5 (`Fst "hello") st in
  Alcotest.(check (list string))
    "Fst routed to the left" [ "a.recv.5.hello"; "a.tick"; "a.init.1" ] sa;
  Alcotest.(check (list string)) "right untouched" [ "b.tick"; "b.init.1" ] sb

let lo_hi_msg =
  let pp fmt = function
    | `Lo m -> Format.fprintf fmt "Lo %s" m
    | `Hi m -> Format.fprintf fmt "Hi %s" m
  in
  Alcotest.testable pp ( = )

(* upper state = (lower log, upper log); upper's tick records a snapshot of
   the lower log so the lower-ticks-first contract is observable. *)
let stacked () =
  let upper =
    {
      Stack.p_init = (fun pid -> ([], [ Printf.sprintf "hi.init.%d" pid ]));
      p_tick =
        (fun _v (lo, hi) ->
          let seen = Printf.sprintf "hi.tick(saw %d lo events)" (List.length lo) in
          ((lo, seen :: hi), [ (9, `Hi "h1") ]));
      p_recv =
        (fun _v ~from m (lo, hi) ->
          match m with
          | `Hi s -> ((lo, Printf.sprintf "hi.recv.%d.%s" from s :: hi), [])
          | `Lo _ -> ((lo, "hi.MUST_NOT_SEE_LO" :: hi), []));
      p_merge = (fun ~self:_ st _ -> st);
      p_corrupt = (fun _ st -> st);
    }
  in
  Stack.Plugin.stack ~lower:(probe "lo")
    ~get:(fun (lo, _) -> lo)
    ~set:(fun (_, hi) lo -> (lo, hi))
    ~wrap:(fun m -> `Lo m)
    ~unwrap:(function `Lo m -> Some m | `Hi _ -> None)
    upper

let test_stack_ordering () =
  let p = stacked () in
  let v = dummy_view () in
  let st0 = p.Stack.p_init 1 in
  Alcotest.(check (list string)) "lower initialised" [ "lo.init.1" ] (fst st0);
  let (lo, hi), out = p.Stack.p_tick v st0 in
  Alcotest.(check (list (pair int lo_hi_msg)))
    "wrapped lower messages precede the upper's"
    [ (2, `Lo "lo.m1"); (3, `Lo "lo.m2"); (9, `Hi "h1") ]
    out;
  Alcotest.(check (list string)) "lower ticked" [ "lo.tick"; "lo.init.1" ] lo;
  (* 2 events: the upper observed the lower's post-tick state *)
  Alcotest.(check (list string))
    "upper saw the post-tick lower state"
    [ "hi.tick(saw 2 lo events)"; "hi.init.1" ]
    hi

let test_stack_routing () =
  let p = stacked () in
  let v = dummy_view () in
  let st0 = p.Stack.p_init 1 in
  let (lo, hi), out = p.Stack.p_recv v ~from:4 (`Lo "ping") st0 in
  Alcotest.(check (list string))
    "Lo routed to the lower alone" [ "lo.recv.4.ping"; "lo.init.1" ] lo;
  Alcotest.(check (list string)) "upper untouched" [ "hi.init.1" ] hi;
  Alcotest.(check (list (pair int lo_hi_msg))) "lower replies re-wrapped" [] out;
  let (lo, hi), _ = p.Stack.p_recv v ~from:4 (`Hi "yo") st0 in
  Alcotest.(check (list string)) "lower untouched" [ "lo.init.1" ] lo;
  Alcotest.(check (list string)) "Hi routed to the upper" [ "hi.recv.4.yo"; "hi.init.1" ] hi

(* ------------------------------------------------------------------ *)
(* The loop runtime                                                    *)
(* ------------------------------------------------------------------ *)

type ping_state = { mutable got : (Pid.t * string) list; mutable pinged : bool }

let ping_driver : (ping_state, string, string Runtime.Loop.ctx) Runtime.driver =
  {
    Runtime.d_init = (fun _ -> { got = []; pinged = false });
    d_timer =
      (fun ctx st ->
        if Pid.equal (Runtime.Loop.Ctx.self ctx) 1 && not st.pinged then begin
          Runtime.Loop.Ctx.send ctx 2 "ping";
          st.pinged <- true
        end;
        st);
    d_recv =
      (fun ctx from m st ->
        st.got <- (from, m) :: st.got;
        if String.equal m "ping" then Runtime.Loop.Ctx.send ctx from "pong";
        st);
  }

let test_loop_delivery () =
  let t = Runtime.Loop.create ~driver:ping_driver ~pids:[ 1; 2 ] () in
  Runtime.Loop.run_round t;
  Alcotest.(check (list (pair int string)))
    "ping delivered in its round" [ (1, "ping") ]
    (Runtime.Loop.state t 2).got;
  Runtime.Loop.run_round t;
  Alcotest.(check (list (pair int string)))
    "pong delivered next round" [ (2, "pong") ]
    (Runtime.Loop.state t 1).got;
  Alcotest.(check int) "rounds counted" 2 (Runtime.Loop.rounds t);
  Alcotest.(check int) "no stragglers" 0 (Runtime.Loop.pending t)

let test_loop_clock_monotone () =
  (* an adversarial injected clock that jumps backwards *)
  let samples = ref [ 0.0; 1.0; 0.5; 2.0; 1.5; 3.0 ] in
  let clock () =
    match !samples with
    | [] -> 99.0
    | s :: rest ->
      samples := rest;
      s
  in
  let t = Runtime.Loop.create ~clock ~driver:ping_driver ~pids:[ 1; 2 ] () in
  let prev = ref (Runtime.Loop.now t) in
  for _ = 1 to 4 do
    Runtime.Loop.run_round t;
    let n = Runtime.Loop.now t in
    Alcotest.(check bool) "clock never regresses" true (n >= !prev);
    prev := n
  done

let test_loop_crash () =
  let t = Runtime.Loop.create ~driver:ping_driver ~pids:[ 1; 2 ] () in
  Runtime.Loop.crash t 2;
  Runtime.Loop.run_rounds t 3;
  Alcotest.(check (list int)) "crashed node dropped" [ 1 ] (Runtime.Loop.live_pids t);
  Alcotest.(check (list (pair int string)))
    "no pong from a crashed node" [] (Runtime.Loop.state t 1).got

(* ------------------------------------------------------------------ *)
(* Sim-vs-loop equivalence of the full stack                           *)
(* ------------------------------------------------------------------ *)

let test_stack_on_both_runtimes () =
  let members = [ 1; 2; 3 ] in
  let sim =
    Stack.of_scenario ~hooks:Stack.unit_hooks
      (Scenario.make ~seed:11 ~n_bound:16 ~members ())
  in
  Alcotest.(check bool) "sim quiescent" true
    (Stack.run_until sim ~max_steps:400_000 (fun t -> Stack.quiescent t));
  let lp =
    Stack_loop.of_scenario ~hooks:Stack.unit_hooks
      (Scenario.make ~seed:11 ~n_bound:16 ~members ())
  in
  (match Stack_loop.run_until_quiescent lp ~max_rounds:300 with
  | Some _ -> ()
  | None -> Alcotest.fail "loop runtime never quiescent");
  let expect = Some (set members) in
  let pp_conf fmt = function
    | Some c -> Pid.pp_set fmt c
    | None -> Format.fprintf fmt "<none>"
  in
  (* compare with set equality, not polymorphic [=]: equal sets may have
     different internal tree shapes (interning canonicalizes across
     construction paths) *)
  let conf = Alcotest.testable pp_conf (Option.equal Pid.Set.equal) in
  Alcotest.check conf "sim agrees on the bootstrap configuration" expect
    (Stack.uniform_config sim);
  Alcotest.check conf "loop agrees on the same configuration" expect
    (Stack_loop.uniform_config lp)

let test_loop_stack_joiner () =
  let lp =
    Stack_loop.of_scenario ~hooks:Stack.unit_hooks
      (Scenario.make ~seed:5 ~n_bound:16 ~members:[ 1; 2; 3 ] ())
  in
  (match Stack_loop.run_until_quiescent lp ~max_rounds:300 with
  | Some _ -> ()
  | None -> Alcotest.fail "never quiescent");
  Stack_loop.add_joiner lp 9;
  Stack_loop.run_rounds lp 200;
  Alcotest.(check bool) "joiner converges to trusting the members" true
    (Pid.Set.subset (set [ 1; 2; 3 ]) (Stack_loop.trusted_of lp 9))

let suites =
  [
    ( "runtime.nonce",
      [
        Alcotest.test_case "regression" `Quick test_snap_nonce_regression;
        Alcotest.test_case "injective" `Quick test_snap_nonce_injective;
      ] );
    ( "runtime.plugin",
      [
        Alcotest.test_case "map identity" `Quick test_map_identity;
        Alcotest.test_case "map drops unrecognized" `Quick test_map_drops_unrecognized;
        Alcotest.test_case "pair ordering/routing" `Quick test_pair_ordering_and_routing;
        Alcotest.test_case "stack ordering" `Quick test_stack_ordering;
        Alcotest.test_case "stack routing" `Quick test_stack_routing;
      ] );
    ( "runtime.loop",
      [
        Alcotest.test_case "delivery" `Quick test_loop_delivery;
        Alcotest.test_case "monotone clock" `Quick test_loop_clock_monotone;
        Alcotest.test_case "crash" `Quick test_loop_crash;
      ] );
    ( "runtime.equivalence",
      [
        Alcotest.test_case "stack on both runtimes" `Quick test_stack_on_both_runtimes;
        Alcotest.test_case "loop joiner" `Quick test_loop_stack_joiner;
      ] );
  ]
