(* Tests for the simulation kernel: pids, rng, heap, channel, trace,
   metrics, engine. *)

open Sim

let qtest = QCheck_alcotest.to_alcotest

(* --- Pid --- *)

let test_pid_set_lex () =
  let s = Pid.set_of_list in
  Alcotest.(check bool) "equal sets" true (Pid.compare_sets_lex (s [ 1; 2 ]) (s [ 2; 1 ]) = 0);
  Alcotest.(check bool) "prefix smaller" true (Pid.compare_sets_lex (s [ 1 ]) (s [ 1; 2 ]) < 0);
  Alcotest.(check bool) "pointwise" true (Pid.compare_sets_lex (s [ 1; 3 ]) (s [ 1; 4 ]) < 0);
  Alcotest.(check bool) "empty smallest" true (Pid.compare_sets_lex Pid.Set.empty (s [ 0 ]) < 0)

let prop_pid_lex_total_order =
  QCheck.Test.make ~name:"pid set lex order is antisymmetric"
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (a, b) ->
      let sa = Pid.set_of_list a and sb = Pid.set_of_list b in
      let c1 = Pid.compare_sets_lex sa sb and c2 = Pid.compare_sets_lex sb sa in
      (c1 = 0 && c2 = 0 && Pid.Set.equal sa sb) || c1 * c2 < 0)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let f = Rng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 11 in
  let l = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let s = Rng.shuffle r l in
  Alcotest.(check (list int)) "same elements" l (List.sort compare s)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_chance_extremes () =
  let r = Rng.create 1 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always" true (Rng.chance r 1.0);
    Alcotest.(check bool) "p=0 never" false (Rng.chance r 0.0)
  done

(* --- Heap --- *)

let test_heap_sorts () =
  let h = Heap.create Int.compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc = if Heap.is_empty h then List.rev acc else drain (Heap.pop h :: acc) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_empty_raises () =
  let h = Heap.create Int.compare in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop h));
  Alcotest.check_raises "peek empty" Not_found (fun () -> ignore (Heap.peek h))

let prop_heap_pop_order =
  QCheck.Test.make ~name:"heap pops in nondecreasing order"
    QCheck.(list small_int)
    (fun l ->
      let h = Heap.create Int.compare in
      List.iter (Heap.push h) l;
      let rec drain acc = if Heap.is_empty h then List.rev acc else drain (Heap.pop h :: acc) in
      let out = drain [] in
      out = List.sort Int.compare l)

(* --- Channel --- *)

let test_channel_capacity () =
  let rng = Rng.create 2 in
  let ch = Channel.create ~capacity:4 in
  for i = 1 to 20 do
    Channel.send ch rng i
  done;
  Alcotest.(check bool) "bounded" true (Channel.length ch <= 4);
  Alcotest.(check int) "sent counted" 20 (Channel.stats ch).Channel.sent;
  Alcotest.(check bool) "drops counted" true ((Channel.stats ch).Channel.dropped >= 16)

let test_channel_fifo_without_reorder () =
  let rng = Rng.create 2 in
  let ch = Channel.create ~capacity:10 in
  List.iter (Channel.send ch rng) [ 1; 2; 3 ];
  let take () = Channel.take ch rng ~reorder:false in
  Alcotest.(check (option int)) "first" (Some 1) (take ());
  Alcotest.(check (option int)) "second" (Some 2) (take ());
  Alcotest.(check (option int)) "third" (Some 3) (take ());
  Alcotest.(check (option int)) "empty" None (take ())

let test_channel_corrupt_and_clear () =
  let ch = Channel.create ~capacity:3 in
  Channel.corrupt ch [ 9; 8; 7; 6; 5 ];
  Alcotest.(check int) "truncated to capacity" 3 (Channel.length ch);
  Channel.clear ch;
  Alcotest.(check bool) "cleared" true (Channel.is_empty ch)

(* --- Trace and metrics --- *)

let test_trace_tags () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~node:1 ~tag:"a" "x";
  Trace.record tr ~time:2.0 ~tag:"b" "y";
  Trace.record tr ~time:3.0 ~node:2 ~tag:"a" "z";
  Alcotest.(check int) "count a" 2 (Trace.count tr "a");
  Alcotest.(check int) "count b" 1 (Trace.count tr "b");
  match Trace.with_tag tr "a" with
  | [ e1; e2 ] ->
    Alcotest.(check string) "order" "x" e1.Trace.detail;
    Alcotest.(check string) "order" "z" e2.Trace.detail
  | _ -> Alcotest.fail "expected two entries"

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.add m "c" 4;
  Alcotest.(check int) "counter" 5 (Metrics.get m "c");
  Alcotest.(check int) "absent counter" 0 (Metrics.get m "absent");
  List.iter (Metrics.observe m "s") [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (option (float 0.001))) "mean" (Some 2.5) (Metrics.mean m "s");
  Alcotest.(check (option (float 0.001))) "min" (Some 1.0) (Metrics.min_sample m "s");
  Alcotest.(check (option (float 0.001))) "max" (Some 4.0) (Metrics.max_sample m "s");
  Alcotest.(check (option (float 0.001))) "median" (Some 2.0) (Metrics.percentile m "s" 0.5)

(* --- Engine --- *)

(* A trivial gossip protocol: every node broadcasts its value; receivers
   keep the max. *)
type gossip = { mutable value : int; peers : Pid.t list }

let gossip_behavior pids =
  {
    Engine.init = (fun p -> { value = p * 10; peers = List.filter (fun q -> q <> p) pids });
    on_timer =
      (fun ctx s ->
        List.iter (fun q -> Engine.send ctx q s.value) s.peers;
        s);
    on_message =
      (fun _ctx _from v s ->
        if v > s.value then s.value <- v;
        s);
  }

let test_engine_gossip_converges () =
  let pids = [ 1; 2; 3; 4; 5 ] in
  let eng = Engine.create ~seed:1 ~behavior:(gossip_behavior pids) ~pids () in
  let converged t =
    List.for_all (fun p -> (Engine.state t p).value = 50) (Engine.live_pids t)
  in
  Alcotest.(check bool) "gossip converges" true (Engine.run_until eng ~max_steps:20_000 converged)

let test_engine_rounds_advance () =
  let pids = [ 1; 2; 3 ] in
  let eng = Engine.create ~seed:2 ~behavior:(gossip_behavior pids) ~pids () in
  Engine.run_rounds eng 10;
  Alcotest.(check bool) "rounds >= 10" true (Engine.rounds eng >= 10)

let test_engine_crash_stops_node () =
  let pids = [ 1; 2 ] in
  let eng = Engine.create ~seed:3 ~behavior:(gossip_behavior pids) ~pids () in
  Engine.run_rounds eng 2;
  Engine.crash eng 2;
  let v_before = (Engine.state eng 2).value in
  Engine.run_rounds eng 10;
  Alcotest.(check int) "crashed state frozen" v_before (Engine.state eng 2).value;
  Alcotest.(check (list int)) "live pids" [ 1 ] (Engine.live_pids eng)

let test_engine_add_node () =
  let pids = [ 1; 2 ] in
  (* the new node's peer list must include it for gossip; use a closure over
     all prospective pids *)
  let all = [ 1; 2; 3 ] in
  let eng = Engine.create ~seed:4 ~behavior:(gossip_behavior all) ~pids () in
  Engine.run_rounds eng 3;
  Engine.add_node eng 3;
  let converged t =
    List.for_all (fun p -> (Engine.state t p).value = 30) (Engine.live_pids t)
  in
  Alcotest.(check bool) "new node's value wins" true
    (Engine.run_until eng ~max_steps:50_000 converged)

let test_engine_partition_blocks_gossip () =
  let pids = [ 1; 2; 3; 4 ] in
  let eng = Engine.create ~seed:7 ~behavior:(gossip_behavior pids) ~pids () in
  (* cut {1,2} off from {3,4} before any gossip spreads *)
  Engine.partition eng (Pid.set_of_list [ 1; 2 ]);
  Engine.run_rounds eng 30;
  Alcotest.(check int) "max did not cross the cut" 20 (Engine.state eng 1).value;
  Alcotest.(check int) "other side kept its own max" 40 (Engine.state eng 3).value;
  (* healing lets the global max win *)
  Engine.heal eng;
  let converged t =
    List.for_all (fun p -> (Engine.state t p).value = 40) (Engine.live_pids t)
  in
  Alcotest.(check bool) "heals" true (Engine.run_until eng ~max_steps:50_000 converged)

let test_engine_block_directed_link () =
  let pids = [ 1; 2 ] in
  let eng = Engine.create ~seed:8 ~behavior:(gossip_behavior pids) ~pids () in
  Engine.block_link eng ~src:2 ~dst:1;
  Alcotest.(check bool) "blocked" true (Engine.link_blocked eng ~src:2 ~dst:1);
  Alcotest.(check bool) "reverse open" false (Engine.link_blocked eng ~src:1 ~dst:2);
  Engine.run_rounds eng 20;
  Alcotest.(check int) "1 never hears from 2" 10 (Engine.state eng 1).value;
  Alcotest.(check int) "2 hears from 1 fine" 20 (Engine.state eng 2).value;
  Engine.unblock_link eng ~src:2 ~dst:1;
  let converged t = (Engine.state t 1).value = 20 in
  Alcotest.(check bool) "recovers once unblocked" true
    (Engine.run_until eng ~max_steps:20_000 converged)

let test_engine_timer_fairness () =
  (* every live node takes timer steps at roughly the same rate: after many
     steps no node lags the round count by more than a couple of ticks *)
  let pids = [ 1; 2; 3; 4; 5; 6 ] in
  let eng = Engine.create ~seed:9 ~behavior:(gossip_behavior pids) ~pids () in
  Engine.run eng ~steps:5_000;
  let rounds = Engine.rounds eng in
  Alcotest.(check bool) "rounds advanced" true (rounds > 10);
  (* the minimum (rounds) and the per-node tick counts cannot diverge much
     given the bounded timer jitter; re-running rounds still works *)
  Engine.run_rounds eng 5;
  Alcotest.(check bool) "still fair" true (Engine.rounds eng >= rounds + 5)

let test_trace_truncation () =
  let tr = Trace.create ~limit:10 () in
  for i = 1 to 100 do
    Trace.record tr ~time:(float_of_int i) ~tag:"t" (string_of_int i)
  done;
  let entries = Trace.entries tr in
  Alcotest.(check bool) "bounded" true (List.length entries <= 20);
  (* the newest entry always survives truncation *)
  match List.rev entries with
  | last :: _ -> Alcotest.(check string) "newest kept" "100" last.Trace.detail
  | [] -> Alcotest.fail "trace empty"

let test_metrics_edges () =
  let m = Metrics.create () in
  Alcotest.(check (option (float 0.1))) "mean of empty" None (Metrics.mean m "x");
  Alcotest.(check (option (float 0.1))) "percentile of empty" None
    (Metrics.percentile m "x" 0.5);
  Metrics.observe m "x" 5.0;
  Alcotest.(check (option (float 0.001))) "single-sample percentile" (Some 5.0)
    (Metrics.percentile m "x" 0.99);
  Alcotest.(check int) "sample count" 1 (Metrics.sample_count m "x");
  Metrics.clear m;
  Alcotest.(check int) "cleared" 0 (Metrics.sample_count m "x")

let test_engine_determinism () =
  let run () =
    let pids = [ 1; 2; 3; 4 ] in
    let eng = Engine.create ~seed:99 ~behavior:(gossip_behavior pids) ~pids () in
    Engine.run eng ~steps:500;
    List.map (fun p -> (Engine.state eng p).value) pids
  in
  Alcotest.(check (list int)) "same seed, same run" (run ()) (run ())

(* rounds is now maintained incrementally (a cached min over live nodes'
   tick counts); these pin its observable behavior across the membership
   events that mutate the cache *)

let test_engine_rounds_crash_laggard () =
  let pids = [ 1; 2; 3; 4 ] in
  let eng = Engine.create ~seed:11 ~behavior:(gossip_behavior pids) ~pids () in
  Engine.run_rounds eng 6;
  let before = Engine.rounds eng in
  (* crashing nodes removes them from the min; rounds must never go
     backwards and must keep advancing for the survivors *)
  Engine.crash eng 1;
  Alcotest.(check bool) "monotone after crash" true (Engine.rounds eng >= before);
  Engine.crash eng 2;
  let mid = Engine.rounds eng in
  Alcotest.(check bool) "monotone after second crash" true (mid >= before);
  Engine.run_rounds eng 5;
  Alcotest.(check bool) "still advances" true (Engine.rounds eng >= mid + 5)

let test_engine_rounds_all_crashed () =
  let pids = [ 1; 2 ] in
  let eng = Engine.create ~seed:12 ~behavior:(gossip_behavior pids) ~pids () in
  Engine.run_rounds eng 4;
  Engine.crash eng 1;
  Engine.crash eng 2;
  Alcotest.(check int) "no live nodes -> rounds 0" 0 (Engine.rounds eng);
  (* double crash is a no-op, not cache corruption *)
  Engine.crash eng 1;
  Alcotest.(check int) "idempotent crash" 0 (Engine.rounds eng)

let test_engine_rounds_add_node () =
  let all = [ 1; 2; 3 ] in
  let eng = Engine.create ~seed:13 ~behavior:(gossip_behavior all) ~pids:[ 1; 2 ] () in
  Engine.run_rounds eng 7;
  let before = Engine.rounds eng in
  (* a joiner starts at the current round, so the min is unchanged *)
  Engine.add_node eng 3;
  Alcotest.(check int) "join keeps rounds" before (Engine.rounds eng);
  Engine.run_rounds eng 5;
  Alcotest.(check bool) "advances with joiner" true (Engine.rounds eng >= before + 5)

let test_engine_run_rounds_unchanged () =
  (* same seed => same step count to reach the round target, same trace
     length, same final states — i.e. the O(1) rounds cache did not change
     what run_rounds does *)
  let run () =
    let pids = [ 1; 2; 3; 4; 5 ] in
    let eng = Engine.create ~seed:21 ~behavior:(gossip_behavior pids) ~pids () in
    Engine.run_rounds eng 12;
    ( Engine.rounds eng,
      Engine.steps eng,
      List.length (Trace.entries (Engine.trace eng)),
      List.map (fun p -> (Engine.state eng p).value) pids )
  in
  let r1, s1, t1, v1 = run () in
  let r2, s2, t2, v2 = run () in
  Alcotest.(check bool) "round target reached" true (r1 >= 12);
  Alcotest.(check int) "same rounds" r1 r2;
  Alcotest.(check int) "same steps" s1 s2;
  Alcotest.(check int) "same trace length" t1 t2;
  Alcotest.(check (list int)) "same final states" v1 v2

(* --- Channel ring buffer vs the list reference model --- *)

(* The previous Channel implementation: a plain list with the same RNG
   draw discipline. The ring buffer must agree with it op for op — seeded
   runs depend on that equivalence. *)
module Ref_channel = struct
  type 'a t = {
    cap : int;
    mutable q : 'a list;
    mutable sent : int;
    mutable dropped : int;
    mutable delivered : int;
    mutable duplicated : int;
  }

  let create ~capacity =
    { cap = capacity; q = []; sent = 0; dropped = 0; delivered = 0; duplicated = 0 }

  let remove_nth l n =
    let rec go i acc = function
      | [] -> assert false
      | x :: rest ->
        if i = n then (x, List.rev_append acc rest) else go (i + 1) (x :: acc) rest
    in
    go 0 [] l

  let replace_nth l n v = List.mapi (fun i x -> if i = n then v else x) l

  let send t rng pkt =
    t.sent <- t.sent + 1;
    let len = List.length t.q in
    if len < t.cap then t.q <- t.q @ [ pkt ]
    else begin
      t.dropped <- t.dropped + 1;
      if Rng.bool rng then t.q <- replace_nth t.q (Rng.int rng len) pkt
    end

  let take t rng ~reorder =
    match t.q with
    | [] -> None
    | _ ->
      let len = List.length t.q in
      let idx = if reorder then Rng.int rng len else 0 in
      let pkt, rest = remove_nth t.q idx in
      t.q <- rest;
      t.delivered <- t.delivered + 1;
      Some pkt

  let duplicate_head t =
    match t.q with
    | hd :: _ when List.length t.q < t.cap ->
      t.q <- t.q @ [ hd ];
      t.duplicated <- t.duplicated + 1
    | _ -> ()

  let drop_one t rng =
    match t.q with
    | [] -> ()
    | _ ->
      let _, rest = remove_nth t.q (Rng.int rng (List.length t.q)) in
      t.q <- rest;
      t.dropped <- t.dropped + 1

  let corrupt t pkts =
    let rec take_n n = function
      | x :: rest when n > 0 -> x :: take_n (n - 1) rest
      | _ -> []
    in
    t.q <- take_n t.cap pkts
end

let test_channel_matches_list_model () =
  List.iter
    (fun seed ->
      let rng_ring = Rng.create seed and rng_ref = Rng.create seed in
      let ops = Rng.create (seed * 31) in
      let ring = Channel.create ~capacity:4 in
      let refc = Ref_channel.create ~capacity:4 in
      for i = 1 to 2_000 do
        (match Rng.int ops 8 with
        | 0 | 1 | 2 | 3 ->
          Channel.send ring rng_ring i;
          Ref_channel.send refc rng_ref i
        | 4 ->
          let a = Channel.take ring rng_ring ~reorder:true in
          let b = Ref_channel.take refc rng_ref ~reorder:true in
          Alcotest.(check (option int)) "take reorder" b a
        | 5 ->
          let a = Channel.take ring rng_ring ~reorder:false in
          let b = Ref_channel.take refc rng_ref ~reorder:false in
          Alcotest.(check (option int)) "take fifo" b a
        | 6 ->
          Channel.duplicate_head ring;
          Ref_channel.duplicate_head refc
        | _ ->
          Channel.drop_one ring rng_ring;
          Ref_channel.drop_one refc rng_ref);
        Alcotest.(check (list int)) "contents agree" refc.Ref_channel.q
          (Channel.contents ring)
      done;
      (* corruption resets contents through a different path *)
      Channel.corrupt ring [ 7; 8; 9; 10; 11 ];
      Ref_channel.corrupt refc [ 7; 8; 9; 10; 11 ];
      Alcotest.(check (list int)) "contents after corrupt" refc.Ref_channel.q
        (Channel.contents ring);
      let st = Channel.stats ring in
      Alcotest.(check int) "sent" refc.Ref_channel.sent st.Channel.sent;
      Alcotest.(check int) "dropped" refc.Ref_channel.dropped st.Channel.dropped;
      Alcotest.(check int) "delivered" refc.Ref_channel.delivered st.Channel.delivered;
      Alcotest.(check int) "duplicated" refc.Ref_channel.duplicated st.Channel.duplicated)
    [ 1; 17; 4242 ]

(* --- Heap vs a sorted-list model, interleaved pushes and pops --- *)

let test_heap_matches_sorted_model () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let h = Heap.create Int.compare in
      let model = ref [] in
      for _ = 1 to 3_000 do
        if Rng.int rng 3 < 2 || !model = [] then begin
          let v = Rng.int rng 1_000 in
          Heap.push h v;
          model := List.merge Int.compare [ v ] !model
        end
        else begin
          match !model with
          | m :: rest ->
            Alcotest.(check int) "peek is min" m (Heap.peek h);
            Alcotest.(check int) "pop is min" m (Heap.pop h);
            model := rest
          | [] -> assert false
        end;
        Alcotest.(check int) "size agrees" (List.length !model) (Heap.size h)
      done)
    [ 2; 23 ]

(* --- pids/live_pids caches survive membership changes --- *)

let test_engine_pids_cache_invalidation () =
  let all = [ 1; 2; 3; 4 ] in
  let eng = Engine.create ~seed:31 ~behavior:(gossip_behavior all) ~pids:[ 3; 1; 2 ] () in
  Alcotest.(check (list int)) "pids sorted" [ 1; 2; 3 ] (Engine.pids eng);
  (* hit the cache once, then mutate membership *)
  Alcotest.(check (list int)) "live = pids" (Engine.pids eng) (Engine.live_pids eng);
  Engine.add_node eng 4;
  Alcotest.(check (list int)) "pids after join" [ 1; 2; 3; 4 ] (Engine.pids eng);
  Alcotest.(check (list int)) "live after join" [ 1; 2; 3; 4 ] (Engine.live_pids eng);
  Engine.crash eng 2;
  Alcotest.(check (list int)) "pids keep crashed node" [ 1; 2; 3; 4 ] (Engine.pids eng);
  Alcotest.(check (list int)) "live drop crashed node" [ 1; 3; 4 ] (Engine.live_pids eng);
  (* crash is idempotent on the cache *)
  Engine.crash eng 2;
  Alcotest.(check (list int)) "idempotent crash" [ 1; 3; 4 ] (Engine.live_pids eng)

let suites =
  [
    ( "sim.pid",
      [
        Alcotest.test_case "set lex order" `Quick test_pid_set_lex;
        qtest prop_pid_lex_total_order;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "sorts" `Quick test_heap_sorts;
        Alcotest.test_case "empty raises" `Quick test_heap_empty_raises;
        Alcotest.test_case "matches sorted-list model" `Quick test_heap_matches_sorted_model;
        qtest prop_heap_pop_order;
      ] );
    ( "sim.channel",
      [
        Alcotest.test_case "capacity bound" `Quick test_channel_capacity;
        Alcotest.test_case "fifo without reorder" `Quick test_channel_fifo_without_reorder;
        Alcotest.test_case "corrupt and clear" `Quick test_channel_corrupt_and_clear;
        Alcotest.test_case "matches list reference model" `Quick
          test_channel_matches_list_model;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "tags" `Quick test_trace_tags;
        Alcotest.test_case "truncation" `Quick test_trace_truncation;
        Alcotest.test_case "metrics" `Quick test_metrics;
        Alcotest.test_case "metrics edges" `Quick test_metrics_edges;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "gossip converges" `Quick test_engine_gossip_converges;
        Alcotest.test_case "rounds advance" `Quick test_engine_rounds_advance;
        Alcotest.test_case "crash stops node" `Quick test_engine_crash_stops_node;
        Alcotest.test_case "add node" `Quick test_engine_add_node;
        Alcotest.test_case "partition blocks gossip" `Quick test_engine_partition_blocks_gossip;
        Alcotest.test_case "directed link block" `Quick test_engine_block_directed_link;
        Alcotest.test_case "timer fairness" `Quick test_engine_timer_fairness;
        Alcotest.test_case "determinism" `Quick test_engine_determinism;
        Alcotest.test_case "rounds: crash laggard" `Quick test_engine_rounds_crash_laggard;
        Alcotest.test_case "rounds: all crashed" `Quick test_engine_rounds_all_crashed;
        Alcotest.test_case "rounds: add node" `Quick test_engine_rounds_add_node;
        Alcotest.test_case "run_rounds unchanged" `Quick test_engine_run_rounds_unchanged;
        Alcotest.test_case "pids cache invalidation" `Quick
          test_engine_pids_cache_invalidation;
      ] );
  ]
