(* Tests for the telemetry layer: histogram bucket geometry and quantile
   accuracy, span bookkeeping (nesting, orphans, unmatched ends), the
   trace ring's exact-at-limit eviction, Metrics.percentile edge cases,
   and exporter format/determinism. *)

open Sim
module H = Telemetry.Histogram

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* histogram bucket geometry                                            *)
(* ------------------------------------------------------------------ *)

let test_bucket_boundaries () =
  (* every finite bound maps to its own bucket, and a hair above it to
     the next one *)
  for i = 0 to H.buckets - 1 do
    let b = H.bound i in
    Alcotest.(check int)
      (Printf.sprintf "bound %d is in bucket %d" i i)
      i (H.bucket_index b);
    let above = b *. 1.000001 in
    Alcotest.(check int)
      (Printf.sprintf "just above bound %d" i)
      (i + 1)
      (H.bucket_index above)
  done;
  (* bounds grow geometrically *)
  Alcotest.check feq "bound 0 = least" H.least (H.bound 0);
  for i = 1 to H.buckets - 1 do
    Alcotest.check feq "geometric growth"
      (H.bound (i - 1) *. H.ratio)
      (H.bound i)
  done;
  (* tiny, zero and negative values land in bucket 0; huge in overflow *)
  Alcotest.(check int) "zero" 0 (H.bucket_index 0.0);
  Alcotest.(check int) "negative" 0 (H.bucket_index (-5.0));
  Alcotest.(check int) "below least" 0 (H.bucket_index (H.least /. 2.0));
  Alcotest.(check int) "huge overflows" H.buckets
    (H.bucket_index (H.bound (H.buckets - 1) *. 2.0))

let test_histogram_stats () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check (option (float 0.0))) "empty quantile" None (H.quantile h 0.5);
  List.iter (H.observe h) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check int) "count" 3 (H.count h);
  Alcotest.check feq "sum" 6.0 (H.sum h);
  Alcotest.(check (option feq)) "min" (Some 1.0) (H.min_value h);
  Alcotest.(check (option feq)) "max" (Some 3.0) (H.max_value h);
  Alcotest.(check (option feq)) "mean" (Some 2.0) (H.mean h);
  (* single-sample histograms answer quantiles exactly (clamping) *)
  let h1 = H.create () in
  H.observe h1 0.7234;
  List.iter
    (fun p ->
      Alcotest.(check (option feq))
        (Printf.sprintf "single sample p=%g" p)
        (Some 0.7234) (H.quantile h1 p))
    [ 0.0; 0.5; 0.99; 1.0 ]

(* quantile estimates must agree with exact nearest-rank percentiles to
   within one bucket (a factor of [ratio]) *)
let test_quantile_accuracy () =
  let exact samples p =
    let a = Array.of_list samples in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  in
  let rng = Rng.create 99 in
  let samples = List.init 500 (fun _ -> (Rng.float rng *. 10.0) +. 0.001) in
  let h = H.create () in
  List.iter (H.observe h) samples;
  List.iter
    (fun p ->
      let e = exact samples p in
      match H.quantile h p with
      | None -> Alcotest.fail "quantile on non-empty histogram"
      | Some q ->
        if not (q >= e /. H.ratio -. 1e-9 && q <= e *. H.ratio +. 1e-9) then
          Alcotest.failf "p=%g: estimate %g not within a bucket of exact %g" p
            q e)
    [ 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ]

(* ------------------------------------------------------------------ *)
(* registry: labels, counters, declarations                             *)
(* ------------------------------------------------------------------ *)

let test_labels () =
  let t = Telemetry.create () in
  Telemetry.inc t ~labels:[ ("b", "2"); ("a", "1") ] "x";
  Telemetry.inc t ~labels:[ ("a", "1"); ("b", "2") ] "x";
  (* label order is irrelevant: both hit the same series *)
  Alcotest.(check int) "one series, two increments" 2
    (Telemetry.counter_value t ~labels:[ ("a", "1"); ("b", "2") ] "x");
  Alcotest.check_raises "duplicate keys rejected"
    (Invalid_argument "Telemetry: duplicate label key") (fun () ->
      Telemetry.inc t ~labels:[ ("a", "1"); ("a", "2") ] "x");
  (* distinct label values are distinct series *)
  Telemetry.inc t ~labels:[ ("a", "other") ] "x";
  Alcotest.(check int) "distinct series" 1
    (Telemetry.counter_value t ~labels:[ ("a", "other") ] "x");
  Alcotest.(check int) "unlabeled untouched" 0 (Telemetry.counter_value t "x")

let test_declarations () =
  let t = Telemetry.create () in
  Telemetry.declare_counter t ~labels:[ ("type", "1") ] "conflicts";
  Telemetry.declare_histogram t "latency";
  Alcotest.(check int) "declared counter exported" 1
    (List.length (Telemetry.counters t));
  (match Telemetry.histograms t with
  | [ (name, [], h) ] ->
    Alcotest.(check string) "declared histogram exported" "latency" name;
    Alcotest.(check int) "empty" 0 (H.count h)
  | _ -> Alcotest.fail "expected exactly one declared histogram");
  (* declaring never resets a live instrument *)
  Telemetry.inc t ~labels:[ ("type", "1") ] "conflicts";
  Telemetry.declare_counter t ~labels:[ ("type", "1") ] "conflicts";
  Alcotest.(check int) "declare is idempotent" 1
    (Telemetry.counter_value t ~labels:[ ("type", "1") ] "conflicts")

(* ------------------------------------------------------------------ *)
(* spans                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_basic () =
  let t = Telemetry.create () in
  Telemetry.span_begin t ~name:"phase" ~key:1 ~now:10.0;
  Alcotest.(check bool) "open" true (Telemetry.span_open t ~name:"phase" ~key:1);
  Alcotest.(check int) "one open span" 1 (Telemetry.open_spans t);
  Telemetry.span_end t ~name:"phase" ~key:1 ~now:12.5;
  Alcotest.(check bool) "closed" false
    (Telemetry.span_open t ~name:"phase" ~key:1);
  (match Telemetry.find_histogram t "phase" with
  | Some h ->
    Alcotest.(check int) "one observation" 1 (H.count h);
    Alcotest.check feq "duration" 2.5 (H.sum h)
  | None -> Alcotest.fail "span end must create the histogram");
  (* distinct keys time the same phase independently *)
  Telemetry.span_begin t ~name:"phase" ~key:1 ~now:20.0;
  Telemetry.span_begin t ~name:"phase" ~key:2 ~now:21.0;
  Telemetry.span_end t ~name:"phase" ~key:2 ~now:25.0;
  Telemetry.span_end t ~name:"phase" ~key:1 ~now:30.0;
  (match Telemetry.find_histogram t "phase" with
  | Some h ->
    Alcotest.(check int) "three observations" 3 (H.count h);
    Alcotest.check feq "summed durations" (2.5 +. 4.0 +. 10.0) (H.sum h)
  | None -> Alcotest.fail "histogram vanished");
  (* labels given at the end select the series *)
  Telemetry.span_begin t ~name:"op" ~key:7 ~now:0.0;
  Telemetry.span_end t ~labels:[ ("outcome", "ok") ] ~name:"op" ~key:7 ~now:1.0;
  Alcotest.(check bool) "labeled series exists" true
    (Telemetry.find_histogram t ~labels:[ ("outcome", "ok") ] "op" <> None)

let test_span_mismatches () =
  let t = Telemetry.create () in
  (* double begin: orphan counted, interval restarted *)
  Telemetry.span_begin t ~name:"s" ~key:1 ~now:0.0;
  Telemetry.span_begin t ~name:"s" ~key:1 ~now:5.0;
  Alcotest.(check int) "orphan counted" 1
    (Telemetry.counter_value t ~labels:[ ("span", "s") ] "telemetry.span_orphaned");
  Telemetry.span_end t ~name:"s" ~key:1 ~now:6.0;
  (match Telemetry.find_histogram t "s" with
  | Some h -> Alcotest.check feq "restarted interval" 1.0 (H.sum h)
  | None -> Alcotest.fail "no histogram");
  (* end without begin: unmatched counted, nothing observed *)
  Telemetry.span_end t ~name:"s" ~key:9 ~now:100.0;
  Alcotest.(check int) "unmatched counted" 1
    (Telemetry.counter_value t ~labels:[ ("span", "s") ]
       "telemetry.span_unmatched");
  (match Telemetry.find_histogram t "s" with
  | Some h -> Alcotest.(check int) "nothing observed" 1 (H.count h)
  | None -> Alcotest.fail "no histogram");
  (* drop abandons silently *)
  Telemetry.span_begin t ~name:"s" ~key:1 ~now:0.0;
  Telemetry.span_drop t ~name:"s" ~key:1;
  Alcotest.(check bool) "dropped" false (Telemetry.span_open t ~name:"s" ~key:1);
  Telemetry.span_end t ~name:"s" ~key:1 ~now:50.0;
  Alcotest.(check int) "end after drop is unmatched" 2
    (Telemetry.counter_value t ~labels:[ ("span", "s") ]
       "telemetry.span_unmatched")

(* ------------------------------------------------------------------ *)
(* trace ring eviction                                                  *)
(* ------------------------------------------------------------------ *)

let test_trace_ring () =
  let limit = 10 in
  let tr = Trace.create ~limit () in
  for i = 1 to 25 do
    Trace.record tr ~time:(float_of_int i) ~tag:"t" (string_of_int i)
  done;
  Alcotest.(check int) "length capped exactly at limit" limit (Trace.length tr);
  let entries = Trace.entries tr in
  Alcotest.(check int) "entries capped" limit (List.length entries);
  (* the survivors are exactly the most recent [limit], in order *)
  List.iteri
    (fun i e ->
      Alcotest.(check string)
        (Printf.sprintf "entry %d" i)
        (string_of_int (16 + i))
        e.Trace.detail)
    entries;
  (* iter and fold agree with entries *)
  let via_iter = ref [] in
  Trace.iter tr (fun e -> via_iter := e :: !via_iter);
  Alcotest.(check int) "iter visits all" limit (List.length !via_iter);
  Alcotest.(check string) "iter order" "16"
    (List.nth (List.rev !via_iter) 0).Trace.detail;
  let n = Trace.fold tr ~init:0 (fun a _ -> a + 1) in
  Alcotest.(check int) "fold visits all" limit n;
  (* below the limit nothing is evicted *)
  let tr2 = Trace.create ~limit:100 () in
  for i = 1 to 7 do
    Trace.record tr2 ~time:(float_of_int i) ~tag:"t" (string_of_int i)
  done;
  Alcotest.(check int) "under limit" 7 (Trace.length tr2)

(* ------------------------------------------------------------------ *)
(* Metrics.percentile edge cases                                        *)
(* ------------------------------------------------------------------ *)

let test_metrics_percentile_edges () =
  let m = Metrics.create () in
  Alcotest.(check (option (float 0.0))) "empty series" None
    (Metrics.percentile m "s" 0.5);
  Metrics.observe m "s" 42.0;
  List.iter
    (fun p ->
      Alcotest.(check (option feq))
        (Printf.sprintf "single sample p=%g" p)
        (Some 42.0) (Metrics.percentile m "s" p))
    [ 0.0; 0.5; 1.0 ];
  List.iter (Metrics.observe m "s") [ 10.0; 20.0; 30.0 ];
  (* series is now {10,20,30,42} *)
  Alcotest.(check (option feq)) "p=0 is the minimum" (Some 10.0)
    (Metrics.percentile m "s" 0.0);
  Alcotest.(check (option feq)) "p=1 is the maximum" (Some 42.0)
    (Metrics.percentile m "s" 1.0);
  Alcotest.(check (option feq)) "p=0.5 nearest-rank" (Some 20.0)
    (Metrics.percentile m "s" 0.5);
  (* interleaved observe/percentile: the sorted cache must invalidate *)
  Metrics.observe m "s" 5.0;
  Alcotest.(check (option feq)) "after new min" (Some 5.0)
    (Metrics.percentile m "s" 0.0);
  Alcotest.(check int) "count tracks" 5 (Metrics.sample_count m "s")

(* ------------------------------------------------------------------ *)
(* exporters                                                            *)
(* ------------------------------------------------------------------ *)

let build_registry () =
  let t = Telemetry.create () in
  Telemetry.inc t ~labels:[ ("type", "1") ] "recsa.conflicts";
  Telemetry.inc t ~labels:[ ("type", "1") ] "recsa.conflicts";
  Telemetry.inc t ~labels:[ ("type", "3") ] "recsa.conflicts";
  Telemetry.set_gauge t "nodes" 5.0;
  List.iter
    (Telemetry.observe t "recsa.replacement_seconds")
    [ 0.5; 1.5; 2.5 ];
  t

let render f t =
  let b = Buffer.create 256 in
  f b t;
  Buffer.contents b

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_prometheus_export () =
  let t = build_registry () in
  let out = render Telemetry.Export.prometheus t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains out needle))
    [
      "# TYPE recsa_conflicts_total counter";
      "recsa_conflicts_total{type=\"1\"} 2";
      "recsa_conflicts_total{type=\"3\"} 1";
      "# TYPE nodes gauge";
      "nodes 5.0";
      "# TYPE recsa_replacement_seconds histogram";
      "recsa_replacement_seconds_bucket{le=\"+Inf\"} 3";
      "recsa_replacement_seconds_count 3";
      "recsa_replacement_seconds_sum 4.5";
    ];
  (* deterministic: same registry renders byte-identically *)
  Alcotest.(check string) "deterministic" out
    (render Telemetry.Export.prometheus t)

let test_jsonl_export () =
  let t = build_registry () in
  let out = render Telemetry.Export.metrics_jsonl t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  (* 2 conflict series + 1 gauge + 1 histogram *)
  Alcotest.(check int) "one object per series" 4 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "object braces" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains out needle))
    [
      "\"kind\":\"counter\"";
      "\"name\":\"recsa.conflicts\"";
      "\"labels\":{\"type\":\"1\"}";
      "\"kind\":\"gauge\"";
      "\"kind\":\"histogram\"";
      "\"count\":3";
      "\"p50\":";
    ];
  Alcotest.(check string) "deterministic" out
    (render Telemetry.Export.metrics_jsonl t)

let test_json_helpers () =
  Alcotest.(check string) "escape quote" "a\\\"b"
    (Telemetry.Export.json_escape "a\"b");
  Alcotest.(check string) "escape backslash" "a\\\\b"
    (Telemetry.Export.json_escape "a\\b");
  Alcotest.(check string) "escape newline" "a\\nb"
    (Telemetry.Export.json_escape "a\nb");
  Alcotest.(check string) "integral float" "2.0"
    (Telemetry.Export.json_float 2.0);
  Alcotest.(check string) "nan is null" "null"
    (Telemetry.Export.json_float Float.nan);
  Alcotest.(check string) "inf is null" "null"
    (Telemetry.Export.json_float Float.infinity)

let suites =
  [
    ( "telemetry",
      [
        Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
        Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
        Alcotest.test_case "quantile accuracy" `Quick test_quantile_accuracy;
        Alcotest.test_case "labels" `Quick test_labels;
        Alcotest.test_case "declarations" `Quick test_declarations;
        Alcotest.test_case "span basic" `Quick test_span_basic;
        Alcotest.test_case "span mismatches" `Quick test_span_mismatches;
        Alcotest.test_case "trace ring eviction" `Quick test_trace_ring;
        Alcotest.test_case "metrics percentile edges" `Quick
          test_metrics_percentile_edges;
        Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
        Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
        Alcotest.test_case "json helpers" `Quick test_json_helpers;
      ] );
  ]
