(* Tests for virtually synchronous SMR (Algorithms 4.6/4.7), the shared
   memory emulation, and the non-stabilizing baseline comparator. *)

open Sim
open Vs

let set = Pid.set_of_list

(* An integer-accumulator state machine. *)
let machine = { Vs_service.initial = 0; apply = (fun s c -> s + c) }

let app sys p = (Reconfig.Stack.node sys p).Reconfig.Stack.app

let make_vs ?(seed = 42) ?(n = 4) ?eval_config () =
  let members = List.init n (fun i -> i + 1) in
  Reconfig.Stack.of_scenario
    ~hooks:(Vs_service.hooks ~machine ?eval_config ())
    (Reconfig.Scenario.make ~seed ~n_bound:16 ~members ())

let wait_for_view sys =
  Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
      List.for_all
        (fun (_, n) ->
          let st = n.Reconfig.Stack.app in
          Vs_service.status_of st = Vs_service.Multicast
          && (Vs_service.current_view st).Vs_service.vid <> None)
        (Reconfig.Stack.live_nodes t))

let replicas_equal sys v =
  List.for_all
    (fun (_, n) -> Vs_service.replica n.Reconfig.Stack.app = v)
    (Reconfig.Stack.live_nodes sys)

let test_view_established () =
  let sys = make_vs () in
  Alcotest.(check bool) "every node reaches a real view" true (wait_for_view sys);
  (* all nodes agree on the view *)
  let views =
    List.map (fun (_, n) -> Vs_service.current_view n.Reconfig.Stack.app)
      (Reconfig.Stack.live_nodes sys)
  in
  match views with
  | first :: rest ->
    Alcotest.(check bool) "views agree" true
      (List.for_all (Vs_service.view_equal first) rest)
  | [] -> Alcotest.fail "no nodes"

let test_exactly_one_coordinator () =
  let sys = make_vs ~seed:2 () in
  Alcotest.(check bool) "view" true (wait_for_view sys);
  Reconfig.Stack.run_rounds sys 10;
  let coordinators =
    List.filter (fun (_, n) -> Vs_service.is_coordinator n.Reconfig.Stack.app)
      (Reconfig.Stack.live_nodes sys)
  in
  Alcotest.(check int) "exactly one coordinator" 1 (List.length coordinators)

let test_multicast_delivers_everywhere () =
  let sys = make_vs ~seed:3 () in
  Alcotest.(check bool) "view" true (wait_for_view sys);
  Vs_service.submit (app sys 1) 7;
  Vs_service.submit (app sys 2) 11;
  Vs_service.submit (app sys 4) 13;
  Alcotest.(check bool) "all replicas reach 31" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t -> replicas_equal t 31))

let test_delivery_order_agreement () =
  let sys = make_vs ~seed:4 () in
  Alcotest.(check bool) "view" true (wait_for_view sys);
  List.iteri (fun i v -> Vs_service.submit (app sys (1 + (i mod 4))) v)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Alcotest.(check bool) "all replicas reach 36" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t -> replicas_equal t 36));
  (* virtual synchrony: all view members delivered the same sequence *)
  Reconfig.Stack.run_rounds sys 10;
  let logs =
    List.map (fun (_, n) -> Vs_service.delivered n.Reconfig.Stack.app)
      (Reconfig.Stack.live_nodes sys)
  in
  match logs with
  | first :: rest ->
    List.iter
      (fun l -> Alcotest.(check (list int)) "identical delivery order" first l)
      rest
  | [] -> Alcotest.fail "no logs"

let test_coordinator_crash_recovery () =
  let sys = make_vs ~seed:5 () in
  Alcotest.(check bool) "view" true (wait_for_view sys);
  Vs_service.submit (app sys 1) 5;
  Alcotest.(check bool) "state propagated" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t -> replicas_equal t 5));
  (* kill the coordinator *)
  let crd, _ =
    List.find (fun (_, n) -> Vs_service.is_coordinator n.Reconfig.Stack.app)
      (Reconfig.Stack.live_nodes sys)
  in
  Reconfig.Stack.crash sys crd;
  (* a new coordinator must emerge and the state machine must keep going *)
  let survivor = List.find (fun p -> p <> crd) [ 1; 2; 3; 4 ] in
  Vs_service.submit (app sys survivor) 20;
  Alcotest.(check bool) "service resumes with state preserved" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         List.for_all
           (fun (_, n) -> Vs_service.replica n.Reconfig.Stack.app = 25)
           (Reconfig.Stack.live_nodes t)))

let test_joiner_gets_state () =
  let sys = make_vs ~seed:6 () in
  Alcotest.(check bool) "view" true (wait_for_view sys);
  Vs_service.submit (app sys 1) 42;
  Alcotest.(check bool) "state propagated" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t -> replicas_equal t 42));
  Reconfig.Stack.add_joiner sys 9;
  Alcotest.(check bool) "joiner enters the view with the state" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         Vs_service.replica (app t 9) = 42
         && Vs_service.status_of (app t 9) = Vs_service.Multicast))

let test_coordinator_led_reconfiguration () =
  (* Algorithm 4.6: after a joiner arrives, the coordinator suspends,
     reconfigures to include it, and the replica state survives
     (Theorem 4.13). *)
  let want = ref false in
  let eval_config ~self:_ ~trusted:_ _ = !want in
  let sys = make_vs ~seed:7 ~eval_config () in
  Alcotest.(check bool) "view" true (wait_for_view sys);
  Vs_service.submit (app sys 2) 16;
  Alcotest.(check bool) "state propagated" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t -> replicas_equal t 16));
  Reconfig.Stack.add_joiner sys 9;
  Alcotest.(check bool) "joiner participates" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         Reconfig.Recsa.is_participant (Reconfig.Stack.node t 9).Reconfig.Stack.sa));
  want := true;
  let reconfigured t =
    match Reconfig.Stack.uniform_config t with
    | Some c -> Pid.Set.mem 9 c
    | None -> false
  in
  Alcotest.(check bool) "configuration now includes the joiner" true
    (Reconfig.Stack.run_until sys ~max_steps:1_500_000 reconfigured);
  want := false;
  (* service resumes and the state survived the reconfiguration *)
  Vs_service.submit (app sys 9) 100;
  Alcotest.(check bool) "state preserved and service resumed" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         List.for_all
           (fun (_, n) -> Vs_service.replica n.Reconfig.Stack.app = 116)
           (Reconfig.Stack.live_nodes t)));
  let tr = Engine.trace (Reconfig.Stack.engine sys) in
  Alcotest.(check bool) "suspend observed" true (Trace.count tr "vs.suspend" >= 1);
  Alcotest.(check bool) "reconfigure observed" true (Trace.count tr "vs.reconfigure" >= 1)

(* --- virtual-synchrony audit --- *)

let audit sys =
  let journals =
    List.map
      (fun (p, n) -> Vs_checker.journal_of_state p n.Reconfig.Stack.app)
      (Reconfig.Stack.live_nodes sys)
  in
  Vs_checker.check journals

let test_audit_steady_run () =
  let sys = make_vs ~seed:71 () in
  Alcotest.(check bool) "view" true (wait_for_view sys);
  List.iteri (fun i v -> Vs_service.submit (app sys (1 + (i mod 4))) v)
    [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check bool) "delivered" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t -> replicas_equal t 31));
  match audit sys with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_audit_across_coordinator_crash () =
  let sys = make_vs ~seed:72 () in
  Alcotest.(check bool) "view" true (wait_for_view sys);
  Vs_service.submit (app sys 1) 100;
  Alcotest.(check bool) "first delivered" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t -> replicas_equal t 100));
  let crd, _ =
    List.find (fun (_, n) -> Vs_service.is_coordinator n.Reconfig.Stack.app)
      (Reconfig.Stack.live_nodes sys)
  in
  Reconfig.Stack.crash sys crd;
  let survivor = List.find (fun p -> p <> crd) [ 1; 2; 3; 4 ] in
  Vs_service.submit (app sys survivor) 11;
  Alcotest.(check bool) "resumes" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         List.for_all
           (fun (_, n) -> Vs_service.replica n.Reconfig.Stack.app = 111)
           (Reconfig.Stack.live_nodes t)));
  match audit sys with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_audit_detects_violations () =
  (* hand-crafted journals that violate per-view agreement *)
  let view set = { Vs_service.vid = None; vset = Pid.set_of_list set } in
  let j1 = { Vs_checker.pid = 1; batches = [ (view [ 1; 2 ], [ (1, "a") ]) ] } in
  let j2 = { Vs_checker.pid = 2; batches = [ (view [ 1; 2 ], [ (1, "b") ]) ] } in
  (match Vs_checker.check [ j1; j2 ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "conflicting views not detected");
  (* order reversal must be detected too *)
  let j3 =
    { Vs_checker.pid = 3;
      batches = [ (view [ 3; 4 ], [ (3, "x") ]); (view [ 3; 4 ], [ (4, "y") ]) ] }
  in
  let j4 =
    { Vs_checker.pid = 4;
      batches = [ (view [ 3; 4 ], [ (4, "y") ]); (view [ 3; 4 ], [ (3, "x") ]) ] }
  in
  match Vs_checker.check [ j3; j4 ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "order reversal not detected"

(* --- shared memory emulation --- *)

let make_shm ?(seed = 42) ?(n = 4) () =
  let members = List.init n (fun i -> i + 1) in
  Reconfig.Stack.of_scenario ~hooks:(Shared_memory.hooks ())
    (Reconfig.Scenario.make ~seed ~n_bound:16 ~members ())

let shm_wait_view sys =
  Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
      List.for_all
        (fun (_, n) ->
          Vs_service.status_of n.Reconfig.Stack.app = Vs_service.Multicast
          && (Vs_service.current_view n.Reconfig.Stack.app).Vs_service.vid <> None)
        (Reconfig.Stack.live_nodes t))

let test_shm_write_read () =
  let sys = make_shm () in
  Alcotest.(check bool) "view" true (shm_wait_view sys);
  Shared_memory.write (app sys 1) ~writer:1 "x" 17;
  Alcotest.(check bool) "write visible everywhere" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         List.for_all
           (fun (_, n) -> Shared_memory.peek n.Reconfig.Stack.app "x" = Some 17)
           (Reconfig.Stack.live_nodes t)));
  Shared_memory.read (app sys 3) ~reader:3 ~rid:1 "x";
  Alcotest.(check bool) "read returns the written value" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Shared_memory.read_result (app t 3) ~reader:3 ~rid:1 = Some (Some 17)))

let test_shm_read_unwritten () =
  let sys = make_shm ~seed:8 () in
  Alcotest.(check bool) "view" true (shm_wait_view sys);
  Shared_memory.read (app sys 2) ~reader:2 ~rid:7 "nothing";
  Alcotest.(check bool) "read of unwritten register resolves to None" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Shared_memory.read_result (app t 2) ~reader:2 ~rid:7 = Some None))

let test_shm_two_writers_converge () =
  let sys = make_shm ~seed:9 () in
  Alcotest.(check bool) "view" true (shm_wait_view sys);
  Shared_memory.write (app sys 1) ~writer:1 "r" 1;
  Shared_memory.write (app sys 2) ~writer:2 "r" 2;
  Alcotest.(check bool) "all nodes agree on the final value" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         let vals =
           List.map (fun (_, n) -> Shared_memory.peek n.Reconfig.Stack.app "r")
             (Reconfig.Stack.live_nodes t)
         in
         match vals with
         | (Some v) :: rest -> (v = 1 || v = 2) && List.for_all (( = ) (Some v)) rest
         | _ -> false))

let test_shm_cas () =
  let sys = make_shm ~seed:10 () in
  Alcotest.(check bool) "view" true (shm_wait_view sys);
  (* CAS on an unwritten register with expected None succeeds *)
  Shared_memory.compare_and_set (app sys 1) ~writer:1 ~rid:1 "c" ~expected:None 5;
  Alcotest.(check bool) "first cas resolves" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Shared_memory.cas_result (app t 1) ~writer:1 ~rid:1 <> None));
  Alcotest.(check (option bool)) "first cas succeeded" (Some true)
    (Shared_memory.cas_result (app sys 1) ~writer:1 ~rid:1);
  (* two contending CAS from the same base: exactly one wins *)
  Shared_memory.compare_and_set (app sys 2) ~writer:2 ~rid:1 "c" ~expected:(Some 5) 20;
  Shared_memory.compare_and_set (app sys 3) ~writer:3 ~rid:1 "c" ~expected:(Some 5) 30;
  Alcotest.(check bool) "both resolve" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Shared_memory.cas_result (app t 2) ~writer:2 ~rid:1 <> None
         && Shared_memory.cas_result (app t 3) ~writer:3 ~rid:1 <> None));
  let r2 = Shared_memory.cas_result (app sys 2) ~writer:2 ~rid:1 in
  let r3 = Shared_memory.cas_result (app sys 3) ~writer:3 ~rid:1 in
  Alcotest.(check bool) "exactly one winner" true (r2 <> r3);
  let final = Shared_memory.peek (app sys 4) "c" in
  Alcotest.(check bool) "register holds the winner's value" true
    ((r2 = Some true && final = Some 20) || (r3 = Some true && final = Some 30))

(* --- SMR facade: at-most-once client semantics --- *)

let smr_machine = { Vs_service.initial = 0; apply = (fun s c -> s + c) }

let make_smr ?(seed = 42) ?(n = 4) () =
  let members = List.init n (fun i -> i + 1) in
  Reconfig.Stack.of_scenario
    ~hooks:(Smr.hooks ~machine:smr_machine ())
    (Reconfig.Scenario.make ~seed ~n_bound:16 ~members ())

let smr_wait_view sys =
  Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
      List.for_all
        (fun (_, n) ->
          Vs_service.status_of n.Reconfig.Stack.app = Vs_service.Multicast
          && (Vs_service.current_view n.Reconfig.Stack.app).Vs_service.vid <> None)
        (Reconfig.Stack.live_nodes t))

let test_smr_at_most_once () =
  let sys = make_smr ~seed:11 () in
  Alcotest.(check bool) "view" true (smr_wait_view sys);
  (* a client retries the same command id three times: applied once *)
  Smr.submit (app sys 1) ~client:1 ~cid:1 100;
  Smr.submit (app sys 1) ~client:1 ~cid:1 100;
  Smr.submit (app sys 2) ~client:1 ~cid:1 100;
  Alcotest.(check bool) "applied exactly once everywhere" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         List.for_all
           (fun (_, n) ->
             Smr.inner (Vs_service.replica n.Reconfig.Stack.app) = 100
             && Smr.applied_up_to (Vs_service.replica n.Reconfig.Stack.app) ~client:1 = 1)
           (Reconfig.Stack.live_nodes t)));
  Reconfig.Stack.run_rounds sys 20;
  Alcotest.(check bool) "retries never double-apply" true
    (List.for_all
       (fun (_, n) -> Smr.inner (Vs_service.replica n.Reconfig.Stack.app) = 100)
       (Reconfig.Stack.live_nodes sys))

let test_smr_retry_after_coordinator_crash () =
  let sys = make_smr ~seed:12 () in
  Alcotest.(check bool) "view" true (smr_wait_view sys);
  Smr.submit (app sys 1) ~client:1 ~cid:1 7;
  Alcotest.(check bool) "first committed" true
    (Reconfig.Stack.run_until sys ~max_steps:600_000 (fun t ->
         Smr.applied_up_to (Vs_service.replica (app t 1)) ~client:1 >= 1));
  (* the coordinator dies; the client, unsure, retries cid 1 and sends
     cid 2 at a survivor *)
  let crd, _ =
    List.find (fun (_, n) -> Vs_service.is_coordinator n.Reconfig.Stack.app)
      (Reconfig.Stack.live_nodes sys)
  in
  Reconfig.Stack.crash sys crd;
  let survivor = List.find (fun p -> p <> crd) [ 1; 2; 3; 4 ] in
  Smr.submit (app sys survivor) ~client:1 ~cid:1 7;
  Smr.submit (app sys survivor) ~client:1 ~cid:2 3;
  Alcotest.(check bool) "exactly-once across the crash" true
    (Reconfig.Stack.run_until sys ~max_steps:1_200_000 (fun t ->
         List.for_all
           (fun (_, n) ->
             let rs = Vs_service.replica n.Reconfig.Stack.app in
             Smr.inner rs = 10 && Smr.applied_up_to rs ~client:1 = 2)
           (Reconfig.Stack.live_nodes t)))

(* --- baseline comparator --- *)

let test_baseline_works_coherently () =
  let b = Baseline.Epoch_config.create ~seed:10 ~members:[ 1; 2; 3; 4 ] () in
  Baseline.Epoch_config.run_rounds b 10;
  Alcotest.(check bool) "healthy from coherent start" true (Baseline.Epoch_config.healthy b);
  Baseline.Epoch_config.reconfigure b 1 (set [ 1; 2; 3 ]);
  Baseline.Epoch_config.run_rounds b 30;
  Alcotest.(check (list int)) "reconfiguration propagates" [ 1; 2; 3 ]
    (Pid.Set.elements (Baseline.Epoch_config.config_of b 4))

let test_baseline_never_recovers () =
  let b = Baseline.Epoch_config.create ~seed:11 ~members:[ 1; 2; 3; 4 ] () in
  Baseline.Epoch_config.run_rounds b 10;
  (* one transient fault: a huge epoch carrying a configuration of departed
     processors *)
  Baseline.Epoch_config.corrupt b 2 ~epoch:1_000_000 ~config:(set [ 77; 88 ]);
  Baseline.Epoch_config.run_rounds b 100;
  Alcotest.(check bool) "garbage config wins everywhere" true
    (List.for_all
       (fun p -> Pid.Set.equal (Baseline.Epoch_config.config_of b p) (set [ 77; 88 ]))
       [ 1; 2; 3; 4 ]);
  Alcotest.(check bool) "never healthy again" false (Baseline.Epoch_config.healthy b)

let test_ssreconf_recovers_from_same_fault () =
  (* the same fault class injected into our scheme: recSA detects the dead
     configuration (type-4) and brute-force recovers *)
  let sys =
    Reconfig.Stack.of_scenario ~hooks:Reconfig.Stack.unit_hooks
      (Reconfig.Scenario.make ~seed:12 ~n_bound:16 ~members:[ 1; 2; 3; 4 ] ())
  in
  Reconfig.Stack.run_rounds sys 20;
  List.iter
    (fun (_, n) ->
      Reconfig.Recsa.corrupt n.Reconfig.Stack.sa
        ~config:(Reconfig.Config_value.Set (set [ 77; 88 ]))
        ())
    (Reconfig.Stack.live_nodes sys);
  Alcotest.(check bool) "recovers to a live configuration" true
    (Reconfig.Stack.run_until sys ~max_steps:900_000 (fun t ->
         match Reconfig.Stack.uniform_config t with
         | Some c -> Pid.Set.subset c (set [ 1; 2; 3; 4 ]) && Reconfig.Stack.quiescent t
         | None -> false))

let suites =
  [
    ( "vs.smr",
      [
        Alcotest.test_case "view established" `Quick test_view_established;
        Alcotest.test_case "one coordinator" `Quick test_exactly_one_coordinator;
        Alcotest.test_case "multicast delivers" `Quick test_multicast_delivers_everywhere;
        Alcotest.test_case "delivery order agreement" `Quick test_delivery_order_agreement;
        Alcotest.test_case "coordinator crash" `Quick test_coordinator_crash_recovery;
        Alcotest.test_case "joiner gets state" `Quick test_joiner_gets_state;
        Alcotest.test_case "coordinator-led reconfiguration" `Quick
          test_coordinator_led_reconfiguration;
      ] );
    ( "vs.audit",
      [
        Alcotest.test_case "steady run" `Quick test_audit_steady_run;
        Alcotest.test_case "across coordinator crash" `Quick test_audit_across_coordinator_crash;
        Alcotest.test_case "detects violations" `Quick test_audit_detects_violations;
      ] );
    ( "vs.sharedmem",
      [
        Alcotest.test_case "write then read" `Quick test_shm_write_read;
        Alcotest.test_case "read unwritten" `Quick test_shm_read_unwritten;
        Alcotest.test_case "two writers converge" `Quick test_shm_two_writers_converge;
        Alcotest.test_case "compare-and-set" `Quick test_shm_cas;
      ] );
    ( "vs.smr_facade",
      [
        Alcotest.test_case "at-most-once" `Quick test_smr_at_most_once;
        Alcotest.test_case "retry across coordinator crash" `Quick
          test_smr_retry_after_coordinator_crash;
      ] );
    ( "baseline",
      [
        Alcotest.test_case "works from coherent start" `Quick test_baseline_works_coherently;
        Alcotest.test_case "never recovers from transient fault" `Quick
          test_baseline_never_recovers;
        Alcotest.test_case "ssreconf recovers from same fault" `Quick
          test_ssreconf_recovers_from_same_fault;
      ] );
  ]
